//! Offline vendored subset of the `proptest` API.
//!
//! The build container cannot reach crates.io, so this crate reimplements
//! the slice of proptest this workspace uses: the [`proptest!`] macro,
//! range/tuple/`vec`/`char`/`Just`/`prop_oneof!`/`prop_map` strategies,
//! and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.**  A failing case panics with the deterministic
//!   per-case seed in the message; re-running reproduces it exactly.
//! * **Deterministic schedule.**  Case seeds derive from the test's module
//!   path, name, and case index, so runs are reproducible without a
//!   persistence file.
//! * Only the strategy combinators the workspace needs are provided.

#![warn(missing_docs)]

pub mod arbitrary;
#[allow(clippy::module_inception)]
pub mod char;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `prop::` module alias exposed by the prelude (mirrors upstream's
/// `proptest::prelude::prop`).
pub mod prop {
    pub use crate::char;
    pub use crate::collection;
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests.
///
/// Supported grammar (a subset of upstream's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Docs and attributes pass through.
///     #[test]
///     fn my_property(x in 0i64..100, flag: bool) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = $cfg:expr; ) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            let mut __case: u64 = 0;
            while __accepted < __config.cases {
                let __seed = $crate::test_runner::derive_seed(
                    module_path!(),
                    stringify!($name),
                    __case,
                );
                __case += 1;
                let mut __rng = $crate::test_runner::rng_from_seed(__seed);
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $crate::__proptest_lets!((&mut __rng); $($params)*);
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __config.cases * 16 + 1024,
                            "proptest {}: too many rejected cases ({})",
                            stringify!($name),
                            __rejected,
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed (deterministic case seed {}):\n{}",
                            stringify!($name),
                            __seed,
                            msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{ config = $cfg; $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_lets {
    (($rng:expr); ) => {};
    (($rng:expr); $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    (($rng:expr); $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_lets!(($rng); $($rest)*);
    };
    (($rng:expr); mut $name:ident in $strat:expr) => {
        let mut $name = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    (($rng:expr); mut $name:ident in $strat:expr, $($rest:tt)*) => {
        let mut $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_lets!(($rng); $($rest)*);
    };
    (($rng:expr); $name:ident : $ty:ty) => {
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            $rng,
        );
    };
    (($rng:expr); $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            $rng,
        );
        $crate::__proptest_lets!(($rng); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+),
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), __l, format!($($fmt)+),
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
