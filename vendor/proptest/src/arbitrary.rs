//! `any::<T>()` — whole-type strategies for primitives.

use std::marker::PhantomData;

use rand::Rng as _;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mantissa = rng.gen::<f64>() * 2.0 - 1.0;
        let exp = rng.gen_range(-60i32..60);
        mantissa * (exp as f64).exp2()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy generating arbitrary values of `T` (used for bare
/// `name: type` parameters in [`proptest!`](crate::proptest)).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = rng_from_seed(4);
        let strat = any::<bool>();
        let trues = (0..100).filter(|_| strat.generate(&mut rng)).count();
        assert!((20..80).contains(&trues), "trues = {trues}");
    }
}
