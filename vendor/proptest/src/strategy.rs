//! The [`Strategy`] trait and core combinators.

use rand::Rng as _;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// pure generator driven by the deterministic per-case RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` expansion).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

impl<T: rand::SampleUniform + Clone + PartialOrd> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform + Clone + PartialOrd> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn ranges_tuples_map_union() {
        let mut rng = rng_from_seed(11);
        for _ in 0..500 {
            let x = (0i64..10).generate(&mut rng);
            assert!((0..10).contains(&x));
            let (a, b) = ((0i64..5), (10u32..=12)).generate(&mut rng);
            assert!((0..5).contains(&a) && (10..=12).contains(&b));
            let s = (0i64..3).prop_map(|v| v * 2).generate(&mut rng);
            assert!([0, 2, 4].contains(&s));
            let u = crate::prop_oneof![Just('x'), Just('y')].generate(&mut rng);
            assert!(u == 'x' || u == 'y');
        }
    }
}
