//! Collection strategies (`prop::collection::vec`).

use rand::Rng as _;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A collection size specification, converted from `usize` ranges or a
/// fixed `usize`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi: hi + 1 }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..self.size.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn vec_respects_size_and_element_ranges() {
        let mut rng = rng_from_seed(5);
        let strat = vec(0i64..10, 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
        let fixed = vec(0i64..10, 3usize);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }
}
