//! Character strategies (`prop::char::range`).

use rand::Rng as _;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform characters in the inclusive range `[lo, hi]`.
///
/// The range must not straddle the surrogate gap (the workspace only uses
/// small ASCII ranges).
pub fn range(lo: char, hi: char) -> CharRange {
    assert!(lo <= hi, "empty char range {lo:?}..={hi:?}");
    assert!(
        !((lo as u32) < 0xD800 && (hi as u32) > 0xDFFF),
        "char range straddles the surrogate gap"
    );
    CharRange { lo, hi }
}

/// The strategy returned by [`range`].
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    lo: char,
    hi: char,
}

impl Strategy for CharRange {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let code = rng.gen_range(self.lo as u32..=self.hi as u32);
        char::from_u32(code).expect("validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn chars_stay_in_range() {
        let mut rng = rng_from_seed(2);
        let strat = range('a', 'd');
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let c = strat.generate(&mut rng);
            assert!(('a'..='d').contains(&c));
            seen.insert(c);
        }
        assert_eq!(seen.len(), 4);
    }
}
