//! Test-loop configuration and per-case plumbing used by the
//! [`proptest!`](crate::proptest) macro.

use rand::SeedableRng;

/// The RNG driving value generation (the workspace's deterministic
/// xoshiro256++).
pub type TestRng = rand::rngs::StdRng;

/// Builds the RNG for one test case.
pub fn rng_from_seed(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Stable seed for one test case: FNV-1a over the test's identity and the
/// case index, so every run regenerates the identical case sequence and a
/// failure message's seed pinpoints the exact inputs.
pub fn derive_seed(module_path: &str, test_name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(module_path.as_bytes());
    eat(b"::");
    eat(test_name.as_bytes());
    eat(&case.to_le_bytes());
    h
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why one generated case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: regenerate without counting the case.
    Reject,
    /// `prop_assert*!` failed: the property is violated.
    Fail(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = derive_seed("m", "t", 0);
        assert_eq!(a, derive_seed("m", "t", 0));
        assert_ne!(a, derive_seed("m", "t", 1));
        assert_ne!(a, derive_seed("m", "u", 0));
        assert_ne!(a, derive_seed("n", "t", 0));
    }
}
