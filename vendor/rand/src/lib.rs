//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses: the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), the
//! [`SeedableRng::seed_from_u64`] constructor, and a deterministic
//! [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64.  Streams are
//! deterministic across runs and platforms but are **not** the same
//! streams upstream `rand`'s `StdRng` (ChaCha12) produces; everything in
//! this repository treats seeds as opaque reproducibility handles, so only
//! stability within the repo matters.

#![warn(missing_docs)]

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (`rng.gen::<T>()`).
pub trait SampleStandard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform range sampling (`rng.gen_range(lo..hi)`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Unbiased integer draw from `[0, width)` via 128-bit widening multiply.
fn sample_width<R: RngCore + ?Sized>(width: u64, rng: &mut R) -> u64 {
    debug_assert!(width > 0);
    // Lemire's multiply-shift with one rejection round for exactness.
    let threshold = width.wrapping_neg() % width;
    loop {
        let m = rng.next_u64() as u128 * width as u128;
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    if width > u64::MAX as u128 {
                        // Full-width range: raw bits are already uniform.
                        return rng.next_u64() as i128 as Self;
                    }
                    lo.wrapping_add(sample_width(width as u64, rng) as Self)
                } else {
                    assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                    let width = (hi as i128 - lo as i128) as u64;
                    lo.wrapping_add(sample_width(width, rng) as Self)
                }
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64);

impl SampleUniform for usize {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        u64::sample_uniform(lo as u64, hi as u64, inclusive, rng) as usize
    }
}

impl SampleUniform for isize {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        i64::sample_uniform(lo as i64, hi as i64, inclusive, rng) as isize
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(
            lo < hi || (lo == hi && _inclusive),
            "gen_range: empty range"
        );
        let u = f64::sample_standard(rng);
        let v = lo + u * (hi - lo);
        // Guard against rounding up to the exclusive bound.
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a whole type's standard distribution
    /// (`f64`/`f32` in `[0, 1)`, raw bits for integers).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T: SampleUniform, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as xoshiro's authors
            // recommend.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&x));
            let y = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_draws_cover_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn unsized_rng_supported() {
        fn takes_dynish<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(f64::MIN_POSITIVE..1.0)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let v = takes_dynish(&mut rng);
        assert!(v > 0.0 && v < 1.0);
    }
}
