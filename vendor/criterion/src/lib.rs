//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! slice of criterion the workspace's `[[bench]]` targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, and [`black_box`].
//!
//! Measurement is deliberately simple and honest: after a calibration
//! warm-up that picks an iteration count of roughly one millisecond per
//! sample, it times `sample_size` samples with [`std::time::Instant`] and
//! reports the median and min/max per-iteration time.  There are no
//! statistical comparisons against saved baselines and no HTML reports.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(1);

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Measured duration of the sample, set by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow the per-sample iteration count until one sample
    // takes at least TARGET_SAMPLE.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        // Aim directly for the target using the observed rate.
        let scale = (TARGET_SAMPLE.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9)).ceil();
        iters = (iters.saturating_mul(scale as u64)).clamp(iters + 1, 1 << 30);
    };
    // With very slow routines, one calibration pass is measurement enough
    // for a stub harness; still run at least two samples for a spread.
    let samples = if per_iter * iters as f64 > 0.25 {
        2
    } else {
        sample_size
    };

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    println!(
        "{label:<50} median {:>12}  min {:>12}  max {:>12}  ({samples} samples × {iters} iters)",
        fmt_time(median),
        fmt_time(times[0]),
        fmt_time(times[times.len() - 1]),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms:
/// `criterion_group!(name, target1, target2)` and
/// `criterion_group! { name = n; config = expr; targets = t1, t2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
