//! Architectural-claim tests (paper §3.1.1): the cardinality-estimation
//! module is the *only* integration point — estimators are swappable,
//! hints flow through, and fallbacks degrade gracefully.

use std::sync::Arc;

use robust_qo::prelude::*;
use rqo_core::{EstimateSource, EstimationRequest, OracleEstimator};

fn catalog() -> Arc<Catalog> {
    Arc::new(
        TpchData::generate(&TpchConfig {
            scale_factor: 0.005,
            seed: 77,
        })
        .into_catalog(),
    )
}

/// Three estimator implementations drive the identical optimizer; each
/// produces a valid plan; no other component needed changing.
#[test]
fn any_estimator_plugs_into_the_same_optimizer() {
    let cat = catalog();
    let q = Query::over(&["lineitem", "orders", "part"])
        .filter("part", exp2_part_predicate(200))
        .aggregate(AggExpr::count_star("n"));

    let estimators: Vec<Arc<dyn CardinalityEstimator>> = vec![
        Arc::new(RobustEstimator::new(
            Arc::new(SynopsisRepository::build_all(&cat, 300, 1)),
            EstimatorConfig::default(),
        )),
        Arc::new(HistogramEstimator::build_default(&cat)),
        Arc::new(OracleEstimator::new(Arc::clone(&cat))),
    ];
    let mut answers = Vec::new();
    for est in estimators {
        let name = est.name().to_string();
        let opt = Optimizer::new(Arc::clone(&cat), CostParams::default(), est);
        let planned = opt.optimize(&q);
        let (batch, _) = robust_qo::exec::execute(&planned.plan, &cat, opt.params());
        answers.push((name, batch.rows[0][0].clone()));
    }
    assert_eq!(answers[0].1, answers[1].1);
    assert_eq!(answers[0].1, answers[2].1);
}

/// Hints are honoured by the robust estimator and ignored (harmlessly) by
/// estimators without a threshold.
#[test]
fn hints_flow_through_the_optimizer() {
    let cat = catalog();
    let q = Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(110))
        .aggregate(AggExpr::count_star("n"));

    let robust: Arc<dyn CardinalityEstimator> = Arc::new(RobustEstimator::new(
        Arc::new(SynopsisRepository::build_all(&cat, 500, 3)),
        EstimatorConfig::with_threshold(ConfidenceThreshold::new(0.05)),
    ));
    let opt = Optimizer::new(Arc::clone(&cat), CostParams::default(), robust);
    let aggressive_shape = opt.optimize(&q).shape();
    let hinted_shape = opt
        .optimize(&q.clone().with_hint(ConfidenceThreshold::new(0.999)))
        .shape();
    assert_ne!(aggressive_shape, hinted_shape, "hint must change the plan");

    // Histogram estimator: hint is a no-op, not an error.
    let hist: Arc<dyn CardinalityEstimator> = Arc::new(HistogramEstimator::build_default(&cat));
    let opt = Optimizer::new(Arc::clone(&cat), CostParams::default(), hist);
    let unhinted = opt.optimize(&q).shape();
    let hinted = opt
        .optimize(&q.clone().with_hint(ConfidenceThreshold::new(0.999)))
        .shape();
    assert_eq!(unhinted, hinted);
}

/// §3.5 graceful degradation: expressions with no covering synopsis fall
/// back to AVI over per-table samples; estimation errors stay confined.
#[test]
fn fallback_sources_are_reported() {
    let cat = catalog();
    let est = RobustEstimator::new(
        Arc::new(SynopsisRepository::build_all(&cat, 300, 5)),
        EstimatorConfig::default(),
    );
    // Covered: the full FK expression.
    let p = Expr::col("p_x").lt(Expr::lit(100i64));
    let covered = est.estimate(&EstimationRequest::new(
        vec!["lineitem", "part"],
        vec![("part", &p)],
    ));
    assert!(matches!(
        covered.source,
        EstimateSource::JoinSynopsis { .. }
    ));
    assert!(covered.posterior.is_some());

    // Not covered: orders and part share no FK root.
    let po = Expr::col("o_totalprice").gt(Expr::lit(0.0));
    let uncovered = est.estimate(&EstimationRequest::new(
        vec!["orders", "part"],
        vec![("orders", &po), ("part", &p)],
    ));
    assert_eq!(uncovered.source, EstimateSource::IndependentSamples);
}

/// The confidence threshold monotonically inflates the estimate — the
/// contract the whole plan-selection story rests on.
#[test]
fn estimates_monotone_in_threshold() {
    let cat = catalog();
    let repo = Arc::new(SynopsisRepository::build_all(&cat, 500, 7));
    let pred = exp1_lineitem_predicate(95);
    let req = EstimationRequest::single("lineitem", &pred);
    let mut prev = 0.0;
    for pct in [1, 10, 25, 50, 75, 90, 99] {
        let est = RobustEstimator::new(
            Arc::clone(&repo),
            EstimatorConfig::with_threshold(ConfidenceThreshold::new(pct as f64 / 100.0)),
        );
        let s = est.estimate(&req).selectivity;
        assert!(s >= prev, "T={pct}%: {s} < {prev}");
        prev = s;
    }
}

/// Statistics never change answers: across many synopsis draws, the same
/// query returns the same rows (only the plan may differ).
#[test]
fn sampling_randomness_never_affects_results() {
    let cat = catalog();
    let q = Query::over(&["lineitem", "orders", "part"])
        .filter("part", exp2_part_predicate(212))
        .filter("lineitem", Expr::col("l_quantity").le(Expr::lit(25.0)))
        .aggregate(AggExpr::count_star("n"))
        .aggregate(AggExpr::sum("l_extendedprice", "rev"));
    let mut first: Option<Vec<Value>> = None;
    let mut shapes = std::collections::HashSet::new();
    for seed in 0..8u64 {
        let est: Arc<dyn CardinalityEstimator> = Arc::new(RobustEstimator::new(
            Arc::new(SynopsisRepository::build_all(&cat, 100, seed)),
            EstimatorConfig::with_threshold(ConfidenceThreshold::new(0.5)),
        ));
        let opt = Optimizer::new(Arc::clone(&cat), CostParams::default(), est);
        let planned = opt.optimize(&q);
        shapes.insert(planned.shape());
        let (batch, _) = robust_qo::exec::execute(&planned.plan, &cat, opt.params());
        match &first {
            None => first = Some(batch.rows[0].clone()),
            Some(expected) => assert_eq!(&batch.rows[0], expected, "seed {seed}"),
        }
    }
    // With a 100-tuple sample near a crossover the chosen plan genuinely
    // varies across draws — that is the variance the paper tames — while
    // the answer stays fixed.
    assert!(!shapes.is_empty());
}
