//! Golden snapshots of one **adaptive** run per paper scenario, showing
//! the re-plan event log and the final plan's annotated metrics tree.
//!
//! Each scenario plants a wildly wrong selectivity through the test-only
//! `FeedbackStore::inject_observation`, so the first plan is provably bad
//! and at least one runtime cardinality guard must fire.  The rendered
//! [`AdaptiveOutcome`] — trip points, q-errors, threshold escalation,
//! graft decisions, and the completed plan's estimate-vs-actual tree —
//! must be byte-identical to the checked-in golden files and identical
//! across thread counts.
//!
//! To regenerate after an intentional change:
//!
//! ```sh
//! UPDATE_GOLDENS=1 cargo test --test adaptive_golden
//! ```
//!
//! On mismatch the actual rendering is written to
//! `target/golden-diff/<name>.actual.txt` so CI can upload it as an
//! artifact.

use std::path::PathBuf;

use robust_qo::prelude::*;

const SEED: u64 = 42;

fn tpch_db() -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: SEED,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED)
}

fn star_db() -> RobustDb {
    let data = StarData::generate(&StarConfig {
        fact_rows: 30_000,
        seed: SEED,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED)
}

fn golden_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{label}.txt"))
}

/// Runs the scenario adaptively (fresh database per run — `run_adaptive`
/// records feedback), asserts at least one guard fired and that the
/// rendering is thread-invariant, then compares against (or regenerates)
/// the golden snapshot.
fn check(label: &str, make_db: impl Fn() -> RobustDb, query: &Query) {
    let outcome = make_db().run_adaptive(query);
    assert!(
        outcome.replans() >= 1,
        "{label}: scenario must trip at least one guard"
    );
    let rendered = outcome.render();

    for threads in [2usize, 8] {
        let db = make_db().with_exec_options(ExecOptions::with_threads(threads));
        let parallel = db.run_adaptive(query).render();
        assert_eq!(
            rendered, parallel,
            "{label}: adaptive rendering diverged at {threads} threads"
        );
    }

    let path = golden_path(label);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}; run with UPDATE_GOLDENS=1",
            path.display()
        )
    });
    if rendered != expected {
        let diff_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/golden-diff");
        std::fs::create_dir_all(&diff_dir).unwrap();
        std::fs::write(diff_dir.join(format!("{label}.actual.txt")), &rendered).unwrap();
        assert_eq!(
            rendered, expected,
            "{label}: golden mismatch; actual written to target/golden-diff/{label}.actual.txt"
        );
    }
}

/// The same three scenarios under `PlanSelection::ExpectedPenalty` from
/// the start.  The planted misestimate is *feedback*, which overrides
/// the posterior for every selection mode — so the first plan is the
/// same provably-bad one and the guards still fire; the goldens pin how
/// penalty-mode re-planning differs (median-quantile annotations, every
/// event tagged `[penalty]` since the mode never de-escalates).
fn penalty(query: &Query) -> Query {
    query.clone().with_selection(PlanSelection::ExpectedPenalty)
}

#[test]
fn adaptive_exp1_golden() {
    // Truth: the offset-110 window is essentially empty.  Planted: 90%
    // of lineitem matches, pushing the optimizer to a conservative scan.
    let pred = exp1_lineitem_predicate(110);
    let query = Query::over(&["lineitem"])
        .filter("lineitem", pred.clone())
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
    let make_db = || {
        let db = tpch_db();
        db.feedback()
            .inject_observation(&["lineitem"], &[("lineitem", &pred)], 0.9);
        db
    };
    check("adaptive_exp1", make_db, &query);
    check("adaptive_exp1_penalty", make_db, &penalty(&query));
}

#[test]
fn adaptive_exp2_golden() {
    // Truth: the window-212 part predicate matches a handful of parts.
    // Planted: half the part table, pushing the optimizer to scan-based
    // joins whose build-side guard fires cheaply.
    let pred = exp2_part_predicate(212);
    let query = Query::over(&["lineitem", "orders", "part"])
        .filter("part", pred.clone())
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
    let make_db = || {
        let db = tpch_db();
        db.feedback()
            .inject_observation(&["part"], &[("part", &pred)], 0.5);
        db
    };
    check("adaptive_exp2", make_db, &query);
    check("adaptive_exp2_penalty", make_db, &penalty(&query));
}

#[test]
fn adaptive_exp3_golden() {
    // Truth: each dimension predicate selects ~40% of its dimension.
    // Planted: near-zero on every dimension, luring the optimizer into
    // the index-driven star semijoin whose own guard then fires.
    let dpred = exp3_dim_predicate(3);
    let mut query = Query::over(&["fact", "dim1", "dim2", "dim3"])
        .aggregate(AggExpr::sum("f_measure1", "total"));
    for dim in ["dim1", "dim2", "dim3"] {
        query = query.filter(dim, dpred.clone());
    }
    let make_db = || {
        let db = star_db();
        for dim in ["dim1", "dim2", "dim3"] {
            db.feedback()
                .inject_observation(&[dim], &[(dim, &dpred)], 1e-6);
        }
        db
    };
    check("adaptive_exp3", make_db, &query);
    check("adaptive_exp3_penalty", make_db, &penalty(&query));
}
