//! Golden `EXPLAIN ANALYZE` snapshots for the three paper scenarios.
//!
//! Each scenario is rendered at confidence thresholds T ∈ {5%, 50%, 95%}
//! over the same deterministic data as the `plan_shapes` pins (TPC-H-like
//! at scale 0.005, star schema at 30k fact rows, seed 42 everywhere,
//! including the synopsis sample draw).  The rendered tree — operator
//! labels, estimated vs. actual cardinalities, q-errors, morsel counts —
//! must be byte-identical to the checked-in golden files, and identical
//! across thread counts (the metrics tree is derived only from input
//! sizes and simulated cost counters, never from scheduling).
//!
//! To regenerate after an intentional change:
//!
//! ```sh
//! UPDATE_GOLDENS=1 cargo test --test explain_analyze
//! ```
//!
//! On mismatch the actual rendering is written to
//! `target/golden-diff/<name>.actual.txt` so CI can upload it as an
//! artifact.

use std::path::PathBuf;

use robust_qo::prelude::*;

const THRESHOLDS: [f64; 3] = [0.05, 0.50, 0.95];
const SEED: u64 = 42;

fn tpch_db() -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: SEED,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED)
}

fn star_db() -> RobustDb {
    let data = StarData::generate(&StarConfig {
        fact_rows: 30_000,
        seed: SEED,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED)
}

fn golden_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{label}.txt"))
}

/// Renders the scenario at each threshold, asserts thread invariance,
/// and compares against (or regenerates) the golden snapshot.
fn check(name: &str, make_db: impl Fn() -> RobustDb, query: &Query) {
    for &t in &THRESHOLDS {
        let label = format!("{name}_t{:02}", (t * 100.0).round() as u32);

        // A fresh database per run: `explain_analyze` records feedback,
        // and a shared store would let one threshold's observations leak
        // into the next optimization.
        let db = make_db().with_threshold(ConfidenceThreshold::new(t));
        let rendered = db.explain_analyze(query).render();

        // Every operator must report an estimate and a q-error — no node
        // may degrade to an unannotated `?` in the paper scenarios.
        assert!(
            !rendered.contains("est_rows=?"),
            "{label}: unannotated node in\n{rendered}"
        );

        // Thread invariance: byte-identical rendering at 2 and 8 workers.
        for threads in [2usize, 8] {
            let db = make_db()
                .with_threshold(ConfidenceThreshold::new(t))
                .with_exec_options(ExecOptions::with_threads(threads));
            let parallel = db.explain_analyze(query).render();
            assert_eq!(
                rendered, parallel,
                "{label}: EXPLAIN ANALYZE diverged at {threads} threads"
            );
        }

        let path = golden_path(&label);
        if std::env::var_os("UPDATE_GOLDENS").is_some() {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {}: {e}; run with UPDATE_GOLDENS=1",
                path.display()
            )
        });
        if rendered != expected {
            let diff_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/golden-diff");
            std::fs::create_dir_all(&diff_dir).unwrap();
            std::fs::write(diff_dir.join(format!("{label}.actual.txt")), &rendered).unwrap();
            assert_eq!(
                rendered, expected,
                "{label}: golden mismatch; actual written to target/golden-diff/{label}.actual.txt"
            );
        }
    }
}

#[test]
fn exp1_explain_analyze_goldens() {
    let query = Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(110))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
    check("exp1", tpch_db, &query);
}

#[test]
fn exp2_explain_analyze_goldens() {
    let query = Query::over(&["lineitem", "orders", "part"])
        .filter("part", exp2_part_predicate(212))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
    check("exp2", tpch_db, &query);
}

#[test]
fn exp3_explain_analyze_goldens() {
    let mut query = Query::over(&["fact", "dim1", "dim2", "dim3"])
        .aggregate(AggExpr::sum("f_measure1", "total"));
    for dim in ["dim1", "dim2", "dim3"] {
        query = query.filter(dim, exp3_dim_predicate(3));
    }
    check("exp3", star_db, &query);
}
