//! Property-based integration tests: for randomly generated databases
//! and queries, every plan the optimizer produces computes exactly the
//! result of a naive reference evaluation, and the estimator invariants
//! hold for arbitrary observations.

use std::sync::Arc;

use proptest::prelude::*;
use robust_qo::prelude::*;

/// A small random two-table FK database: `parent(pk, a)` and
/// `child(pk, fk → parent.pk, b)`.
fn build_catalog(parent_a: &[i64], child: &[(i64, i64)]) -> Arc<Catalog> {
    let parent_schema = Schema::from_pairs(&[("p_pk", DataType::Int), ("a", DataType::Int)]);
    let mut pb = TableBuilder::new("parent", parent_schema, parent_a.len());
    for (i, &a) in parent_a.iter().enumerate() {
        pb.push_row(&[Value::Int(i as i64), Value::Int(a)]);
    }
    let child_schema = Schema::from_pairs(&[
        ("c_pk", DataType::Int),
        ("fk", DataType::Int),
        ("b", DataType::Int),
    ]);
    let mut cb = TableBuilder::new("child", child_schema, child.len());
    for (i, &(fk, b)) in child.iter().enumerate() {
        cb.push_row(&[Value::Int(i as i64), Value::Int(fk), Value::Int(b)]);
    }
    let mut cat = Catalog::new();
    cat.add_table(pb.finish()).unwrap();
    cat.add_table(cb.finish()).unwrap();
    cat.add_foreign_key("child", "fk", "parent", "p_pk")
        .unwrap();
    cat.ensure_secondary_index("child", "b").unwrap();
    cat.ensure_secondary_index("child", "fk").unwrap();
    cat.ensure_secondary_index("parent", "a").unwrap();
    Arc::new(cat)
}

/// Reference evaluation of the test query shape:
/// `COUNT(*) WHERE child.b in [b_lo, b_hi] AND parent.a in [a_lo, a_hi]`.
fn reference_count(
    parent_a: &[i64],
    child: &[(i64, i64)],
    (b_lo, b_hi): (i64, i64),
    (a_lo, a_hi): (i64, i64),
) -> i64 {
    child
        .iter()
        .filter(|(fk, b)| {
            (b_lo..=b_hi).contains(b) && {
                let a = parent_a[*fk as usize];
                (a_lo..=a_hi).contains(&a)
            }
        })
        .count() as i64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever plan the robust optimizer picks — any threshold, any
    /// sample — the executed answer equals the reference count.
    #[test]
    fn optimized_plans_compute_reference_answers(
        parent_a in prop::collection::vec(0i64..50, 8..60),
        child_raw in prop::collection::vec((0usize..1000, 0i64..50), 10..200),
        b_lo in 0i64..50,
        b_len in 0i64..25,
        a_lo in 0i64..50,
        a_len in 0i64..25,
        threshold in 1u32..99,
        seed in 0u64..1000,
    ) {
        let child: Vec<(i64, i64)> = child_raw
            .iter()
            .map(|&(fk, b)| ((fk % parent_a.len()) as i64, b))
            .collect();
        let cat = build_catalog(&parent_a, &child);
        let expected = reference_count(&parent_a, &child, (b_lo, b_lo + b_len), (a_lo, a_lo + a_len));

        let est: Arc<dyn CardinalityEstimator> = Arc::new(RobustEstimator::new(
            Arc::new(SynopsisRepository::build_all(&cat, 50, seed)),
            EstimatorConfig::with_threshold(ConfidenceThreshold::new(threshold as f64 / 100.0)),
        ));
        let opt = Optimizer::new(Arc::clone(&cat), CostParams::default(), est);
        let q = Query::over(&["child", "parent"])
            .filter("child", Expr::col("b").between(Expr::lit(b_lo), Expr::lit(b_lo + b_len)))
            .filter("parent", Expr::col("a").between(Expr::lit(a_lo), Expr::lit(a_lo + a_len)))
            .aggregate(AggExpr::count_star("n"));
        let planned = opt.optimize(&q);
        let (batch, cost) = robust_qo::exec::execute(&planned.plan, &cat, opt.params());
        prop_assert_eq!(batch.rows[0][0].as_int(), expected, "plan: {}", planned.shape());
        prop_assert!(cost.seconds(opt.params()) >= 0.0);
    }

    /// Single-table plans also agree with reference filtering, across all
    /// access paths (scan, seek, intersection).
    #[test]
    fn single_table_plans_compute_reference_answers(
        parent_a in prop::collection::vec(0i64..30, 5..40),
        child_raw in prop::collection::vec((0usize..1000, 0i64..30), 10..150),
        b_lo in 0i64..30,
        b_len in 0i64..15,
        fk_lo in 0i64..30,
        fk_len in 0i64..15,
        threshold in 1u32..99,
    ) {
        let child: Vec<(i64, i64)> = child_raw
            .iter()
            .map(|&(fk, b)| ((fk % parent_a.len()) as i64, b))
            .collect();
        let cat = build_catalog(&parent_a, &child);
        let expected = child
            .iter()
            .filter(|(fk, b)| (b_lo..=b_lo + b_len).contains(b) && (fk_lo..=fk_lo + fk_len).contains(fk))
            .count() as i64;

        let est: Arc<dyn CardinalityEstimator> = Arc::new(RobustEstimator::new(
            Arc::new(SynopsisRepository::build_all(&cat, 40, 7)),
            EstimatorConfig::with_threshold(ConfidenceThreshold::new(threshold as f64 / 100.0)),
        ));
        let opt = Optimizer::new(Arc::clone(&cat), CostParams::default(), est);
        // Two indexed range conjuncts: lets the optimizer choose among
        // scan, single seek, and index intersection.
        let q = Query::over(&["child"])
            .filter("child", Expr::col("b").between(Expr::lit(b_lo), Expr::lit(b_lo + b_len)))
            .filter("child", Expr::col("fk").between(Expr::lit(fk_lo), Expr::lit(fk_lo + fk_len)))
            .aggregate(AggExpr::count_star("n"));
        let planned = opt.optimize(&q);
        let (batch, _) = robust_qo::exec::execute(&planned.plan, &cat, opt.params());
        prop_assert_eq!(batch.rows[0][0].as_int(), expected, "plan: {}", planned.shape());
    }

    /// Estimator invariants for arbitrary observations: the estimate is a
    /// valid selectivity, monotone in the threshold, and brackets the MLE
    /// between low and high thresholds.
    #[test]
    fn posterior_invariants(k in 0usize..500, extra in 0usize..500, t1 in 0.01f64..0.99, t2 in 0.01f64..0.99) {
        let n = k + extra;
        prop_assume!(n > 0);
        let p = SelectivityPosterior::from_observation(k, n, Prior::Jeffreys);
        let (lo_t, hi_t) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let lo = p.at_threshold(ConfidenceThreshold::new(lo_t));
        let hi = p.at_threshold(ConfidenceThreshold::new(hi_t));
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= hi + 1e-12);
        // CDF/quantile coherence.
        prop_assert!((p.cdf(p.at_threshold(ConfidenceThreshold::new(0.5))) - 0.5).abs() < 1e-6);
        // Posterior mean between the extreme quantiles.
        let q01 = p.at_threshold(ConfidenceThreshold::new(0.01));
        let q99 = p.at_threshold(ConfidenceThreshold::new(0.99));
        prop_assert!(p.mean() >= q01 - 1e-12 && p.mean() <= q99 + 1e-12);
    }
}
