//! Differential tests for `PlanSelection::ExpectedPenalty`.
//!
//! The penalty scorer is only trustworthy if its re-coster reproduces
//! the enumerator's own arithmetic — otherwise candidates generated at
//! one threshold are priced on a different scale than the enumerator
//! that emitted them.  These tests pin that contract (`price_plan` ==
//! the quantile optimizer's `estimated_cost_ms`, bit for bit, at every
//! hint), then pin the penalty mode's own guarantees: hint invariance,
//! degenerate-posterior short-circuiting, report coherence, and
//! thread-invariant execution.

use robust_qo::optimizer::{detect_sorted_columns, enumerate::PlanContext, price_plan, CostModel};
use robust_qo::prelude::*;
use std::sync::Arc;

const SEED: u64 = 42;

fn tpch_db() -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: SEED,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED)
}

/// The narrow-part join from the adaptive scenarios: the predicate's
/// sample posterior is wide enough that different thresholds pick
/// different join strategies.
fn join_query() -> Query {
    Query::over(&["lineitem", "orders", "part"])
        .filter("part", exp2_part_predicate(212))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
}

fn scan_query() -> Query {
    Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(50))
        .aggregate(AggExpr::count_star("n"))
}

/// `price_plan` must reproduce the quantile optimizer's costing of its
/// own chosen plan exactly, at every hint threshold — the differential
/// contract the penalty scorer is built on.
#[test]
fn price_plan_reproduces_quantile_costing_at_every_hint() {
    let db = tpch_db();
    let opt = db.optimizer();
    let catalog = db.catalog();
    let sorted = detect_sorted_columns(&catalog);
    for query in [scan_query(), join_query()] {
        for t in [0.05, 0.5, 0.8, 0.95] {
            let hint = ConfidenceThreshold::new(t);
            let planned = opt.optimize(&query.clone().with_hint(hint));
            let hinted = opt
                .estimator()
                .hinted(hint)
                .expect("robust estimator honours hints");
            let model = CostModel::new(&catalog, opt.params());
            let ctx = PlanContext::new(&catalog, model, hinted.as_ref(), &sorted);
            let priced = price_plan(&ctx, &query, &planned.plan);
            assert_eq!(
                priced.cost_ms,
                planned.estimated_cost_ms,
                "T={t}: price_plan diverged from the enumerator on {}",
                planned.shape()
            );
            assert_eq!(
                priced.join_rows,
                planned.estimated_rows,
                "T={t}: row estimate diverged on {}",
                planned.shape()
            );
        }
    }
}

/// Penalty mode integrates over the posterior; the per-query threshold
/// hint (a quantile-mode knob) must not change its decision or score.
#[test]
fn penalty_choice_is_hint_invariant() {
    let db = tpch_db();
    let opt = db.optimizer();
    let base = opt.optimize(&join_query().with_selection(PlanSelection::ExpectedPenalty));
    assert_eq!(base.selection, PlanSelection::ExpectedPenalty);
    for t in [0.05, 0.5, 0.95] {
        let hinted = opt.optimize(
            &join_query()
                .with_hint(ConfidenceThreshold::new(t))
                .with_selection(PlanSelection::ExpectedPenalty),
        );
        assert_eq!(hinted.shape(), base.shape(), "T={t}");
        assert_eq!(hinted.estimated_cost_ms, base.estimated_cost_ms, "T={t}");
    }
}

/// The report must be coherent: the chosen candidate minimizes expected
/// penalty, penalties are regrets (non-negative, and zero only for a
/// per-node winner), and the sensitivity partition covers exactly the
/// query's predicates.
#[test]
fn penalty_report_is_coherent() {
    let db = tpch_db();
    let opt = db.optimizer();
    let query = join_query();
    let planned = opt.optimize(&query.clone().with_selection(PlanSelection::ExpectedPenalty));
    let report = planned
        .penalty
        .as_ref()
        .expect("penalty mode attaches a report");

    assert!(
        report.candidates.len() >= 2,
        "the uncertain join must harvest multiple candidates: {report:?}"
    );
    assert!(!report.degenerate, "sample posterior is not point-like");
    assert!(
        !report.sensitive.is_empty(),
        "the part predicate must steer the plan choice: {report:?}"
    );
    assert_eq!(
        report.sensitive.len() + report.pruned.len(),
        query.predicates.len(),
        "sensitivity partition covers the query's predicates"
    );
    assert!(report.nodes > 1, "sensitive predicates demand quadrature");

    let chosen = &report.candidates[report.chosen];
    assert_eq!(chosen.shape, planned.plan.shape_label());
    for c in &report.candidates {
        assert!(c.expected_penalty >= 0.0);
        assert!(c.expected_cost > 0.0);
        assert!(
            chosen.expected_penalty <= c.expected_penalty,
            "chosen candidate must minimize expected penalty: {report:?}"
        );
    }
}

/// An estimator with no posterior at all (the oracle) and a predicate
/// whose truth has been fed back (posterior collapsed by observation)
/// must both short-circuit quadrature to the single median node.
#[test]
fn degenerate_posteriors_short_circuit_quadrature() {
    // Oracle: exact selectivities, no posterior object.
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: SEED,
    });
    let cat: Arc<Catalog> = Arc::new(data.into_catalog());
    let est = robust_qo::estimator::OracleEstimator::new(Arc::clone(&cat));
    let opt = robust_qo::optimizer::Optimizer::new(cat, CostParams::default(), Arc::new(est));
    let planned = opt.optimize(&join_query().with_selection(PlanSelection::ExpectedPenalty));
    let report = planned.penalty.as_ref().expect("report");
    assert!(
        report.degenerate,
        "oracle posteriors are absent: {report:?}"
    );
    assert_eq!(report.nodes, 1, "no quadrature on a point mass");

    // Feedback: once the only predicate's truth is observed, there is no
    // residual uncertainty to integrate over.
    let db = tpch_db();
    let pred = exp1_lineitem_predicate(50);
    db.feedback()
        .inject_observation(&["lineitem"], &[("lineitem", &pred)], 0.02);
    let planned = db
        .optimizer()
        .optimize(&scan_query().with_selection(PlanSelection::ExpectedPenalty));
    let report = planned.penalty.as_ref().expect("report");
    assert!(report.degenerate, "fed-back predicate: {report:?}");
    assert_eq!(report.nodes, 1);
}

/// Penalty-mode execution must be bit-identical across worker threads:
/// same rows, same simulated cost, same plan shape.
#[test]
fn penalty_execution_is_thread_invariant() {
    let reference = tpch_db()
        .with_selection(PlanSelection::ExpectedPenalty)
        .run(&join_query());
    for threads in [2usize, 8] {
        let outcome = tpch_db()
            .with_selection(PlanSelection::ExpectedPenalty)
            .with_exec_options(ExecOptions::with_threads(threads))
            .run(&join_query());
        assert_eq!(outcome.rows, reference.rows, "t={threads}");
        assert_eq!(
            outcome.simulated_seconds, reference.simulated_seconds,
            "t={threads}"
        );
        assert_eq!(
            outcome.plan.shape_label(),
            reference.plan.shape_label(),
            "t={threads}"
        );
    }
}

/// The selection mode threads through every layer: `RobustDb` builder,
/// engine accessor, service session override, and per-query override.
#[test]
fn selection_mode_threads_through_the_service_stack() {
    let db = tpch_db().with_selection(PlanSelection::ExpectedPenalty);
    assert_eq!(db.selection(), PlanSelection::ExpectedPenalty);
    let planned = db.optimize(&join_query());
    assert_eq!(planned.selection, PlanSelection::ExpectedPenalty);
    assert!(planned.penalty.is_some());

    // A per-query override wins over the system-wide mode.
    let quantile = db.optimize(&join_query().with_selection(PlanSelection::Quantile));
    assert_eq!(quantile.selection, PlanSelection::Quantile);
    assert!(quantile.penalty.is_none());

    // Session-level override on a service sharing a quantile-mode engine.
    let service = tpch_db().into_service(ServiceConfig::default());
    let session = service
        .session()
        .with_selection(PlanSelection::ExpectedPenalty);
    let outcome = session.run(&join_query()).expect("no deadline");
    assert_eq!(
        outcome.plan.shape_label(),
        planned.plan.shape_label(),
        "session override must reproduce the penalty-mode plan"
    );
}
