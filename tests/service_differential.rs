//! Service ≡ single-tenant differential suite.
//!
//! The concurrent query service (shared worker pool, admission control,
//! round-robin morsel scheduling across queries) must be *semantically
//! invisible*: every golden experiment query run through the service —
//! with 1, 4, or 16 client threads hammering it concurrently — returns
//! bit-identical result rows, `EXPLAIN ANALYZE` operator-metrics trees,
//! and tracked simulated costs to the same query on a standalone
//! [`RobustDb`].  Also pins the admission-control slot lifecycle:
//! cancelled and deadline-exceeded queries release their slots and are
//! counted, leaving the stats balanced.

use robust_qo::prelude::*;

const SEED: u64 = 42;
const CLIENTS: [usize; 3] = [1, 4, 16];

fn tpch_db() -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: SEED,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED)
}

fn star_db() -> RobustDb {
    let data = StarData::generate(&StarConfig {
        fact_rows: 30_000,
        seed: SEED,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED)
}

fn exp1_query() -> Query {
    Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(110))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
}

fn exp2_query() -> Query {
    Query::over(&["lineitem", "orders", "part"])
        .filter("part", exp2_part_predicate(212))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
}

fn exp3_query() -> Query {
    let mut query = Query::over(&["fact", "dim1", "dim2", "dim3"])
        .aggregate(AggExpr::sum("f_measure1", "total"));
    for dim in ["dim1", "dim2", "dim3"] {
        query = query.filter(dim, exp3_dim_predicate(3));
    }
    query
}

/// The single-tenant truth for one query: rows, rendered metrics tree,
/// and tracked cost, via the side-effect-free analyze path.
struct Reference {
    rows: Vec<Vec<Value>>,
    render: String,
    seconds: f64,
}

fn reference(db: &RobustDb, query: &Query) -> Reference {
    let analyzed = db
        .engine()
        .analyze_quiet(query, db.engine().exec_options())
        .expect("no token, cannot stop");
    let render = analyzed.render();
    Reference {
        rows: analyzed.outcome.rows,
        render,
        seconds: analyzed.outcome.simulated_seconds,
    }
}

/// Runs every query through the service from `clients` concurrent
/// threads and asserts each analyzed result is bit-identical to its
/// reference.
fn assert_differential(db: RobustDb, queries: &[Query], refs: &[Reference], clients: usize) {
    let service = db.into_service(
        ServiceConfig::default()
            .with_workers(2)
            .with_max_concurrent(clients.max(1))
            .with_queue_capacity(2 * clients),
    );
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let service = &service;
            scope.spawn(move || {
                let session = service.session();
                for (query, reference) in queries.iter().zip(refs) {
                    let analyzed = session
                        .analyze_quiet(query)
                        .expect("no cancellation source");
                    assert_eq!(analyzed.outcome.rows, reference.rows, "rows diverged");
                    assert_eq!(analyzed.render(), reference.render, "metrics tree diverged");
                    assert_eq!(
                        analyzed.outcome.simulated_seconds, reference.seconds,
                        "tracked cost diverged"
                    );
                    // The plain run path must agree on rows and cost too.
                    let outcome = session.run(query).expect("no cancellation source");
                    assert_eq!(outcome.rows, reference.rows);
                    assert_eq!(outcome.simulated_seconds, reference.seconds);
                }
            });
        }
    });
    let stats = service.stats();
    let expected = (clients * queries.len() * 2) as u64;
    assert_eq!(stats.admitted, expected, "every query admitted");
    assert_eq!(stats.completed, expected, "every query completed");
    assert!(stats.slots_balanced(), "slots leaked: {stats}");
}

#[test]
fn tpch_service_matches_single_tenant() {
    let queries = vec![exp1_query(), exp2_query()];
    let db = tpch_db();
    let refs: Vec<Reference> = queries.iter().map(|q| reference(&db, q)).collect();
    drop(db);
    for clients in CLIENTS {
        assert_differential(tpch_db(), &queries, &refs, clients);
    }
}

#[test]
fn star_service_matches_single_tenant() {
    let queries = vec![exp3_query()];
    let db = star_db();
    let refs: Vec<Reference> = queries.iter().map(|q| reference(&db, q)).collect();
    drop(db);
    for clients in CLIENTS {
        assert_differential(star_db(), &queries, &refs, clients);
    }
}

#[test]
fn stopped_queries_release_their_slots() {
    let service = tpch_db().into_service(
        ServiceConfig::default()
            .with_workers(1)
            .with_max_concurrent(1)
            .with_queue_capacity(4),
    );
    let session = service.session();
    let query = exp1_query();

    // A pre-cancelled query and an already-expired deadline both stop
    // before producing rows — and both must free their slot.
    let cancelled = QueryHandle::new();
    cancelled.cancel();
    assert_eq!(
        session.run_with(&query, &cancelled).unwrap_err(),
        ServiceError::Stopped(StopReason::Cancelled)
    );
    let expired = QueryHandle::with_deadline(std::time::Duration::ZERO);
    assert_eq!(
        session.run_with(&query, &expired).unwrap_err(),
        ServiceError::Stopped(StopReason::DeadlineExceeded)
    );

    // With max_concurrent = 1, the next query only runs if both slots
    // above were released.
    let outcome = session.run(&query).expect("slot must be free");
    assert_eq!(outcome.rows.len(), 1);

    let stats = service.stats();
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.completed, 1);
    assert!(stats.slots_balanced(), "{stats}");

    // A stopped query must publish nothing: the only cache entry is the
    // completed run's plan.
    assert_eq!(service.engine().cache_stats().entries, 1);
}
