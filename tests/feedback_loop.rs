//! End-to-end execution-feedback loop.
//!
//! Running a query through `EXPLAIN ANALYZE` records every annotated
//! operator's observed selectivity in the database's [`FeedbackStore`].
//! Re-optimizing the same query must then (a) produce different
//! cardinality estimates — the observations demonstrably reach the
//! estimator — and (b) produce estimates that match the observed
//! actuals, so the second `EXPLAIN ANALYZE` reports a q-error of 1 on
//! every annotated node.

use robust_qo::prelude::*;

const SEED: u64 = 42;

fn tpch_db() -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: SEED,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED)
}

/// Every annotated node in the metrics tree has q-error ≈ 1.
fn assert_estimates_match_actuals(metrics: &OpMetrics, context: &str) {
    for node in metrics.preorder() {
        if let Some(q) = node.q_error() {
            assert!(
                q <= 1.0 + 1e-6,
                "{context}: node {:?} has q_error {q} (est {:?}, actual {})",
                node.label,
                node.est_rows,
                node.rows_out
            );
        }
    }
}

#[test]
fn exp1_feedback_corrects_estimates() {
    // A conservative threshold makes the first-pass estimates badly
    // inflated, so the correction is unambiguous.
    let db = tpch_db().with_threshold(ConfidenceThreshold::new(0.95));
    let query = Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(110))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));

    let first = db.optimizer().optimize(&query);
    assert!(db.feedback().is_empty());

    let analyzed = db.explain_analyze(&query);
    assert!(
        !db.feedback().is_empty(),
        "explain_analyze records feedback"
    );
    let actual_rows: Vec<u64> = analyzed
        .metrics
        .preorder()
        .iter()
        .map(|n| n.rows_out)
        .collect();

    // Second optimization: the observed selectivity replaces the
    // posterior-quantile estimate.
    let second = db.optimizer().optimize(&query);
    assert_ne!(
        first.estimated_rows, second.estimated_rows,
        "feedback must change the output-cardinality estimate"
    );

    // The second plan's estimates equal the observed cardinalities.
    let re = db.explain_analyze(&query);
    assert_estimates_match_actuals(&re.metrics, "exp1 second pass");

    // The answer itself is unchanged — feedback moves plans, not results.
    assert_eq!(analyzed.outcome.rows, re.outcome.rows);
    let re_rows: Vec<u64> = re.metrics.preorder().iter().map(|n| n.rows_out).collect();
    if re.outcome.plan == analyzed.outcome.plan {
        assert_eq!(actual_rows, re_rows);
    }
}

#[test]
fn exp2_feedback_covers_every_join_combination() {
    // The exp2 join query's only predicate is on `part`; the connected
    // subexpressions containing it — {part}, {part, lineitem},
    // {part, lineitem, orders} — all appear as nodes of the first chosen
    // plan, so the feedback store ends up covering every estimation
    // request any re-optimization can make.
    let db = tpch_db().with_threshold(ConfidenceThreshold::new(0.50));
    let query = Query::over(&["lineitem", "orders", "part"])
        .filter("part", exp2_part_predicate(212))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));

    let first = db.explain_analyze(&query);
    assert!(
        db.feedback().len() >= 3,
        "store has {} entries",
        db.feedback().len()
    );

    let re = db.explain_analyze(&query);
    assert_estimates_match_actuals(&re.metrics, "exp2 second pass");
    assert_eq!(first.outcome.rows, re.outcome.rows);
}
