//! Golden plan-shape regression for the three paper scenarios.
//!
//! Pins the shape (`PlannedQuery::shape()`) the robust optimizer picks at
//! confidence thresholds T ∈ {5%, 50%, 80%, 95%} over deterministic data
//! (TPC-H-like at scale 0.005, star schema at 30k fact rows, all seeded
//! with 42 — including the synopsis sample draw).  The paper's central
//! claim is *monotone plan conservatism*: as T rises the optimizer must
//! move from risky, selectivity-sensitive plans toward stable ones, and a
//! refactor that silently shifts these crossovers should fail here.

use robust_qo::prelude::*;

const THRESHOLDS: [f64; 4] = [0.05, 0.50, 0.80, 0.95];
const SEED: u64 = 42;

/// The chosen plan shape at each threshold in [`THRESHOLDS`] order.
fn shapes(db: RobustDb, query: &Query) -> Vec<String> {
    let mut db = db;
    let mut out = Vec::new();
    for &t in &THRESHOLDS {
        db = db.with_threshold(ConfidenceThreshold::new(t));
        out.push(db.optimizer().optimize(query).shape());
    }
    out
}

fn tpch_db() -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: SEED,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED)
}

#[test]
fn exp1_single_table_shapes() {
    // Experiment 1: correlated date predicates on lineitem.  A moderate
    // offset keeps the true selectivity in the contested region between
    // the index plan and the sequential scan.
    let db = tpch_db();
    let query = Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(110))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
    let got = shapes(db, &query);
    let printable = got.join(" ");
    // Low thresholds gamble on the index intersection; at T = 95% the
    // optimizer retreats to the selectivity-insensitive sequential scan.
    assert_eq!(
        got,
        vec!["agg(ixsect)", "agg(ixsect)", "agg(ixsect)", "agg(seqscan)",],
        "exp1 shapes at T=5/50/80/95: {printable}"
    );
}

#[test]
fn exp2_join_shapes() {
    // Experiment 2: lineitem ⋈ orders ⋈ part with a filter on part.
    let db = tpch_db();
    let query = Query::over(&["lineitem", "orders", "part"])
        .filter("part", exp2_part_predicate(212))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
    let got = shapes(db, &query);
    let printable = got.join(" ");
    // The optimistic plans drive an indexed nested-loop into lineitem;
    // rising thresholds inflate the join cardinality upper bound until
    // hash/merge joins over full scans win.
    assert_eq!(
        got,
        vec![
            "agg(mj(inl(seqscan,lineitem),seqscan))",
            "agg(mj(inl(seqscan,lineitem),seqscan))",
            "agg(hj(seqscan,semijoin[1]))",
            "agg(mj(hj(seqscan,seqscan),seqscan))",
        ],
        "exp2 shapes at T=5/50/80/95: {printable}"
    );
}

#[test]
fn exp3_star_shapes() {
    // Experiment 3: star join with three filtered dimensions.
    let data = StarData::generate(&StarConfig {
        fact_rows: 30_000,
        seed: SEED,
    });
    let db = RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED);
    let mut query = Query::over(&["fact", "dim1", "dim2", "dim3"])
        .aggregate(AggExpr::sum("f_measure1", "total"));
    for dim in ["dim1", "dim2", "dim3"] {
        query = query.filter(dim, exp3_dim_predicate(3));
    }
    let got = shapes(db, &query);
    let printable = got.join(" ");
    // At this fact-table size the left-deep hash-join cascade dominates
    // at every threshold; the pin guards join-enumeration order.
    let stable = "agg(hj(seqscan,hj(seqscan,hj(seqscan,seqscan))))".to_string();
    assert_eq!(
        got,
        vec![stable.clone(), stable.clone(), stable.clone(), stable],
        "exp3 shapes at T=5/50/80/95: {printable}"
    );
}
