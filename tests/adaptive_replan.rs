//! Regression tests for the forced-misestimate adaptive path.
//!
//! The scenario: `FeedbackStore::inject_observation` plants a wildly
//! wrong selectivity for the part predicate (50% when the truth is a
//! handful of rows), so the first plan is provably bad — a scan-based
//! hash join sized for half the part table.  The runtime cardinality
//! guard at the hash build must fire after the (cheap) part access,
//! *before* the expensive lineitem scan, and the re-plan — primed with
//! the observed truth — must switch to the indexed nested-loops plan the
//! truthful optimizer would have chosen, resuming against the
//! materialized part rows.
//!
//! Every test constructs fresh, identically-seeded databases per arm:
//! `run_adaptive` feeds observations back into its database, which would
//! otherwise let a later static `run` on the same handle benefit from
//! the adaptive run's discoveries.

use robust_qo::prelude::*;

/// Deterministic database: TPC-H-like at scale 0.01 (≈60k lineitem,
/// 1000 part), fixed generator and sampling seeds.
fn db() -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 1234,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, 9)
}

/// The narrow part-predicate query (window 250 ⇒ ~1 qualifying part).
fn query() -> Query {
    Query::over(&["lineitem", "part"])
        .filter("part", exp2_part_predicate(250))
        .aggregate(AggExpr::count_star("n"))
        .aggregate(AggExpr::sum("l_extendedprice", "rev"))
}

/// Plants the wildly wrong selectivity: half the part table matches.
fn inject(handle: &RobustDb) {
    let pred = exp2_part_predicate(250);
    handle
        .feedback()
        .inject_observation(&["part"], &[("part", &pred)], 0.5);
}

#[test]
fn forced_misestimate_trips_guard_and_beats_static_plan() {
    let static_db = db();
    inject(&static_db);
    let static_run = static_db.run(&query());
    assert!(
        static_run.plan.shape_label().contains("hj"),
        "misestimate must push the static plan to a scan-based join, got {}",
        static_run.plan.shape_label()
    );

    let adaptive_db = db();
    inject(&adaptive_db);
    let adaptive = adaptive_db.run_adaptive(&query());

    // ≥1 guard fired, and each trip's q-error exceeded the bound.
    let bound = adaptive_db.adaptive_policy().guard_bound;
    assert!(adaptive.replans() >= 1, "guard must fire");
    for event in &adaptive.events {
        assert!(
            event.q_error > bound,
            "trip below the guard bound: {}",
            event.render()
        );
        assert!(
            event.resumed,
            "fragment must be grafted: {}",
            event.render()
        );
        assert!(
            event.threshold_after.value() >= event.threshold_before.value(),
            "escalation never lowers the threshold"
        );
    }

    // Answers are bit-identical to the static run.
    assert_eq!(adaptive.outcome.rows, static_run.rows);
    assert_eq!(adaptive.outcome.columns, static_run.columns);

    // The re-planned fragments brought every estimated node at or below
    // the guard bound: the final, completed execution has no violating
    // breaker left.
    for node in adaptive.metrics.preorder() {
        if let Some(q) = node.q_error() {
            assert!(
                q <= bound,
                "final plan still violates the guard bound at {}: q={q}",
                node.label
            );
        }
    }

    // Total tracked cost (including all partial executions) beats the
    // static plan — the guard fired before the expensive probe side ran.
    assert!(
        adaptive.outcome.simulated_seconds < static_run.simulated_seconds,
        "adaptive {} vs static {}",
        adaptive.outcome.simulated_seconds,
        static_run.simulated_seconds
    );
}

#[test]
fn disabled_policy_observes_zero_replans_and_static_cost() {
    let static_db = db();
    inject(&static_db);
    let static_run = static_db.run(&query());

    let disabled_db = db().with_adaptive_policy(AdaptivePolicy::disabled());
    inject(&disabled_db);
    let disabled = disabled_db.run_adaptive(&query());

    assert_eq!(disabled.replans(), 0);
    assert_eq!(disabled.outcome.rows, static_run.rows);
    assert_eq!(
        disabled.outcome.simulated_seconds, static_run.simulated_seconds,
        "disabled guards must reproduce the static plan's exact cost"
    );
    assert_eq!(
        disabled.outcome.plan.shape_label(),
        static_run.plan.shape_label()
    );
}

#[test]
fn trip_points_and_costs_are_thread_invariant() {
    let reference = {
        let handle = db();
        inject(&handle);
        handle.run_adaptive(&query())
    };
    assert!(reference.replans() >= 1);
    for threads in [2usize, 8] {
        let handle = db().with_exec_options(ExecOptions::with_threads(threads));
        inject(&handle);
        let outcome = handle.run_adaptive(&query());
        assert_eq!(outcome.outcome.rows, reference.outcome.rows, "t={threads}");
        assert_eq!(outcome.replans(), reference.replans(), "t={threads}");
        assert_eq!(
            outcome.outcome.simulated_seconds, reference.outcome.simulated_seconds,
            "t={threads}"
        );
        for (a, b) in outcome.events.iter().zip(&reference.events) {
            assert_eq!(a.node, b.node, "t={threads}");
            assert_eq!(a.actual_rows, b.actual_rows, "t={threads}");
            assert_eq!(a.new_shape, b.new_shape, "t={threads}");
        }
    }
}

#[test]
fn replanned_fragments_bypass_the_plan_cache() {
    let handle = db();
    inject(&handle);
    let adaptive = handle.run_adaptive(&query());
    assert!(adaptive.replans() >= 1, "scenario requires a trip");

    // The initial plan was cached by `optimize`; the trip's observation
    // drift-evicted that fingerprint, and no re-planned fragment was ever
    // inserted — the cache ends empty.
    let stats = handle.cache_stats();
    assert!(
        stats.drift_evictions >= 1,
        "triggering fingerprint must be drift-evicted: {stats:?}"
    );
    assert_eq!(
        handle.plan_cache().len(),
        0,
        "re-planned fragments must never be cached"
    );

    // The next static run re-plans with the fed-back truth and lands on
    // the good plan directly — the cross-query payoff of the trip.
    let follow_up = handle.run(&query());
    assert_eq!(
        follow_up.plan.shape_label(),
        adaptive
            .outcome
            .plan
            .shape_label()
            .replace("mat#1", "inl(seqscan,lineitem)"),
        "follow-up should adopt the corrected plan family"
    );
    assert_eq!(follow_up.rows, adaptive.outcome.rows);
}

#[test]
fn second_guard_trip_escalates_to_penalty_selection() {
    // The exp2 scenario at scale 0.005 trips twice: the first re-plan
    // raises the threshold but stays in quantile mode; the second
    // escalates to expected-penalty selection — re-planning the
    // remainder by integrating over the posterior instead of collapsing
    // it at an even higher quantile.
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: 42,
    });
    let handle = RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, 42);
    let pred = exp2_part_predicate(212);
    let query = Query::over(&["lineitem", "orders", "part"])
        .filter("part", pred.clone())
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
    handle
        .feedback()
        .inject_observation(&["part"], &[("part", &pred)], 0.5);

    let adaptive = handle.run_adaptive(&query);
    assert!(
        adaptive.replans() >= 2,
        "scenario must trip twice to exercise the escalation ladder"
    );

    let first = &adaptive.events[0];
    assert_eq!(first.selection_before, PlanSelection::Quantile);
    assert_eq!(
        first.selection_after,
        PlanSelection::Quantile,
        "the first trip only raises the threshold"
    );
    assert!(!first.render().contains("[penalty]"));

    let second = &adaptive.events[1];
    assert_eq!(second.selection_before, PlanSelection::Quantile);
    assert_eq!(
        second.selection_after,
        PlanSelection::ExpectedPenalty,
        "the second trip must switch selection modes"
    );
    assert!(
        second.render().contains("[penalty]"),
        "escalation must be visible in the event log: {}",
        second.render()
    );
    assert!(
        second.resumed,
        "the penalty re-plan must still graft the finished fragment"
    );

    // Escalated re-plans bypass the plan cache exactly like quantile
    // ones: the triggering fingerprint is drift-evicted and no fragment
    // plan is ever inserted.
    assert!(handle.cache_stats().drift_evictions >= 1);
    assert_eq!(
        handle.plan_cache().len(),
        0,
        "re-planned fragments must never be cached"
    );
}

#[test]
fn accurate_estimates_never_trip() {
    // No injection, and a wide predicate the sample estimates well: the
    // adaptive run must not pay any re-plans and must match `run`
    // exactly.  (A *narrow* predicate can legitimately trip even without
    // injection — sampling zero of a handful of qualifying rows is
    // exactly the misestimate the guards exist to catch.)
    let wide = Query::over(&["lineitem", "part"])
        .filter("part", Expr::col("p_x").lt(Expr::lit(300i64)))
        .aggregate(AggExpr::count_star("n"))
        .aggregate(AggExpr::sum("l_extendedprice", "rev"));
    let static_db = db();
    let static_run = static_db.run(&wide);
    let adaptive_db = db();
    let adaptive = adaptive_db.run_adaptive(&wide);
    assert_eq!(adaptive.replans(), 0);
    assert_eq!(adaptive.outcome.rows, static_run.rows);
    assert_eq!(
        adaptive.outcome.simulated_seconds,
        static_run.simulated_seconds
    );
}
