//! Guard-index / annotation alignment over the golden plan suite.
//!
//! The adaptive executor arms guards at pre-order indices computed by
//! `rqo_exec::guard_points`, and the optimizer attaches per-node
//! estimates at pre-order indices computed by its own `annotate_plan`
//! pass.  Both used to walk the plan with hand-maintained counters; both
//! now iterate the canonical [`PhysicalPlan::preorder`] numbering.  A
//! disagreement between the two traversals would silently arm a guard
//! with another node's estimate — the failure mode this test pins.
//!
//! The oracle below is an *independent* re-implementation of the original
//! recursive counter walk.  For every plan shape the golden suite
//! produces (all three paper experiments at T ∈ {5%, 50%, 80%, 95%}),
//! plus synthetic plans with `Materialized` grafts, the oracle and the
//! shared helper must agree exactly, and the annotation vector must have
//! one entry per pre-order node.

use robust_qo::prelude::*;

const THRESHOLDS: [f64; 4] = [0.05, 0.50, 0.80, 0.95];
const SEED: u64 = 42;

/// Independent oracle: the original recursive traversal with a manual
/// pre-order counter (a child's index is the counter value at the moment
/// of recursion).  Kept deliberately separate from the shared
/// `preorder()` helper so the two can disagree.
fn oracle_guard_points(plan: &PhysicalPlan) -> Vec<usize> {
    let mut out = Vec::new();
    walk(plan, &mut 0, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

fn walk(plan: &PhysicalPlan, counter: &mut usize, out: &mut Vec<usize>) {
    let my = *counter;
    *counter += 1;
    match plan {
        PhysicalPlan::IndexIntersection { .. } | PhysicalPlan::StarSemiJoin { .. } => {
            out.push(my);
        }
        PhysicalPlan::HashJoin { build, probe, .. } => {
            mark(build, *counter, out);
            walk(build, counter, out);
            walk(probe, counter, out);
        }
        PhysicalPlan::MergeJoin { left, right, .. } => {
            mark(left, *counter, out);
            walk(left, counter, out);
            mark(right, *counter, out);
            walk(right, counter, out);
        }
        PhysicalPlan::IndexedNlJoin { outer, .. } => {
            mark(outer, *counter, out);
            walk(outer, counter, out);
        }
        PhysicalPlan::HashAggregate { input, .. } => {
            mark(input, *counter, out);
            walk(input, counter, out);
        }
        _ => {
            for child in plan.children() {
                walk(child, counter, out);
            }
        }
    }
}

fn mark(child: &PhysicalPlan, idx: usize, out: &mut Vec<usize>) {
    if !matches!(child, PhysicalPlan::Materialized { .. }) {
        out.push(idx);
    }
}

/// Asserts the shared helper and the oracle agree on `planned`, and that
/// the annotation pass produced exactly one (possibly empty) slot per
/// pre-order node.
fn check(planned: &PlannedQuery, context: &str) {
    let plan = &planned.plan;
    let shared = robust_qo::exec::guard_points(plan);
    let oracle = oracle_guard_points(plan);
    assert_eq!(
        shared,
        oracle,
        "{context}: guard_points disagree on shape {}",
        planned.shape()
    );
    let nodes = plan.preorder().len();
    assert_eq!(
        planned.node_annotations.len(),
        nodes,
        "{context}: annotate_plan must cover every pre-order node of shape {}",
        planned.shape()
    );
}

fn check_suite(mut db: RobustDb, query: &Query, name: &str) {
    for &t in &THRESHOLDS {
        db = db.with_threshold(ConfidenceThreshold::new(t));
        let planned = db.optimizer().optimize(query);
        check(&planned, &format!("{name} @ T={t}"));
    }
}

#[test]
fn golden_tpch_plans_align() {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: SEED,
    });
    let db = RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED);

    let exp1 = Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(110))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
    check_suite(db, &exp1, "exp1");

    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: SEED,
    });
    let db = RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED);
    let exp2 = Query::over(&["lineitem", "orders", "part"])
        .filter("part", exp2_part_predicate(212))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
    check_suite(db, &exp2, "exp2");
}

#[test]
fn golden_star_plans_align() {
    let data = StarData::generate(&StarConfig {
        fact_rows: 30_000,
        seed: SEED,
    });
    let db = RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED);
    let mut query = Query::over(&["fact", "dim1", "dim2", "dim3"])
        .aggregate(AggExpr::sum("f_measure1", "total"));
    for dim in ["dim1", "dim2", "dim3"] {
        query = query.filter(dim, exp3_dim_predicate(3));
    }
    check_suite(db, &query, "exp3");
}

#[test]
fn synthetic_plans_with_materialized_grafts_align() {
    // Shapes the optimizer only produces mid-adaptive-run: Materialized
    // leaves replacing finished fragments.  The oracle must skip them as
    // guard points exactly like the shared helper.
    let scan = |t: &str| PhysicalPlan::SeqScan {
        table: t.into(),
        predicate: None,
    };
    let mat = |slot: usize| PhysicalPlan::Materialized {
        slot,
        tables: vec!["lineitem".into()],
        predicates: Vec::new(),
    };

    let plans = [
        // Aggregate over a hash join whose build side is materialized.
        PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                build: Box::new(mat(0)),
                probe: Box::new(scan("orders")),
                build_key: "l_orderkey".into(),
                probe_key: "o_orderkey".into(),
            }),
            group_by: vec![],
            aggregates: vec![AggExpr::count_star("n")],
        },
        // Merge join with one materialized side, nested under a filter.
        PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::MergeJoin {
                left: Box::new(mat(1)),
                right: Box::new(PhysicalPlan::IndexedNlJoin {
                    outer: Box::new(scan("orders")),
                    inner_table: "lineitem".into(),
                    inner_index_column: "l_orderkey".into(),
                    outer_key: "o_orderkey".into(),
                }),
                left_key: "l_orderkey".into(),
                right_key: "o_orderkey".into(),
            }),
            predicate: Expr::col("l_quantity").ge(Expr::lit(1)),
        },
        // A bare materialized leaf (fully-resumed query).
        PhysicalPlan::HashAggregate {
            input: Box::new(mat(0)),
            group_by: vec![],
            aggregates: vec![AggExpr::count_star("n")],
        },
    ];

    for (i, plan) in plans.iter().enumerate() {
        assert_eq!(
            robust_qo::exec::guard_points(plan),
            oracle_guard_points(plan),
            "synthetic plan {i}"
        );
    }
}
