//! End-to-end integration tests: all three paper scenarios planned and
//! executed at small scale, checking both correctness (every chosen plan
//! returns the true answer) and the robustness claims (variance ordering
//! across thresholds, histogram blindness to correlation).

use std::sync::Arc;

use robust_qo::prelude::*;
use rqo_core::OracleEstimator;
use rqo_math::RunningStats;
use rqo_optimizer::detect_sorted_columns;

fn tpch() -> Arc<Catalog> {
    Arc::new(
        TpchData::generate(&TpchConfig {
            scale_factor: 0.005,
            seed: 42,
        })
        .into_catalog(),
    )
}

fn robust_optimizer(cat: &Arc<Catalog>, t: f64, seed: u64) -> Optimizer {
    let repo = Arc::new(SynopsisRepository::build_all(cat, 500, seed));
    Optimizer::new(
        Arc::clone(cat),
        CostParams::default(),
        Arc::new(RobustEstimator::new(
            repo,
            EstimatorConfig::with_threshold(ConfidenceThreshold::new(t)),
        )),
    )
}

/// Every plan the optimizer emits — whatever the estimator said — must
/// compute the correct answer: statistics influence cost, never results.
#[test]
fn all_exp1_plans_return_true_counts() {
    let cat = tpch();
    let lineitem = cat.table("lineitem").unwrap();
    for threshold in [0.05, 0.5, 0.95] {
        let opt = robust_optimizer(&cat, threshold, 1);
        for offset in [0i64, 80, 100, 120, 130] {
            let pred = exp1_lineitem_predicate(offset);
            let truth =
                (true_selectivity(lineitem, &pred) * lineitem.num_rows() as f64).round() as i64;
            let q = Query::over(&["lineitem"])
                .filter("lineitem", pred)
                .aggregate(AggExpr::count_star("n"));
            let planned = opt.optimize(&q);
            let (batch, _) = robust_qo::exec::execute(&planned.plan, &cat, opt.params());
            assert_eq!(
                batch.rows[0][0].as_int(),
                truth,
                "offset {offset} threshold {threshold} plan {}",
                planned.shape()
            );
        }
    }
}

#[test]
fn all_exp2_plans_agree_across_estimators() {
    let cat = tpch();
    let oracle: Arc<dyn CardinalityEstimator> = Arc::new(OracleEstimator::new(Arc::clone(&cat)));
    let histogram: Arc<dyn CardinalityEstimator> =
        Arc::new(HistogramEstimator::build_default(&cat));
    let robust = robust_optimizer(&cat, 0.8, 2);
    let sorted = detect_sorted_columns(&cat);
    for window in [60i64, 200, 226, 240] {
        let q = Query::over(&["lineitem", "orders", "part"])
            .filter("part", exp2_part_predicate(window))
            .aggregate(AggExpr::count_star("n"))
            .aggregate(AggExpr::sum("l_extendedprice", "rev"));
        let mut answers = Vec::new();
        for est in [&oracle, &histogram] {
            let opt = Optimizer::with_metadata(
                Arc::clone(&cat),
                CostParams::default(),
                Arc::clone(est),
                sorted.clone(),
            );
            let planned = opt.optimize(&q);
            let (batch, _) = robust_qo::exec::execute(&planned.plan, &cat, opt.params());
            answers.push(batch.rows[0].clone());
        }
        let planned = robust.optimize(&q);
        let (batch, _) = robust_qo::exec::execute(&planned.plan, &cat, robust.params());
        answers.push(batch.rows[0].clone());
        assert_eq!(answers[0], answers[1], "window {window}");
        assert_eq!(answers[0], answers[2], "window {window}");
    }
}

/// The paper's core predictability claim, measured end to end: across an
/// Experiment-1 workload, execution-time variance at T=95% is (weakly)
/// below variance at T=5%, and the histogram baseline cannot change plans.
#[test]
fn variance_ordering_and_histogram_constancy() {
    let cat = tpch();
    let offsets = [0i64, 70, 90, 100, 110, 120, 130];
    let params = CostParams::default();

    let mut stats = std::collections::HashMap::<String, RunningStats>::new();
    let mut histogram_shapes = std::collections::HashSet::new();

    for seed in 0..5u64 {
        for &t in &[0.05, 0.95] {
            let opt = robust_optimizer(&cat, t, seed);
            for &offset in &offsets {
                let q = Query::over(&["lineitem"])
                    .filter("lineitem", exp1_lineitem_predicate(offset))
                    .aggregate(AggExpr::sum("l_extendedprice", "rev"));
                let planned = opt.optimize(&q);
                let (_, cost) = robust_qo::exec::execute(&planned.plan, &cat, &params);
                stats
                    .entry(format!("T{t}"))
                    .or_default()
                    .push(cost.seconds(&params));
            }
        }
    }
    let hist: Arc<dyn CardinalityEstimator> = Arc::new(HistogramEstimator::build_default(&cat));
    let opt = Optimizer::new(Arc::clone(&cat), params, hist);
    for &offset in &offsets {
        let q = Query::over(&["lineitem"])
            .filter("lineitem", exp1_lineitem_predicate(offset))
            .aggregate(AggExpr::sum("l_extendedprice", "rev"));
        histogram_shapes.insert(opt.optimize(&q).shape());
    }

    let std_aggressive = stats["T0.05"].std_dev();
    let std_conservative = stats["T0.95"].std_dev();
    assert!(
        std_conservative <= std_aggressive + 1e-9,
        "std(T=95) = {std_conservative} should not exceed std(T=5) = {std_aggressive}"
    );
    assert_eq!(
        histogram_shapes.len(),
        1,
        "histogram optimizer must be blind to the offset: {histogram_shapes:?}"
    );
}

#[test]
fn star_scenario_correctness_and_adaptivity() {
    let cat = Arc::new(
        StarData::generate(&StarConfig {
            fact_rows: 400_000,
            seed: 9,
        })
        .into_catalog(),
    );
    let opt = robust_optimizer(&cat, 0.5, 3);
    let oracle = OracleEstimator::new(Arc::clone(&cat));
    let mut shapes = std::collections::HashSet::new();
    for level in [0i64, 4, 9] {
        let pred = exp3_dim_predicate(level);
        let mut q =
            Query::over(&["fact", "dim1", "dim2", "dim3"]).aggregate(AggExpr::count_star("n"));
        for dim in ["dim1", "dim2", "dim3"] {
            q = q.filter(dim, exp3_dim_predicate(level));
        }
        let planned = opt.optimize(&q);
        shapes.insert(planned.shape());
        let (batch, _) = robust_qo::exec::execute(&planned.plan, &cat, opt.params());
        let req = rqo_core::EstimationRequest::new(
            vec!["fact", "dim1", "dim2", "dim3"],
            vec![("dim1", &pred), ("dim2", &pred), ("dim3", &pred)],
        );
        let truth = (oracle.estimate(&req).selectivity
            * cat.table("fact").unwrap().num_rows() as f64)
            .round() as i64;
        assert_eq!(batch.rows[0][0].as_int(), truth, "level {level}");
    }
    assert!(
        shapes.len() >= 2,
        "the robust optimizer should adapt the star plan across levels: {shapes:?}"
    );
}

/// Queries through the high-level facade behave identically to the
/// hand-wired stack.
#[test]
fn facade_matches_manual_stack() {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: 42,
    });
    let db = RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, 1)
        .with_threshold(ConfidenceThreshold::new(0.8));
    let q = Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(90))
        .aggregate(AggExpr::count_star("n"));
    let outcome = db.run(&q);

    let cat = tpch();
    let opt = robust_optimizer(&cat, 0.8, 1);
    let planned = opt.optimize(&q);
    let (batch, cost) = robust_qo::exec::execute(&planned.plan, &cat, opt.params());
    assert_eq!(outcome.rows, batch.rows);
    assert!((outcome.simulated_seconds - cost.seconds(opt.params())).abs() < 1e-12);
}
