//! Workload-replay regret harness: does expected-penalty selection
//! actually reduce realized regret against quantile selection at any
//! fixed threshold?
//!
//! Protocol, per query of a skewed workload (narrow/empty predicate
//! windows the 500-tuple synopsis estimates badly, plus wide ones it
//! estimates well):
//!
//! 1. **Choose** — plan the query under quantile mode at every T in
//!    {5, 50, 80, 95} and under penalty mode, all against the same
//!    synopsis-based estimator (no feedback yet).
//! 2. **Observe** — price every distinct chosen plan with a recording
//!    oracle: each estimation request's *true* selectivity is computed
//!    exactly and recorded into the database's `FeedbackStore` — the
//!    same store `EXPLAIN ANALYZE` would populate, just with complete
//!    coverage of every candidate's requests.
//! 3. **Replay** — re-price every chosen plan through the database's
//!    own estimator, which now serves every request from the observed
//!    feedback.  The replayed cost is the realized cost of running that
//!    plan; per-query regret is realized cost minus the cheapest
//!    realized cost among the plans any mode chose.
//!
//! The pin: penalty mode's total replayed regret is no worse than every
//! fixed threshold's, and strictly better than the worst one.

use robust_qo::estimator::{OracleEstimator, SelectivityEstimate};
use robust_qo::optimizer::{detect_sorted_columns, enumerate::PlanContext, price_plan, CostModel};
use robust_qo::prelude::*;
use std::sync::Arc;

const THRESHOLDS: [f64; 4] = [0.05, 0.5, 0.8, 0.95];

/// A recording truth source: answers with the oracle's exact
/// selectivity and records it into the feedback store, so a later
/// replay through the robust estimator prices at observed values.
struct RecordingOracle {
    inner: OracleEstimator,
    store: Arc<FeedbackStore>,
}

impl CardinalityEstimator for RecordingOracle {
    fn name(&self) -> &str {
        "recording-oracle"
    }

    fn estimate(&self, request: &EstimationRequest<'_>) -> SelectivityEstimate {
        let estimate = self.inner.estimate(request);
        self.store
            .record(&request.tables, &request.predicates, estimate.selectivity);
        estimate
    }
}

fn db() -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: 42,
    });
    // The paper's 500-tuple synopsis: accurate on wide windows, blind on
    // narrow/empty ones — the mix that separates point-collapsing
    // thresholds from posterior integration.
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, 42)
}

/// Skewed workload: lineitem windows from dense to empty (offset 110 is
/// past the data), and the narrow part-join at several windows.
fn workload() -> Vec<Query> {
    let mut queries = Vec::new();
    // Lineitem windows sliding off the data: offset 70 is the dense
    // tail an aggressive threshold misjudges into an index-intersection
    // disaster; offset 110 is past the data, where a conservative
    // threshold pays for a full scan the index would have skipped.
    for offset in [0, 30, 70, 110] {
        queries.push(
            Query::over(&["lineitem", "orders"])
                .filter("lineitem", exp1_lineitem_predicate(offset))
                .aggregate(AggExpr::sum("l_extendedprice", "revenue")),
        );
    }
    // Wide part windows: the aggressive threshold bets on an indexed
    // nested-loops join that the true density punishes.
    for window in [50, 150] {
        queries.push(
            Query::over(&["lineitem", "orders", "part"])
                .filter("part", exp2_part_predicate(window))
                .aggregate(AggExpr::sum("l_extendedprice", "revenue")),
        );
    }
    queries
}

#[test]
fn penalty_total_regret_beats_every_fixed_threshold() {
    let db = db();
    let opt = db.optimizer();
    let catalog = db.catalog();
    let sorted = detect_sorted_columns(&catalog);
    let oracle = RecordingOracle {
        inner: OracleEstimator::new(Arc::clone(&catalog)),
        store: Arc::clone(db.feedback()),
    };

    // 1. Choose, all arms and all queries, before any observation
    // exists (the feedback store is shared, and an observation recorded
    // for one query must not leak into another's planning).
    let chosen: Vec<(Query, Vec<robust_qo::exec::PhysicalPlan>)> = workload()
        .into_iter()
        .map(|query| {
            let mut plans: Vec<_> = THRESHOLDS
                .iter()
                .map(|&t| {
                    opt.optimize(&query.clone().with_hint(ConfidenceThreshold::new(t)))
                        .plan
                })
                .collect();
            plans.push(
                opt.optimize(&query.clone().with_selection(PlanSelection::ExpectedPenalty))
                    .plan,
            );
            (query, plans)
        })
        .collect();

    // arm index 0..4 = fixed thresholds, 4 = penalty.
    let mut regret = [0.0f64; 5];
    let mut differed = false;
    for (query, plans) in chosen {
        // 2. Observe: price each distinct plan once with the recording
        // oracle, capturing every request's true selectivity.
        let model = CostModel::new(&catalog, opt.params());
        let ctx = PlanContext::new(&catalog, model, &oracle, &sorted);
        for plan in &plans {
            price_plan(&ctx, &query, plan);
        }

        // 3. Replay through the database's own estimator — every request
        // now resolves from the observed feedback.
        let replay_est = db.optimizer();
        let model = CostModel::new(&catalog, opt.params());
        let ctx = PlanContext::new(&catalog, model, replay_est.estimator().as_ref(), &sorted);
        let realized: Vec<f64> = plans
            .iter()
            .map(|p| price_plan(&ctx, &query, p).cost_ms)
            .collect();
        let best = realized.iter().cloned().fold(f64::INFINITY, f64::min);
        for (arm, &cost) in realized.iter().enumerate() {
            regret[arm] += cost - best;
        }
        let penalty_shape = plans[4].shape_label();
        if plans[..4].iter().any(|p| p.shape_label() != penalty_shape) {
            differed = true;
        }
    }

    assert!(
        differed,
        "workload too easy: every arm picked the penalty plan everywhere"
    );
    let penalty = regret[4];
    for (i, &t) in THRESHOLDS.iter().enumerate() {
        assert!(
            penalty <= regret[i] + 1e-9,
            "penalty regret {penalty:.3}ms exceeds fixed T={t}: {:.3}ms (all: {regret:?})",
            regret[i]
        );
    }
    let worst = regret[..4].iter().cloned().fold(0.0f64, f64::max);
    assert!(
        penalty < worst,
        "penalty must strictly beat the worst fixed threshold: {regret:?}"
    );
    // On this workload the posterior integration threads the needle
    // exactly: the aggressive index plan where the window is empty, the
    // scan where it is dense — zero realized regret.
    assert!(
        penalty <= 1e-9,
        "penalty mode should realize the hindsight-optimal plan everywhere here: {regret:?}"
    );
}
