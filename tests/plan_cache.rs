//! Plan-cache correctness and statistics-lifecycle regression tests.
//!
//! Three properties are pinned:
//!
//! 1. **Bit-identity** — a cache hit returns exactly the plan fresh
//!    planning would produce (same plan tree, same cost bits), at any
//!    thread count.
//! 2. **Drift invalidation** — an `EXPLAIN ANALYZE` run whose observed
//!    selectivities drift past the bound evicts exactly the overlapping
//!    fingerprints; disjoint cached plans survive.
//! 3. **Statistics lifecycle** — `refresh_statistics` advances the epoch,
//!    clears feedback (stale observations must not override fresh
//!    samples), and invalidates cached plans; a zero-row observation is
//!    floored at half a tuple instead of pinning the selectivity to 0.0.

use std::sync::Arc;

use robust_qo::prelude::*;

const SEED: u64 = 42;

fn tpch_db() -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: SEED,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, SEED)
}

fn exp1_query(offset: i64) -> Query {
    Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(offset))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
}

/// Asserts two planned queries are bit-identical: same plan tree, same
/// cost/cardinality estimate bits.
fn assert_plans_bit_identical(a: &PlannedQuery, b: &PlannedQuery, context: &str) {
    assert_eq!(a.plan, b.plan, "{context}: plan trees differ");
    assert_eq!(
        a.estimated_cost_ms.to_bits(),
        b.estimated_cost_ms.to_bits(),
        "{context}: estimated cost differs"
    );
    assert_eq!(
        a.estimated_rows.to_bits(),
        b.estimated_rows.to_bits(),
        "{context}: estimated rows differ"
    );
}

use robust_qo::optimizer::PlannedQuery;

#[test]
fn warm_hits_are_bit_identical_across_thread_counts() {
    let db = tpch_db();
    let queries: Vec<Query> = [0i64, 30, 60, 110].into_iter().map(exp1_query).collect();

    // Reference: fresh, uncached planning.
    let fresh: Vec<PlannedQuery> = queries.iter().map(|q| db.optimizer().optimize(q)).collect();

    // Warm the cache once, then hammer it from 1, 2, and 8 threads.
    for q in &queries {
        db.optimize(q);
    }
    for threads in [1usize, 2, 8] {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for (q, reference) in queries.iter().zip(&fresh) {
                        let cached = db.optimize(q);
                        assert_plans_bit_identical(
                            &cached,
                            reference,
                            &format!("{threads} threads"),
                        );
                    }
                });
            }
        });
    }

    let stats = db.cache_stats();
    assert_eq!(stats.entries, queries.len());
    assert_eq!(stats.misses, queries.len() as u64, "one miss per query");
    // Warm pass + (1 + 2 + 8) threaded passes, all hits.
    assert_eq!(stats.hits, 11 * queries.len() as u64);
    assert_eq!(stats.drift_evictions, 0);
}

#[test]
fn cache_hit_shares_the_memoized_plan() {
    let db = tpch_db();
    let q = exp1_query(30);
    let first = db.optimize(&q);
    let second = db.optimize(&q);
    assert!(
        Arc::ptr_eq(&first, &second),
        "a hit returns the same shared plan, not a re-plan"
    );
    // Construction order must not defeat the fingerprint.
    let reordered = Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(30))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
    assert!(Arc::ptr_eq(&first, &db.optimize(&reordered)));
    assert_eq!(db.cache_stats().hits, 2);
}

#[test]
fn drift_evicts_exactly_the_overlapping_fingerprints() {
    // A conservative threshold badly inflates the estimate for the
    // near-empty offset-110 window, so its observed selectivity drifts
    // far past the bound; the offset-30 query's fingerprint shares no
    // estimation-request key and must survive.
    let db = tpch_db().with_threshold(ConfidenceThreshold::new(0.95));
    let drifting = exp1_query(110);
    let bystander = exp1_query(30);

    db.run(&drifting);
    db.run(&bystander);
    assert_eq!(db.cache_stats().entries, 2);

    let analyzed = db.explain_analyze(&drifting);
    assert!(!analyzed.outcome.rows.is_empty());
    let stats = db.cache_stats();
    assert!(
        stats.drift_evictions >= 1,
        "observed drift must evict, stats: {stats}"
    );
    assert!(
        !db.plan_cache().contains(&db.fingerprint(&drifting)),
        "the drifting query's fingerprint is gone"
    );
    assert!(
        db.plan_cache().contains(&db.fingerprint(&bystander)),
        "the disjoint query's fingerprint survives"
    );

    // The next optimization re-plans with feedback in effect: its
    // estimate now equals the observed cardinality.
    let replanned = db.optimize(&drifting);
    let re = db.explain_analyze(&drifting);
    for node in re.metrics.preorder() {
        if let Some(q) = node.q_error() {
            assert!(
                q <= 1.0 + 1e-6,
                "post-eviction re-plan must price at observed selectivities, q={q}"
            );
        }
    }
    drop(replanned);
}

#[test]
fn refresh_statistics_clears_stale_feedback() {
    // Regression (stale-feedback bug): feedback observed against the old
    // statistics survived `refresh_statistics`, so re-optimization kept
    // overriding fresh samples with stale selectivities forever.
    let mut db = tpch_db();
    let q = exp1_query(110);
    let pred = exp1_lineitem_predicate(110);
    let request = EstimationRequest::single("lineitem", &pred);

    db.explain_analyze(&q);
    assert!(!db.feedback().is_empty());
    {
        let opt = db.optimizer();
        assert!(
            matches!(
                opt.estimator().estimate(&request).source,
                EstimateSource::Feedback
            ),
            "after EXPLAIN ANALYZE the estimate comes from feedback"
        );
    }
    assert_eq!(db.stats_epoch(), 0);

    db.refresh_statistics(999);

    assert_eq!(db.stats_epoch(), 1);
    assert!(
        db.feedback().is_empty(),
        "refresh must drop observations measured against the old statistics"
    );
    assert!(
        db.plan_cache().is_empty(),
        "refresh must invalidate cached plans"
    );
    let opt = db.optimizer();
    let source = opt.estimator().estimate(&request).source;
    assert!(
        matches!(source, EstimateSource::JoinSynopsis { .. }),
        "after refresh the estimate reverts to the synopsis, got {source:?}"
    );
}

#[test]
fn refreshed_epoch_never_serves_pre_refresh_plans() {
    let mut db = tpch_db();
    let q = exp1_query(30);
    let before = db.fingerprint(&q);
    db.optimize(&q);
    db.refresh_statistics(7);
    assert_ne!(before, db.fingerprint(&q), "epoch is part of the identity");
    db.optimize(&q);
    let stats = db.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 2),
        "both passes plan fresh across a refresh"
    );
}

#[test]
fn zero_row_observation_does_not_pin_selectivity() {
    // Regression (zero-pinning bug): `rows_out / root_rows` for an empty
    // result recorded exactly 0.0, and every later plan for the predicate
    // was priced at zero cardinality.  The recorded observation is now
    // floored at half a tuple.
    let db = tpch_db();
    // l_quantity is generated in [1, 50], so this matches nothing.
    let empty_pred = Expr::col("l_quantity").lt(Expr::lit(1.0));
    let q = Query::over(&["lineitem"])
        .filter("lineitem", empty_pred.clone())
        .aggregate(AggExpr::count_star("n"));

    let analyzed = db.explain_analyze(&q);
    assert_eq!(
        analyzed.outcome.rows[0][0].as_int(),
        0,
        "the query really matches zero rows"
    );

    let observed = db
        .feedback()
        .lookup(&["lineitem"], &[("lineitem", &empty_pred)])
        .expect("observation recorded");
    assert!(
        observed > 0.0,
        "zero-row run must not record selectivity 0.0"
    );

    let rows = db.catalog().table("lineitem").unwrap().num_rows() as f64;
    assert!(
        (observed - 0.5 / rows).abs() < 1e-12,
        "observation floored at half a tuple, got {observed}"
    );

    // Re-optimization prices the predicate at the floor, not at zero.
    let replanned = db.optimizer().optimize(&q);
    assert!(
        replanned.estimated_rows > 0.0,
        "feedback must not zero out later cardinality estimates"
    );
}
