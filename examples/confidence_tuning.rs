//! Working with selectivity posteriors directly: what the confidence
//! threshold actually does, and the §3.5 extensions (magic distributions,
//! GROUP-BY distinct estimation).
//!
//! ```sh
//! cargo run --release --example confidence_tuning
//! ```

use std::sync::Arc;

use robust_qo::estimator::groupby::estimate_group_count;
use robust_qo::prelude::*;
use robust_qo::stats::JoinSynopsis;

fn main() {
    // --- 1. The posterior, by hand (the paper's §3.4 walkthrough).
    println!("== posterior from a sample: 10 of 100 tuples matched ==");
    let posterior = SelectivityPosterior::from_observation(10, 100, Prior::Jeffreys);
    println!(
        "MLE = {:.3}, posterior mean = {:.3}, std dev = {:.3}",
        posterior.mle(),
        posterior.mean(),
        posterior.std_dev()
    );
    for pct in [20.0, 50.0, 80.0, 95.0] {
        let t = ConfidenceThreshold::from_percent(pct);
        println!(
            "  selectivity at T={pct:>4}%: {:.4}   (paper quotes 7.8% / 10.1% / 12.8% \
             for 20/50/80)",
            posterior.at_threshold(t)
        );
    }
    let (lo, hi) = posterior.credible_interval(0.95);
    println!("  95% credible interval: [{lo:.4}, {hi:.4}]");

    // --- 2. Sample size is what narrows the posterior; the prior barely
    //        matters (Figure 4).
    println!("\n== n=100 vs n=500 at the same 10% match rate ==");
    for (k, n) in [(10usize, 100usize), (50, 500)] {
        let j = SelectivityPosterior::from_observation(k, n, Prior::Jeffreys);
        let u = SelectivityPosterior::from_observation(k, n, Prior::Uniform);
        println!(
            "  n={n:>4}: std dev = {:.4}; |jeffreys - uniform| at T=80% = {:.5}",
            j.std_dev(),
            (j.at_threshold(ConfidenceThreshold::new(0.8))
                - u.at_threshold(ConfidenceThreshold::new(0.8)))
            .abs()
        );
    }

    // --- 2b. Workload knowledge as a prior: if past queries of this
    //         template clustered near 10% selectivity, fitting a prior
    //         from that history sharpens future posteriors (§3.3's
    //         "prior knowledge about the query workload").
    println!("\n== workload-fitted prior ==");
    let history = [0.09, 0.10, 0.11, 0.095, 0.105, 0.1, 0.102, 0.098];
    let fitted = Prior::fit_from_history(&history, 200.0);
    let with_fit = SelectivityPosterior::from_observation(2, 20, fitted);
    let with_jeffreys = SelectivityPosterior::from_observation(2, 20, Prior::Jeffreys);
    println!(
        "  posterior std dev after a 20-tuple sample: jeffreys {:.4}, fitted {:.4}",
        with_jeffreys.std_dev(),
        with_fit.std_dev()
    );

    // --- 3. Magic distributions: the no-statistics fallback also obeys
    //        the threshold.
    println!("\n== magic fallback for a predicate with no statistics ==");
    let magic = MagicPolicy::default();
    for pct in [20.0, 50.0, 80.0, 95.0] {
        println!(
            "  assumed selectivity at T={pct:>4}%: {:.4}",
            magic.selectivity(ConfidenceThreshold::from_percent(pct))
        );
    }

    // --- 4. GROUP BY result-size estimation from the same samples.
    println!("\n== GROUP BY cardinality from a join synopsis ==");
    let catalog = Arc::new(
        TpchData::generate(&TpchConfig {
            scale_factor: 0.01,
            seed: 5,
        })
        .into_catalog(),
    );
    let synopsis = JoinSynopsis::build(&catalog, "lineitem", 500, 9);
    let rows = catalog.table("lineitem").unwrap().num_rows();
    for cols in [vec!["p_brand"], vec!["p_brand", "p_container"]] {
        let est = estimate_group_count(&synopsis, &[], "part", &cols, rows);
        println!("  estimated groups for GROUP BY {cols:?}: {est:.0}");
    }
    println!("  (p_brand has 25 distinct values; brand x container has up to 1000)");
}
