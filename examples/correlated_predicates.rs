//! Correlated predicates: why the AVI assumption breaks optimizers, and
//! what the robust estimator does about it (the paper's Experiment 1 in
//! miniature).
//!
//! The query template fixes two BETWEEN predicates whose *marginal*
//! selectivities never change; a date offset slides their overlap, so the
//! *joint* selectivity sweeps from ~4% down to 0.  One-dimensional
//! histograms cannot see the difference; a join-synopsis sample can.
//!
//! ```sh
//! cargo run --release --example correlated_predicates
//! ```

use std::sync::Arc;

use robust_qo::prelude::*;

fn main() {
    let catalog = Arc::new(
        TpchData::generate(&TpchConfig {
            scale_factor: 0.01, // ~60k lineitem rows
            seed: 11,
        })
        .into_catalog(),
    );
    let lineitem = catalog.table("lineitem").expect("lineitem exists");

    // Statistics: one 500-tuple synopsis repository and the 250-bucket
    // histogram baseline.
    let synopses = Arc::new(SynopsisRepository::build_all(&catalog, 500, 1));
    let histogram: Arc<dyn CardinalityEstimator> =
        Arc::new(HistogramEstimator::build_default(&catalog));
    let robust: Arc<dyn CardinalityEstimator> = Arc::new(RobustEstimator::new(
        Arc::clone(&synopses),
        EstimatorConfig::with_threshold(ConfidenceThreshold::new(0.8)),
    ));

    println!(
        "{:>8} {:>10} {:>12} {:>12} | {:>18} {:>18}",
        "offset", "true sel", "robust est", "AVI est", "robust plan", "histogram plan"
    );
    let params = CostParams::default();
    for offset in [0i64, 60, 85, 95, 105, 115, 130] {
        let pred = exp1_lineitem_predicate(offset);
        let truth = true_selectivity(lineitem, &pred);
        let request = EstimationRequest::single("lineitem", &pred);
        let r_est = robust.estimate(&request).selectivity;
        let h_est = histogram.estimate(&request).selectivity;

        let query = Query::over(&["lineitem"])
            .filter("lineitem", pred)
            .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
        let r_plan = Optimizer::new(Arc::clone(&catalog), params, Arc::clone(&robust))
            .optimize(&query)
            .shape();
        let h_plan = Optimizer::new(Arc::clone(&catalog), params, Arc::clone(&histogram))
            .optimize(&query)
            .shape();
        println!(
            "{offset:>8} {truth:>10.5} {r_est:>12.5} {h_est:>12.5} | {r_plan:>18} {h_plan:>18}"
        );
    }
    println!(
        "\nThe AVI estimate never moves (marginals are constant), so the histogram \
         optimizer is locked into one plan; the sampling estimate tracks the joint \
         selectivity and switches plans at the crossover."
    );
}
