//! Star-join planning (the paper's Experiment 3 in miniature): a fact
//! table whose join selectivity against three filtered dimensions ranges
//! from ~0% to 10% while every dimension filter stays at 10%.
//!
//! An AVI-based optimizer always estimates 10%³ = 0.1% and picks one
//! plan; the robust optimizer reads the joint selectivity off the fact
//! synopsis and switches between the semijoin strategy (few matches) and
//! cascading hash joins (many matches).
//!
//! ```sh
//! cargo run --release --example star_join
//! ```

use robust_qo::prelude::*;

fn main() {
    // The semijoin's fixed cost (one fact-index probe per selected
    // dimension key) needs a reasonably large fact table to amortize —
    // the paper used 10M rows; 1M is enough to show every regime.
    let data = StarData::generate(&StarConfig {
        fact_rows: 1_000_000,
        seed: 3,
    });
    let db = RobustDb::new(data.into_catalog()).with_robustness(RobustnessLevel::Aggressive);

    println!(
        "{:>6} {:>12} {:>34} {:>10}",
        "level", "fact match", "chosen plan", "time (s)"
    );
    for level in [0i64, 2, 4, 6, 9] {
        let mut query = Query::over(&["fact", "dim1", "dim2", "dim3"])
            .aggregate(AggExpr::sum("f_measure1", "total"))
            .aggregate(AggExpr::count_star("n"));
        for dim in ["dim1", "dim2", "dim3"] {
            query = query.filter(dim, exp3_dim_predicate(level));
        }
        let outcome = db.run(&query);
        let matched = outcome.rows[0][1].as_int();
        let fraction = matched as f64 / db.catalog().table("fact").unwrap().num_rows() as f64;
        println!(
            "{level:>6} {:>11.3}% {:>34} {:>10.3}",
            fraction * 100.0,
            outcome.plan.shape_label(),
            outcome.simulated_seconds
        );
    }
    println!(
        "\nLow levels match almost no fact rows: the index-driven semijoin wins.  \
         High levels match up to 10% of the fact table: fetching those rows one \
         random I/O at a time would be ruinous, so the optimizer flips to hash joins."
    );
}
