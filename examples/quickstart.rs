//! Quickstart: build a tiny database, run a query, and watch the
//! confidence threshold change the chosen plan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use robust_qo::prelude::*;

fn main() {
    // 1. A small TPC-H-like database (≈60k lineitem rows at SF 0.01),
    //    with FKs declared and the experiment indexes built.
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 7,
    });
    let db = RobustDb::new(data.into_catalog());

    // 2. The paper's running example: two date predicates that are
    //    correlated (receipt follows ship by 1-30 days).  An offset of
    //    130 days leaves no overlap at all, so the conjunction is empty
    //    even though each predicate alone matches ~4% of rows.
    let query = Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(130))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
        .aggregate(AggExpr::count_star("matching_rows"));

    let outcome = db.run(&query);
    println!("chosen plan:\n{}", outcome.plan.explain());
    println!(
        "revenue = {}, matching rows = {}",
        outcome.rows[0][0], outcome.rows[0][1]
    );
    println!(
        "simulated execution time: {:.4}s (optimizer estimated {:.4}s)\n",
        outcome.simulated_seconds, outcome.estimated_seconds
    );

    // 3. The robustness knob.  The same query, planned at each preset:
    //    aggressive planning gambles on the index intersection (the
    //    sample says the predicate is rare); the conservative preset
    //    refuses unless the sample leaves no doubt.
    let mut aggressive_db = None;
    for level in [
        RobustnessLevel::Aggressive,
        RobustnessLevel::Moderate,
        RobustnessLevel::Conservative,
    ] {
        let db = RobustDb::new(
            TpchData::generate(&TpchConfig {
                scale_factor: 0.01,
                seed: 7,
            })
            .into_catalog(),
        )
        .with_robustness(level);
        let outcome = db.run(&query);
        println!(
            "{level:?} ({}): plan = {}, time = {:.4}s",
            db.threshold(),
            outcome.plan.shape_label(),
            outcome.simulated_seconds
        );
        if level == RobustnessLevel::Aggressive {
            aggressive_db = Some(db);
        }
    }

    // 4. Per-query hints override the system setting (§6.2.5): the same
    //    aggressive database, but this one query demands near-certainty.
    let aggressive_db = aggressive_db.expect("built above");
    let hinted = query.clone().with_hint(ConfidenceThreshold::new(0.99));
    println!(
        "\naggressive system default: plan = {}",
        aggressive_db.run(&query).plan.shape_label()
    );
    println!(
        "same system, T=99% query hint: plan = {}",
        aggressive_db.run(&hinted).plan.shape_label()
    );
}
