//! Cost-model fidelity tests: the optimizer's estimated cost, evaluated
//! at *exact* cardinalities (oracle estimator), must track the executor's
//! actual charged cost for every plan family.  This is the property that
//! makes the whole robustness story meaningful — a percentile of a wrong
//! cost model would be robust noise.

use std::sync::Arc;

use rqo_core::OracleEstimator;
use rqo_datagen::{workload, StarConfig, StarData, TpchConfig, TpchData};
use rqo_exec::AggExpr;
use rqo_optimizer::{Optimizer, Query};
use rqo_storage::{Catalog, CostParams};

fn assert_cost_tracks(
    planned: &rqo_optimizer::PlannedQuery,
    catalog: &Arc<Catalog>,
    params: &CostParams,
    tolerance_factor: f64,
    context: &str,
) {
    let (_, cost) = rqo_exec::execute(&planned.plan, catalog, params);
    let actual_ms = cost.millis(params);
    let est_ms = planned.estimated_cost_ms;
    assert!(
        est_ms <= actual_ms * tolerance_factor && actual_ms <= est_ms * tolerance_factor,
        "{context}: estimated {est_ms:.1}ms vs executed {actual_ms:.1}ms \
         (plan {})",
        planned.shape()
    );
}

#[test]
fn exp1_costs_track_execution_with_exact_cardinalities() {
    let cat = Arc::new(
        TpchData::generate(&TpchConfig {
            scale_factor: 0.01,
            seed: 5,
        })
        .into_catalog(),
    );
    let params = CostParams::default();
    let opt = Optimizer::new(
        Arc::clone(&cat),
        params,
        Arc::new(OracleEstimator::new(Arc::clone(&cat))),
    );
    for offset in [0i64, 60, 100, 115, 130] {
        let q = Query::over(&["lineitem"])
            .filter("lineitem", workload::exp1_lineitem_predicate(offset))
            .aggregate(AggExpr::sum("l_extendedprice", "rev"));
        let planned = opt.optimize(&q);
        assert_cost_tracks(
            &planned,
            &cat,
            &params,
            1.5,
            &format!("exp1 offset {offset}"),
        );
    }
}

#[test]
fn exp2_costs_track_execution_with_exact_cardinalities() {
    let cat = Arc::new(
        TpchData::generate(&TpchConfig {
            scale_factor: 0.01,
            seed: 6,
        })
        .into_catalog(),
    );
    let params = CostParams::default();
    let opt = Optimizer::new(
        Arc::clone(&cat),
        params,
        Arc::new(OracleEstimator::new(Arc::clone(&cat))),
    );
    for window in [60i64, 200, 220, 240] {
        let q = Query::over(&["lineitem", "orders", "part"])
            .filter("part", workload::exp2_part_predicate(window))
            .aggregate(AggExpr::count_star("n"));
        let planned = opt.optimize(&q);
        // Joins compound approximation error (hash sizing, page
        // coalescing); allow 2x.
        assert_cost_tracks(
            &planned,
            &cat,
            &params,
            2.0,
            &format!("exp2 window {window}"),
        );
    }
}

#[test]
fn exp3_costs_track_execution_with_exact_cardinalities() {
    let cat = Arc::new(
        StarData::generate(&StarConfig {
            fact_rows: 200_000,
            seed: 7,
        })
        .into_catalog(),
    );
    let params = CostParams::default();
    let opt = Optimizer::new(
        Arc::clone(&cat),
        params,
        Arc::new(OracleEstimator::new(Arc::clone(&cat))),
    );
    for level in [0i64, 5, 9] {
        let mut q = Query::over(&["fact", "dim1", "dim2", "dim3"])
            .aggregate(AggExpr::sum("f_measure1", "total"));
        for dim in ["dim1", "dim2", "dim3"] {
            q = q.filter(dim, workload::exp3_dim_predicate(level));
        }
        let planned = opt.optimize(&q);
        assert_cost_tracks(&planned, &cat, &params, 2.0, &format!("exp3 level {level}"));
    }
}

/// Forced-plan comparison: for each access path of the Experiment-1
/// query, the cost model's prediction at exact cardinalities must rank
/// the paths in the same order as actual execution.
#[test]
fn cost_model_ranks_access_paths_like_the_executor() {
    use rqo_exec::{IndexRange, PhysicalPlan};
    use rqo_storage::parse_date;

    let cat = Arc::new(
        TpchData::generate(&TpchConfig {
            scale_factor: 0.01,
            seed: 8,
        })
        .into_catalog(),
    );
    let params = CostParams::default();
    let model = rqo_optimizer::CostModel::new(&cat, &params);
    let lineitem_rows = cat.table("lineitem").unwrap().num_rows() as f64;

    for offset in [0i64, 110, 130] {
        let pred = workload::exp1_lineitem_predicate(offset);
        let truth = workload::true_selectivity(cat.table("lineitem").unwrap(), &pred);
        // Marginal entry counts for the two date indexes (≈ constant).
        let ship_pred = rqo_expr::Expr::col("l_shipdate").between(
            rqo_expr::Expr::lit(parse_date("1997-07-01")),
            rqo_expr::Expr::lit(parse_date("1997-09-30")),
        );
        let marginal = workload::true_selectivity(cat.table("lineitem").unwrap(), &ship_pred);
        let entries = lineitem_rows * marginal;

        let predicted_scan = model.seq_scan_ms("lineitem");
        let predicted_sect =
            model.index_intersection_ms("lineitem", &[entries, entries], lineitem_rows * truth);

        let scan_plan = PhysicalPlan::SeqScan {
            table: "lineitem".into(),
            predicate: Some(pred.clone()),
        };
        let lo = parse_date("1997-07-01");
        let hi = parse_date("1997-09-30");
        let sect_plan = PhysicalPlan::IndexIntersection {
            table: "lineitem".into(),
            ranges: vec![
                IndexRange::between("l_shipdate", lo.clone(), hi.clone()),
                IndexRange::between(
                    "l_receiptdate",
                    rqo_storage::Value::Date(lo.as_date() + offset as i32),
                    rqo_storage::Value::Date(hi.as_date() + offset as i32),
                ),
            ],
            residual: None,
        };
        let (_, scan_cost) = rqo_exec::execute(&scan_plan, &cat, &params);
        let (_, sect_cost) = rqo_exec::execute(&sect_plan, &cat, &params);

        let predicted_winner = predicted_scan < predicted_sect;
        let actual_winner = scan_cost.millis(&params) < sect_cost.millis(&params);
        assert_eq!(
            predicted_winner,
            actual_winner,
            "offset {offset}: model and executor disagree on the winner \
             (model: scan {predicted_scan:.1} vs sect {predicted_sect:.1}; \
              actual: scan {:.1} vs sect {:.1})",
            scan_cost.millis(&params),
            sect_cost.millis(&params)
        );
    }
}
