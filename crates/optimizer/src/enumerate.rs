//! Join enumeration: dynamic programming over connected subsets of the FK
//! join graph, plus star-semijoin candidates for star-shaped queries.

use std::cell::RefCell;
use std::collections::HashMap;

use rqo_core::{CardinalityEstimator, EstimationRequest};
use rqo_exec::{PhysicalPlan, SemiJoinLeg};
use rqo_expr::Expr;
use rqo_stats::synopsis::find_root;
use rqo_storage::Catalog;

use crate::access::access_paths;
use crate::cost::CostModel;
use crate::query::Query;

/// A costed plan candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The physical plan.
    pub plan: PhysicalPlan,
    /// Estimated cost in simulated milliseconds.
    pub cost_ms: f64,
    /// Estimated output rows.
    pub out_rows: f64,
    /// Column the output is sorted by, when known (enables sort-free merge
    /// joins downstream).
    pub sorted_by: Option<String>,
}

/// Shared planning state: catalog, cost model, the cardinality-estimation
/// module, physical-order metadata, and a selectivity cache (the estimator
/// is consulted once per distinct subexpression, as in the paper's
/// description of optimizer/estimator traffic).
pub struct PlanContext<'a> {
    /// Catalog (tables, FKs, indexes).
    pub catalog: &'a Catalog,
    /// Cost model.
    pub model: CostModel<'a>,
    /// The pluggable cardinality-estimation module.
    pub estimator: &'a dyn CardinalityEstimator,
    /// `(table, column)` pairs whose storage order is non-decreasing.
    pub sorted_columns: &'a std::collections::HashSet<(String, String)>,
    cache: RefCell<HashMap<String, f64>>,
}

impl<'a> PlanContext<'a> {
    /// Creates a context.
    pub fn new(
        catalog: &'a Catalog,
        model: CostModel<'a>,
        estimator: &'a dyn CardinalityEstimator,
        sorted_columns: &'a std::collections::HashSet<(String, String)>,
    ) -> Self {
        Self {
            catalog,
            model,
            estimator,
            sorted_columns,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Estimated selectivity of `predicates` over the FK-join expression
    /// on `tables`, memoized per distinct subexpression.
    pub fn selectivity(&self, tables: &[&str], predicates: &[(&str, &Expr)]) -> f64 {
        let mut key_tables: Vec<&str> = tables.to_vec();
        key_tables.sort_unstable();
        let mut key_preds: Vec<String> =
            predicates.iter().map(|(t, e)| format!("{t}:{e}")).collect();
        key_preds.sort_unstable();
        let key = format!("{key_tables:?}|{key_preds:?}");
        if let Some(&v) = self.cache.borrow().get(&key) {
            return v;
        }
        let request = EstimationRequest::new(tables.to_vec(), predicates.to_vec());
        let sel = self
            .estimator
            .estimate(&request)
            .selectivity
            .clamp(0.0, 1.0);
        self.cache.borrow_mut().insert(key, sel);
        sel
    }

    /// The column a table's storage is physically ordered by, if any (the
    /// clustering key: the first schema column that is globally sorted).
    pub fn clustered_column(&self, table: &str) -> Option<String> {
        let t = self.catalog.table(table).ok()?;
        t.schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .find(|c| {
                self.sorted_columns
                    .contains(&(table.to_string(), c.clone()))
            })
    }

    /// Number of estimator invocations so far (for overhead reporting).
    pub fn estimator_calls(&self) -> usize {
        self.cache.borrow().len()
    }
}

/// An FK edge between two query tables (by index into the query's table
/// list).
#[derive(Debug, Clone)]
struct Edge {
    from: usize,
    to: usize,
    from_col: String,
    to_col: String,
}

/// Returns the best full-query candidate (joins only; aggregation is added
/// by the planner).
///
/// # Panics
///
/// Panics when the query's tables do not form a connected FK subgraph, or
/// when more than 16 tables are queried (the DP is over bitmasks).
pub fn best_join_plan(ctx: &PlanContext<'_>, query: &Query) -> Candidate {
    let n = query.tables.len();
    assert!(n <= 16, "join enumeration supports at most 16 tables");

    // Base case: single-table access paths.
    let mut plans: HashMap<u32, Vec<Candidate>> = HashMap::new();
    for (i, table) in query.tables.iter().enumerate() {
        let cands = access_paths(ctx, table, query.predicate_for(table));
        plans.insert(1 << i, prune(cands));
    }
    if n == 1 {
        return best_of(&plans[&1]).clone();
    }

    // FK edges among the query's tables.
    let index_of = |name: &str| query.tables.iter().position(|t| t == name);
    let mut edges: Vec<Edge> = Vec::new();
    for fk in ctx.catalog.foreign_keys() {
        if let (Some(a), Some(b)) = (index_of(&fk.from_table), index_of(&fk.to_table)) {
            edges.push(Edge {
                from: a,
                to: b,
                from_col: fk.from_column.clone(),
                to_col: fk.to_column.clone(),
            });
        }
    }

    let connected = |mask: u32| -> bool {
        let first = mask.trailing_zeros();
        let mut seen = 1u32 << first;
        loop {
            let mut grew = false;
            for e in &edges {
                let (fa, fb) = (1u32 << e.from, 1u32 << e.to);
                if mask & fa != 0 && mask & fb != 0 {
                    if seen & fa != 0 && seen & fb == 0 {
                        seen |= fb;
                        grew = true;
                    }
                    if seen & fb != 0 && seen & fa == 0 {
                        seen |= fa;
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        seen == mask
    };
    let full: u32 = (1 << n) - 1;
    assert!(
        connected(full),
        "query tables must form a connected FK join graph"
    );

    // Cardinality of a connected subset.
    let subset_card = |mask: u32| -> f64 {
        let tables: Vec<&str> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| query.tables[i].as_str())
            .collect();
        let preds: Vec<(&str, &Expr)> = query
            .predicates
            .iter()
            .filter(|(t, _)| tables.contains(&t.as_str()))
            .map(|(t, e)| (t.as_str(), e))
            .collect();
        let root =
            find_root(ctx.catalog, &tables).expect("connected FK subset has a root relation");
        ctx.model.table_rows(root) * ctx.selectivity(&tables, &preds)
    };
    let mut cards: HashMap<u32, f64> = HashMap::new();

    // DP over subsets by population count.
    for mask in 1u32..=full {
        if mask.count_ones() < 2 || !connected(mask) {
            continue;
        }
        let out_rows = *cards.entry(mask).or_insert_with(|| subset_card(mask));
        let mut cands: Vec<Candidate> = Vec::new();

        // Enumerate partitions: a proper nonempty subset of mask
        // containing its lowest bit (each unordered pair once; both join
        // orientations generated explicitly below).
        let low = mask & mask.wrapping_neg();
        let mut sub = (mask - 1) & mask;
        while sub != 0 {
            if sub & low != 0 && sub != mask {
                let a_mask = sub;
                let b_mask = mask ^ sub;
                if connected(a_mask) && connected(b_mask) {
                    for e in &edges {
                        let (fa, fb) = (1u32 << e.from, 1u32 << e.to);
                        let (a_side, b_side) = if a_mask & fa != 0 && b_mask & fb != 0 {
                            ((a_mask, &e.from_col), (b_mask, &e.to_col))
                        } else if b_mask & fa != 0 && a_mask & fb != 0 {
                            ((b_mask, &e.from_col), (a_mask, &e.to_col))
                        } else {
                            continue;
                        };
                        join_candidates(ctx, query, &plans, &mut cands, a_side, b_side, out_rows);
                    }
                }
            }
            sub = (sub - 1) & mask;
        }

        plans.insert(mask, prune(cands));
    }

    // Star-semijoin candidates compete at the top level.
    let mut finals = plans.remove(&full).expect("full plan set exists");
    finals.extend(star_semijoin_candidates(ctx, query));
    best_of(&prune(finals)).clone()
}

/// Generates hash/merge/INL candidates for one (side-a, side-b) split
/// joined on `a.col_a = b.col_b`, appending to `out`.
#[allow(clippy::too_many_arguments)]
fn join_candidates(
    ctx: &PlanContext<'_>,
    query: &Query,
    plans: &HashMap<u32, Vec<Candidate>>,
    out: &mut Vec<Candidate>,
    (a_mask, a_col): (u32, &String),
    (b_mask, b_col): (u32, &String),
    out_rows: f64,
) {
    let (Some(a_cands), Some(b_cands)) = (plans.get(&a_mask), plans.get(&b_mask)) else {
        return;
    };
    let n = query.tables.len();
    let tables_of = |mask: u32| -> Vec<&str> {
        (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| query.tables[i].as_str())
            .collect()
    };

    for ca in a_cands {
        for cb in b_cands {
            // Hash join, both build orientations.
            out.push(Candidate {
                plan: PhysicalPlan::HashJoin {
                    build: Box::new(ca.plan.clone()),
                    probe: Box::new(cb.plan.clone()),
                    build_key: a_col.clone(),
                    probe_key: b_col.clone(),
                },
                cost_ms: ca.cost_ms
                    + cb.cost_ms
                    + ctx.model.hash_join_ms(ca.out_rows, cb.out_rows, out_rows),
                out_rows,
                sorted_by: cb.sorted_by.clone(),
            });
            out.push(Candidate {
                plan: PhysicalPlan::HashJoin {
                    build: Box::new(cb.plan.clone()),
                    probe: Box::new(ca.plan.clone()),
                    build_key: b_col.clone(),
                    probe_key: a_col.clone(),
                },
                cost_ms: ca.cost_ms
                    + cb.cost_ms
                    + ctx.model.hash_join_ms(cb.out_rows, ca.out_rows, out_rows),
                out_rows,
                sorted_by: ca.sorted_by.clone(),
            });
            // Merge join.
            let a_sorted = ca.sorted_by.as_deref() == Some(a_col.as_str());
            let b_sorted = cb.sorted_by.as_deref() == Some(b_col.as_str());
            out.push(Candidate {
                plan: PhysicalPlan::MergeJoin {
                    left: Box::new(ca.plan.clone()),
                    right: Box::new(cb.plan.clone()),
                    left_key: a_col.clone(),
                    right_key: b_col.clone(),
                },
                cost_ms: ca.cost_ms
                    + cb.cost_ms
                    + ctx.model.merge_join_ms(
                        ca.out_rows,
                        cb.out_rows,
                        out_rows,
                        a_sorted,
                        b_sorted,
                    ),
                out_rows,
                sorted_by: Some(a_col.clone()),
            });
        }
    }

    // Indexed nested loops, in both orientations: the inner side must be a
    // single base table with a secondary index on its join column; the
    // outer side drives.
    for ((outer_mask, outer_col, outer_cands), (inner_mask, inner_col)) in [
        ((a_mask, a_col, a_cands), (b_mask, b_col)),
        ((b_mask, b_col, b_cands), (a_mask, a_col)),
    ] {
        if inner_mask.count_ones() != 1 {
            continue;
        }
        let inner_table = tables_of(inner_mask)[0];
        if ctx
            .catalog
            .secondary_index(inner_table, inner_col)
            .is_none()
        {
            continue;
        }
        // Rows fetched from the index before the inner residual filter:
        // the join with the inner table's predicate *removed*.
        let joint_tables = tables_of(outer_mask | inner_mask);
        let preds_without_inner: Vec<(&str, &Expr)> = query
            .predicates
            .iter()
            .filter(|(t, _)| t != inner_table && joint_tables.contains(&t.as_str()))
            .map(|(t, e)| (t.as_str(), e))
            .collect();
        let root = find_root(ctx.catalog, &joint_tables).expect("root exists");
        let fetched =
            ctx.model.table_rows(root) * ctx.selectivity(&joint_tables, &preds_without_inner);
        let inner_pred = query.predicate_for(inner_table);
        for ca in outer_cands {
            let mut plan = PhysicalPlan::IndexedNlJoin {
                outer: Box::new(ca.plan.clone()),
                inner_table: inner_table.to_string(),
                inner_index_column: inner_col.clone(),
                outer_key: outer_col.clone(),
            };
            let mut cost = ca.cost_ms + ctx.model.indexed_nl_join_ms(ca.out_rows, fetched);
            if let Some(p) = inner_pred {
                plan = PhysicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: p.clone(),
                };
                cost += ctx.model.per_row_ms(fetched);
            }
            out.push(Candidate {
                plan,
                cost_ms: cost,
                out_rows,
                sorted_by: ca.sorted_by.clone(),
            });
        }
    }
}

/// Star-semijoin candidates: when one query table (the fact) has FK edges
/// to all the others (the dimensions), each filtered dimension with an
/// indexed fact-side FK column can become a semijoin leg; remaining
/// dimensions are applied with hash joins (the paper's "hybrid" plans).
fn star_semijoin_candidates(ctx: &PlanContext<'_>, query: &Query) -> Vec<Candidate> {
    let mut out = Vec::new();
    let n = query.tables.len();
    if n < 3 {
        return out;
    }
    // Identify the fact: FK edges from it to every other query table.
    let fact = query.tables.iter().find(|f| {
        query
            .tables
            .iter()
            .all(|d| d == *f || ctx.catalog.foreign_keys_from(f).any(|fk| &fk.to_table == d))
    });
    let Some(fact) = fact else {
        return out;
    };
    // Aggregation outputs must survive the semijoin (which drops dimension
    // columns that are not re-joined).  Require fact-only outputs, the
    // paper's scenario.
    let fact_schema = ctx.catalog.table(fact).expect("fact exists").schema();
    let outputs_ok = query
        .aggregates
        .iter()
        .filter_map(|a| a.column.as_deref())
        .chain(query.group_by.iter().map(String::as_str))
        .all(|c| fact_schema.index_of(c).is_some());
    if !outputs_ok {
        return out;
    }

    // Possible legs: filtered dims with an indexed fact FK.
    struct LegInfo<'q> {
        dim: &'q str,
        fk_col: String,
        key_col: String,
        pred: &'q Expr,
    }
    let mut legs: Vec<LegInfo<'_>> = Vec::new();
    for dim in &query.tables {
        if dim == fact {
            continue;
        }
        let Some(pred) = query.predicate_for(dim) else {
            continue;
        };
        let Some(fk) = ctx
            .catalog
            .foreign_keys_from(fact)
            .find(|fk| &fk.to_table == dim)
        else {
            continue;
        };
        if ctx.catalog.secondary_index(fact, &fk.from_column).is_some() {
            legs.push(LegInfo {
                dim,
                fk_col: fk.from_column.clone(),
                key_col: fk.to_column.clone(),
                pred,
            });
        }
    }
    if legs.is_empty() {
        return out;
    }

    let fact_rows = ctx.model.table_rows(fact);
    let full_tables: Vec<&str> = query.table_refs();
    let full_preds: Vec<(&str, &Expr)> = query
        .predicates
        .iter()
        .map(|(t, e)| (t.as_str(), e))
        .collect();
    let final_rows = fact_rows * ctx.selectivity(&full_tables, &full_preds);

    // Every nonempty subset of possible legs.
    for leg_mask in 1u32..(1 << legs.len()) {
        let chosen: Vec<&LegInfo<'_>> = legs
            .iter()
            .enumerate()
            .filter(|(i, _)| leg_mask & (1 << i) != 0)
            .map(|(_, l)| l)
            .collect();

        let mut cost = 0.0;
        let mut total_entries = 0.0;
        for leg in &chosen {
            let dim_rows = ctx.model.table_rows(leg.dim);
            let keys = dim_rows * ctx.selectivity(&[leg.dim], &[(leg.dim, leg.pred)]);
            let entries = fact_rows * ctx.selectivity(&[fact, leg.dim], &[(leg.dim, leg.pred)]);
            total_entries += entries;
            cost += ctx.model.semijoin_leg_ms(leg.dim, keys, entries);
        }
        // Fact rows surviving the chosen legs.
        let mut covered: Vec<&str> = vec![fact];
        covered.extend(chosen.iter().map(|l| l.dim));
        let leg_preds: Vec<(&str, &Expr)> = chosen.iter().map(|l| (l.dim, l.pred)).collect();
        let matched = fact_rows * ctx.selectivity(&covered, &leg_preds);
        cost += ctx.model.semijoin_finish_ms(fact, total_entries, matched);

        let mut plan = PhysicalPlan::StarSemiJoin {
            fact_table: fact.clone(),
            legs: chosen
                .iter()
                .map(|l| SemiJoinLeg {
                    dim_table: l.dim.to_string(),
                    dim_key: l.key_col.clone(),
                    dim_predicate: l.pred.clone(),
                    fact_fk: l.fk_col.clone(),
                })
                .collect(),
        };
        let mut current_rows = matched;

        // The StarSemiJoin operator emits *unfiltered* fact rows (the
        // dimensions act purely as key filters), so a local predicate on
        // the fact table itself must be re-applied on top.
        if let Some(fact_pred) = query.predicate_for(fact) {
            plan = PhysicalPlan::Filter {
                input: Box::new(plan),
                predicate: fact_pred.clone(),
            };
            cost += ctx.model.per_row_ms(matched);
            let mut preds = leg_preds.clone();
            preds.push((fact.as_str(), fact_pred));
            current_rows = fact_rows * ctx.selectivity(&covered, &preds);
        }

        // Hash-join the remaining filtered dimensions (hybrid shape).
        let mut feasible = true;
        for dim in &query.tables {
            if dim == fact || chosen.iter().any(|l| l.dim == dim.as_str()) {
                continue;
            }
            let Some(fk) = ctx
                .catalog
                .foreign_keys_from(fact)
                .find(|fk| &fk.to_table == dim)
            else {
                feasible = false;
                break;
            };
            let pred = query.predicate_for(dim);
            let dim_rows = ctx.model.table_rows(dim);
            let build_rows = match pred {
                Some(p) => dim_rows * ctx.selectivity(&[dim], &[(dim.as_str(), p)]),
                None => dim_rows,
            };
            covered.push(dim);
            let mut preds: Vec<(&str, &Expr)> = leg_preds.clone();
            if let Some(p) = pred {
                preds.push((dim, p));
            }
            // Include predicates of previously hash-joined dims.
            let next_rows = fact_rows
                * ctx.selectivity(
                    &covered,
                    &query
                        .predicates
                        .iter()
                        .filter(|(t, _)| covered.contains(&t.as_str()))
                        .map(|(t, e)| (t.as_str(), e))
                        .collect::<Vec<_>>(),
                );
            cost += ctx.model.seq_scan_ms(dim)
                + ctx.model.hash_join_ms(build_rows, current_rows, next_rows);
            plan = PhysicalPlan::HashJoin {
                build: Box::new(PhysicalPlan::SeqScan {
                    table: dim.clone(),
                    predicate: pred.cloned(),
                }),
                probe: Box::new(plan),
                build_key: fk.to_column.clone(),
                probe_key: fk.from_column.clone(),
            };
            current_rows = next_rows;
        }
        if !feasible {
            continue;
        }

        out.push(Candidate {
            plan,
            cost_ms: cost,
            out_rows: final_rows,
            sorted_by: None,
        });
    }
    out
}

/// Keeps, per distinct output order, the cheapest candidate (the classic
/// interesting-orders pruning), plus the overall cheapest.
fn prune(cands: Vec<Candidate>) -> Vec<Candidate> {
    let mut best: HashMap<Option<String>, Candidate> = HashMap::new();
    for c in cands {
        match best.get(&c.sorted_by) {
            Some(existing) if existing.cost_ms <= c.cost_ms => {}
            _ => {
                best.insert(c.sorted_by.clone(), c);
            }
        }
    }
    best.into_values().collect()
}

/// The cheapest candidate.
///
/// # Panics
///
/// Panics on an empty slice (enumeration always yields at least the
/// all-scans plan).
pub fn best_of(cands: &[Candidate]) -> &Candidate {
    cands
        .iter()
        .min_by(|a, b| a.cost_ms.total_cmp(&b.cost_ms))
        .expect("at least one candidate")
}
