//! Expected-penalty plan selection (the integration alternative to the
//! paper's quantile collapse).
//!
//! Quantile mode asks the estimation module for one number per
//! subexpression and trusts the cost model from there.  Penalty mode
//! instead keeps the selectivity *posterior* in play during the final
//! plan choice:
//!
//! 1. **Candidates** — run the ordinary DP enumerator at a small spread
//!    of confidence thresholds; the distinct winners are exactly the
//!    plans some plausible selectivity regime prefers.
//! 2. **Sensitivity pruning** — a predicate whose selectivity never
//!    flips which candidate is cheapest (probed at an aggressive and a
//!    conservative extreme) is *insensitive*: it is pinned at the
//!    posterior median for the rest of the analysis, so quadrature
//!    effort concentrates on the predicates that actually steer the
//!    plan choice.
//! 3. **Scoring** — price every candidate at a shared grid of posterior
//!    quantile nodes (the comonotone collapse: all sensitive posteriors
//!    at quantile `u` together, [`rqo_core::penalty_grid`]) and pick
//!    the candidate minimizing expected regret against the per-node
//!    lower envelope ([`rqo_core::expected_penalties`]).
//!
//! Pricing at a quantile node reuses the §3.1.1 machinery unchanged —
//! `hinted(u)` estimators and the deterministic cost model — so penalty
//! mode inherits determinism and thread-invariance for free.  When every
//! predicate posterior is (near-)degenerate the grid short-circuits to a
//! single median node: integration over a point mass *is* the point
//! estimate, so no quadrature is spent.
//!
//! The module also exposes [`price_plan`]: an exact re-coster of any
//! enumerator-shaped plan under an arbitrary estimation context.  It
//! reproduces the enumerator's own arithmetic (the differential tests
//! pin this), which is what lets candidates from one threshold be priced
//! under another — and lets tests price plans at *observed* (fed-back)
//! selectivities to measure realized regret.

use std::collections::HashSet;

use rqo_core::{
    expected_penalties, penalty_grid, select_min_penalty, CardinalityEstimator,
    ConfidenceThreshold, EstimationRequest, PlanSelection, SelectivityEstimate,
};
use rqo_exec::{IndexRange, PhysicalPlan};
use rqo_expr::Expr;
use rqo_math::{DEFAULT_QUADRATURE_NODES, DEGENERATE_STD_DEV};
use rqo_stats::synopsis::find_root;

use crate::analyze::annotate_plan;
use crate::cost::CostModel;
use crate::enumerate::{best_join_plan, PlanContext};
use crate::planner::{Optimizer, PlannedQuery};
use crate::query::Query;

/// Thresholds the candidate generator runs the enumerator at.  A spread
/// from aggressive to conservative harvests every plan shape some
/// plausible selectivity regime prefers; duplicates are deduplicated, so
/// a flat cost landscape degenerates gracefully to one candidate.
const GENERATION_THRESHOLDS: [f64; 7] = [0.05, 0.20, 0.35, 0.50, 0.65, 0.80, 0.95];

/// The two probe quantiles of the sensitivity pass.  A predicate whose
/// collapse at both extremes leaves the argmin-cost candidate unchanged
/// cannot flip the plan choice anywhere in between (costs are monotone
/// in each selectivity), so it is pruned to the median.
const SENSITIVITY_PROBES: [f64; 2] = [0.05, 0.95];

/// The quantile insensitive predicates are pinned at, and the quantile
/// the winner's row estimates / node annotations are derived at — the
/// posterior median, the natural "typical case" summary.
pub const PENALTY_ANNOTATION_QUANTILE: f64 = 0.5;

/// How [`PlanSelection::ExpectedPenalty`] reached its decision — kept on
/// the [`PlannedQuery`] for reports, experiments, and tests.
#[derive(Debug, Clone)]
pub struct PenaltyReport {
    /// Every scored candidate, in generation order.
    pub candidates: Vec<CandidateScore>,
    /// Index of the winner within `candidates`.
    pub chosen: usize,
    /// `table:expr` keys of predicates whose selectivity can flip the
    /// plan choice (integrated over).
    pub sensitive: Vec<String>,
    /// `table:expr` keys of predicates pruned to the posterior median by
    /// the sensitivity pass.
    pub pruned: Vec<String>,
    /// Number of quadrature nodes the candidates were priced at.
    pub nodes: usize,
    /// Whether the degenerate-posterior short circuit fired (all
    /// posteriors point-like ⇒ a single median node, no quadrature).
    pub degenerate: bool,
}

/// One candidate's identity and score in a [`PenaltyReport`].
#[derive(Debug, Clone)]
pub struct CandidateScore {
    /// The candidate's plan-shape label.
    pub shape: String,
    /// Posterior-expected cost in simulated milliseconds.
    pub expected_cost: f64,
    /// Posterior-expected regret against the per-node lower envelope.
    pub expected_penalty: f64,
}

/// What [`price_plan`] computes for a plan under one estimation context.
#[derive(Debug, Clone, Copy)]
pub struct PricedPlan {
    /// Total cost in simulated milliseconds, matching the enumerator's
    /// costing of the same shape under the same estimates.
    pub cost_ms: f64,
    /// Output rows of the plan root.
    pub out_rows: f64,
    /// Output rows of the join (pre-aggregation) — what
    /// [`PlannedQuery::estimated_rows`] reports.
    pub join_rows: f64,
}

/// Prices an enumerator-shaped physical plan under `ctx`'s estimates,
/// reproducing the enumerator's costing arithmetic exactly.
///
/// # Panics
///
/// Panics on plans the enumerator cannot emit for `query` (e.g. an index
/// seek whose range matches no predicate conjunct, or a subtree over a
/// disconnected table set).
pub fn price_plan(ctx: &PlanContext<'_>, query: &Query, plan: &PhysicalPlan) -> PricedPlan {
    let priced = price(ctx, query, plan);
    PricedPlan {
        cost_ms: priced.cost_ms,
        out_rows: priced.out_rows,
        join_rows: priced.join_rows,
    }
}

/// Internal pricing state: enough context to re-derive every cardinality
/// the enumerator would have asked for while building this subtree.
struct Priced {
    cost_ms: f64,
    out_rows: f64,
    join_rows: f64,
    tables: Vec<String>,
    preds: Vec<(String, Expr)>,
    sorted_by: Option<String>,
}

/// `rows(root) × selectivity(tables, preds)` — the enumerator's
/// cardinality of a connected subexpression.
fn spec_rows(ctx: &PlanContext<'_>, tables: &[String], preds: &[(String, Expr)]) -> f64 {
    let t: Vec<&str> = tables.iter().map(String::as_str).collect();
    let p: Vec<(&str, &Expr)> = preds.iter().map(|(t, e)| (t.as_str(), e)).collect();
    let root = find_root(ctx.catalog, &t).expect("priced subtree covers a connected FK subset");
    ctx.model.table_rows(root) * ctx.selectivity(&t, &p)
}

/// The predicate conjunct an index range was derived from.
fn conjunct_for_range<'e>(pred: &'e Expr, range: &IndexRange) -> Option<&'e Expr> {
    pred.conjuncts().into_iter().find(|c| {
        c.as_column_range()
            .is_some_and(|(col, lo, hi)| col == range.column && lo == range.lo && hi == range.hi)
    })
}

fn price(ctx: &PlanContext<'_>, query: &Query, plan: &PhysicalPlan) -> Priced {
    match plan {
        PhysicalPlan::SeqScan { table, predicate } => {
            let rows = ctx.model.table_rows(table);
            let (out_rows, preds) = match predicate {
                Some(p) => {
                    let preds = vec![(table.clone(), p.clone())];
                    (spec_rows(ctx, std::slice::from_ref(table), &preds), preds)
                }
                None => (rows, Vec::new()),
            };
            Priced {
                cost_ms: ctx.model.seq_scan_ms(table),
                out_rows,
                join_rows: out_rows,
                tables: vec![table.clone()],
                preds,
                sorted_by: ctx.clustered_column(table),
            }
        }
        PhysicalPlan::PartitionedScan {
            table,
            predicate,
            partitions,
            ..
        } => {
            // Pruning is semantically transparent (pruned partitions hold
            // no qualifying rows), so output cardinality is the same as a
            // full scan's; only the cost shrinks with the survivors.
            let (out_rows, preds) = match predicate {
                Some(p) => {
                    let preds = vec![(table.clone(), p.clone())];
                    (spec_rows(ctx, std::slice::from_ref(table), &preds), preds)
                }
                None => (ctx.model.partition_rows(table, partitions), Vec::new()),
            };
            Priced {
                cost_ms: ctx.model.partitioned_scan_ms(table, partitions),
                out_rows,
                join_rows: out_rows,
                tables: vec![table.clone()],
                preds,
                sorted_by: ctx.clustered_column(table),
            }
        }
        PhysicalPlan::IndexSeek { table, range, .. } => {
            let pred = query
                .predicate_for(table)
                .expect("index seek implies a table predicate");
            let seek = conjunct_for_range(pred, range)
                .expect("index-seek range matches a predicate conjunct");
            let rows = ctx.model.table_rows(table);
            let entries = rows * ctx.selectivity(&[table], &[(table, seek)]);
            let preds = vec![(table.clone(), pred.clone())];
            let out_rows = spec_rows(ctx, std::slice::from_ref(table), &preds);
            Priced {
                cost_ms: ctx.model.index_seek_ms(table, entries),
                out_rows,
                join_rows: out_rows,
                tables: vec![table.clone()],
                preds,
                sorted_by: ctx.clustered_column(table),
            }
        }
        PhysicalPlan::IndexIntersection { table, ranges, .. } => {
            let pred = query
                .predicate_for(table)
                .expect("index intersection implies a table predicate");
            let rows = ctx.model.table_rows(table);
            let consumed: Vec<&Expr> = ranges
                .iter()
                .map(|r| {
                    conjunct_for_range(pred, r)
                        .expect("index-intersection range matches a predicate conjunct")
                })
                .collect();
            let entries: Vec<f64> = consumed
                .iter()
                .map(|c| rows * ctx.selectivity(&[table], &[(table, c)]))
                .collect();
            let range_conj = Expr::conjunction(consumed.iter().map(|c| (*c).clone()).collect())
                .expect("at least two ranges");
            let joint = ctx.selectivity(&[table], &[(table, &range_conj)]);
            let preds = vec![(table.clone(), pred.clone())];
            let out_rows = spec_rows(ctx, std::slice::from_ref(table), &preds);
            Priced {
                cost_ms: ctx
                    .model
                    .index_intersection_ms(table, &entries, rows * joint),
                out_rows,
                join_rows: out_rows,
                tables: vec![table.clone()],
                preds,
                sorted_by: ctx.clustered_column(table),
            }
        }
        PhysicalPlan::Filter { input, predicate } => {
            let child = price(ctx, query, input);
            let cost_ms = child.cost_ms + ctx.model.per_row_ms(child.out_rows);
            let mut tables = child.tables;
            let mut preds = child.preds;
            // The enumerator only emits filters for a deferred *query*
            // predicate (INL inner residual, semijoin fact predicate);
            // attribute it so downstream cardinalities include it.
            let out_rows = match tables
                .iter()
                .find(|t| query.predicate_for(t) == Some(predicate))
                .cloned()
            {
                Some(t) => {
                    preds.push((t, predicate.clone()));
                    spec_rows(ctx, &tables, &preds)
                }
                None => child.out_rows,
            };
            tables.sort_unstable();
            Priced {
                cost_ms,
                out_rows,
                join_rows: out_rows,
                tables,
                preds,
                sorted_by: child.sorted_by,
            }
        }
        PhysicalPlan::Project { input, .. } => price(ctx, query, input),
        PhysicalPlan::HashJoin { build, probe, .. } => {
            let b = price(ctx, query, build);
            let p = price(ctx, query, probe);
            let tables: Vec<String> = b.tables.iter().chain(&p.tables).cloned().collect();
            let preds: Vec<(String, Expr)> = b.preds.iter().chain(&p.preds).cloned().collect();
            let out_rows = spec_rows(ctx, &tables, &preds);
            Priced {
                cost_ms: b.cost_ms
                    + p.cost_ms
                    + ctx.model.hash_join_ms(b.out_rows, p.out_rows, out_rows),
                out_rows,
                join_rows: out_rows,
                sorted_by: p.sorted_by,
                tables,
                preds,
            }
        }
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let l = price(ctx, query, left);
            let r = price(ctx, query, right);
            let l_sorted = l.sorted_by.as_deref() == Some(left_key.as_str());
            let r_sorted = r.sorted_by.as_deref() == Some(right_key.as_str());
            let tables: Vec<String> = l.tables.iter().chain(&r.tables).cloned().collect();
            let preds: Vec<(String, Expr)> = l.preds.iter().chain(&r.preds).cloned().collect();
            let out_rows = spec_rows(ctx, &tables, &preds);
            Priced {
                cost_ms: l.cost_ms
                    + r.cost_ms
                    + ctx
                        .model
                        .merge_join_ms(l.out_rows, r.out_rows, out_rows, l_sorted, r_sorted),
                out_rows,
                join_rows: out_rows,
                sorted_by: Some(left_key.clone()),
                tables,
                preds,
            }
        }
        PhysicalPlan::IndexedNlJoin {
            outer, inner_table, ..
        } => {
            let o = price(ctx, query, outer);
            let mut tables = o.tables;
            tables.push(inner_table.clone());
            // Rows fetched before the inner residual: the inner table's
            // predicate is excluded here and re-applied by the Filter the
            // enumerator wraps on top.
            let fetched = spec_rows(ctx, &tables, &o.preds);
            Priced {
                cost_ms: o.cost_ms + ctx.model.indexed_nl_join_ms(o.out_rows, fetched),
                out_rows: fetched,
                join_rows: fetched,
                tables,
                preds: o.preds,
                sorted_by: o.sorted_by,
            }
        }
        PhysicalPlan::StarSemiJoin { fact_table, legs } => {
            let fact_rows = ctx.model.table_rows(fact_table);
            let mut cost_ms = 0.0;
            let mut total_entries = 0.0;
            for leg in legs {
                let dim = leg.dim_table.as_str();
                let dim_rows = ctx.model.table_rows(dim);
                let keys = dim_rows * ctx.selectivity(&[dim], &[(dim, &leg.dim_predicate)]);
                let entries =
                    fact_rows * ctx.selectivity(&[fact_table, dim], &[(dim, &leg.dim_predicate)]);
                total_entries += entries;
                cost_ms += ctx.model.semijoin_leg_ms(dim, keys, entries);
            }
            let tables: Vec<String> = std::iter::once(fact_table.clone())
                .chain(legs.iter().map(|l| l.dim_table.clone()))
                .collect();
            let preds: Vec<(String, Expr)> = legs
                .iter()
                .map(|l| (l.dim_table.clone(), l.dim_predicate.clone()))
                .collect();
            let matched = spec_rows(ctx, &tables, &preds);
            cost_ms += ctx
                .model
                .semijoin_finish_ms(fact_table, total_entries, matched);
            Priced {
                cost_ms,
                out_rows: matched,
                join_rows: matched,
                tables,
                preds,
                sorted_by: None,
            }
        }
        PhysicalPlan::HashAggregate {
            input, group_by, ..
        } => {
            let child = price(ctx, query, input);
            let groups = if group_by.is_empty() {
                1.0
            } else {
                child.out_rows.sqrt().max(1.0)
            };
            Priced {
                cost_ms: child.cost_ms + ctx.model.aggregate_ms(child.out_rows, groups),
                out_rows: groups,
                join_rows: child.out_rows,
                tables: child.tables,
                preds: child.preds,
                sorted_by: None,
            }
        }
        PhysicalPlan::Materialized {
            tables, predicates, ..
        } => {
            let out_rows = spec_rows(ctx, tables, predicates);
            Priced {
                cost_ms: 0.0,
                out_rows,
                join_rows: out_rows,
                tables: tables.clone(),
                preds: predicates.clone(),
                sorted_by: None,
            }
        }
    }
}

/// An estimation wrapper that collapses *sensitive* predicates at one
/// grid quantile and everything else at the posterior median — the
/// comonotone collapse with sensitivity pruning applied.  Requests are
/// routed by whether they touch any sensitive predicate, so joint
/// (multi-predicate) requests involving a sensitive predicate move with
/// the grid node exactly as the enumerator's costing expects.
struct PinnedEstimator<'a> {
    base: &'a dyn CardinalityEstimator,
    at_node: Option<Box<dyn CardinalityEstimator>>,
    at_median: Option<Box<dyn CardinalityEstimator>>,
    sensitive: &'a HashSet<String>,
}

impl<'a> PinnedEstimator<'a> {
    fn new(
        base: &'a dyn CardinalityEstimator,
        sensitive: &'a HashSet<String>,
        node: ConfidenceThreshold,
    ) -> Self {
        Self {
            base,
            at_node: base.hinted(node),
            at_median: base.hinted(ConfidenceThreshold::new(PENALTY_ANNOTATION_QUANTILE)),
            sensitive,
        }
    }
}

impl CardinalityEstimator for PinnedEstimator<'_> {
    fn name(&self) -> &str {
        "penalty-pinned"
    }

    fn estimate(&self, request: &EstimationRequest<'_>) -> SelectivityEstimate {
        let touches_sensitive = request
            .predicates
            .iter()
            .any(|(t, e)| self.sensitive.contains(&predicate_key(t, e)));
        let chosen = if touches_sensitive {
            self.at_node.as_deref()
        } else {
            self.at_median.as_deref()
        };
        chosen.unwrap_or(self.base).estimate(request)
    }
}

/// Canonical `table:expr` identity of one query predicate.
fn predicate_key(table: &str, expr: &Expr) -> String {
    format!("{table}:{expr}")
}

/// True when every predicate's posterior is missing or point-like — the
/// short-circuit condition under which quadrature adds nothing over the
/// median point estimate.
fn degenerate_posterior(estimator: &dyn CardinalityEstimator, query: &Query) -> bool {
    query.predicates.iter().all(|(t, e)| {
        match estimator
            .estimate(&EstimationRequest::single(t, e))
            .posterior
        {
            Some(p) => p.std_dev() < DEGENERATE_STD_DEV,
            None => true,
        }
    })
}

/// Runs the enumerator at [`GENERATION_THRESHOLDS`] and returns the
/// distinct winners (full plans, aggregation included).
fn generate_candidates(opt: &Optimizer, query: &Query, calls: &mut usize) -> Vec<PhysicalPlan> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for t in GENERATION_THRESHOLDS {
        let hinted = opt.estimator().hinted(ConfidenceThreshold::new(t));
        let est: &dyn CardinalityEstimator = hinted
            .as_deref()
            .unwrap_or_else(|| opt.estimator().as_ref());
        let model = CostModel::new(opt.catalog(), opt.params());
        let ctx = PlanContext::new(opt.catalog(), model, est, opt.sorted_columns());
        let best = best_join_plan(&ctx, query);
        *calls += ctx.estimator_calls();
        let plan = wrap_aggregate(query, best.plan);
        if seen.insert(format!("{plan:?}")) {
            out.push(plan);
        }
        if hinted.is_none() {
            // No hint support: every threshold yields the same plan.
            break;
        }
    }
    out
}

/// Adds the query's (plan-invariant) top aggregate, as the planner does.
fn wrap_aggregate(query: &Query, plan: PhysicalPlan) -> PhysicalPlan {
    if query.aggregates.is_empty() {
        plan
    } else {
        PhysicalPlan::HashAggregate {
            input: Box::new(plan),
            group_by: query.group_by.clone(),
            aggregates: query.aggregates.clone(),
        }
    }
}

/// Index of the cheapest candidate under `ctx` (ties to the lower index).
fn argmin_cost(ctx: &PlanContext<'_>, query: &Query, candidates: &[PhysicalPlan]) -> usize {
    let mut best = 0;
    let mut best_cost = f64::INFINITY;
    for (i, plan) in candidates.iter().enumerate() {
        let c = price(ctx, query, plan).cost_ms;
        if c.total_cmp(&best_cost) == std::cmp::Ordering::Less {
            best = i;
            best_cost = c;
        }
    }
    best
}

/// The sensitivity pass: for each predicate alone, collapse it at both
/// probe extremes (all others at the median) and keep it only if the
/// cheapest candidate differs between the extremes.
fn sensitive_predicates(
    opt: &Optimizer,
    query: &Query,
    candidates: &[PhysicalPlan],
    calls: &mut usize,
) -> HashSet<String> {
    let mut sensitive = HashSet::new();
    for (t, e) in &query.predicates {
        let key = predicate_key(t, e);
        let probe_set: HashSet<String> = std::iter::once(key.clone()).collect();
        let mut argmins = [0usize; 2];
        for (slot, probe) in SENSITIVITY_PROBES.into_iter().enumerate() {
            let pinned = PinnedEstimator::new(
                opt.estimator().as_ref(),
                &probe_set,
                ConfidenceThreshold::new(probe),
            );
            let model = CostModel::new(opt.catalog(), opt.params());
            let ctx = PlanContext::new(opt.catalog(), model, &pinned, opt.sorted_columns());
            argmins[slot] = argmin_cost(&ctx, query, candidates);
            *calls += ctx.estimator_calls();
        }
        if argmins[0] != argmins[1] {
            sensitive.insert(key);
        }
    }
    sensitive
}

/// Optimizes `query` under [`PlanSelection::ExpectedPenalty`].
pub(crate) fn optimize_expected_penalty(opt: &Optimizer, query: &Query) -> PlannedQuery {
    let mut calls = 0usize;
    let candidates = generate_candidates(opt, query, &mut calls);
    let degenerate = degenerate_posterior(opt.estimator().as_ref(), query);

    let sensitive = if degenerate || candidates.len() < 2 {
        HashSet::new()
    } else {
        sensitive_predicates(opt, query, &candidates, &mut calls)
    };
    let mut sensitive_keys: Vec<String> = sensitive.iter().cloned().collect();
    sensitive_keys.sort_unstable();
    let mut pruned_keys: Vec<String> = query
        .predicates
        .iter()
        .map(|(t, e)| predicate_key(t, e))
        .filter(|k| !sensitive.contains(k))
        .collect();
    pruned_keys.sort_unstable();

    // With nothing sensitive (or a point-like posterior) every node
    // prices identically: one median node suffices and the integration
    // collapses to the point estimate.
    let grid: Vec<(ConfidenceThreshold, f64)> = if sensitive.is_empty() {
        vec![(ConfidenceThreshold::new(PENALTY_ANNOTATION_QUANTILE), 1.0)]
    } else {
        penalty_grid(DEFAULT_QUADRATURE_NODES)
    };

    let mut costs = vec![vec![0.0; grid.len()]; candidates.len()];
    for (j, &(node, _)) in grid.iter().enumerate() {
        let pinned = PinnedEstimator::new(opt.estimator().as_ref(), &sensitive, node);
        let model = CostModel::new(opt.catalog(), opt.params());
        let ctx = PlanContext::new(opt.catalog(), model, &pinned, opt.sorted_columns());
        for (i, plan) in candidates.iter().enumerate() {
            costs[i][j] = price(&ctx, query, plan).cost_ms;
        }
        calls += ctx.estimator_calls();
    }
    let weights: Vec<f64> = grid.iter().map(|&(_, w)| w).collect();
    let scores = expected_penalties(&costs, &weights);
    let chosen = select_min_penalty(&scores);

    // Row estimates and node annotations are derived at the posterior
    // median — the guard-arming baseline for adaptive execution.
    let median = ConfidenceThreshold::new(PENALTY_ANNOTATION_QUANTILE);
    let hinted = opt.estimator().hinted(median);
    let est: &dyn CardinalityEstimator = hinted
        .as_deref()
        .unwrap_or_else(|| opt.estimator().as_ref());
    let model = CostModel::new(opt.catalog(), opt.params());
    let ctx = PlanContext::new(opt.catalog(), model, est, opt.sorted_columns());
    let priced = price(&ctx, query, &candidates[chosen]);
    calls += ctx.estimator_calls();
    let node_annotations = annotate_plan(opt.catalog(), est, query, &candidates[chosen]);

    let report = PenaltyReport {
        candidates: candidates
            .iter()
            .zip(&scores)
            .map(|(p, s)| CandidateScore {
                shape: p.shape_label(),
                expected_cost: s.expected_cost,
                expected_penalty: s.expected_penalty,
            })
            .collect(),
        chosen,
        sensitive: sensitive_keys,
        pruned: pruned_keys,
        nodes: grid.len(),
        degenerate,
    };

    let plan = candidates
        .into_iter()
        .nth(chosen)
        .expect("chosen index is in range");
    PlannedQuery {
        plan,
        estimated_cost_ms: scores[chosen].expected_cost,
        estimated_rows: priced.join_rows,
        estimator_calls: calls,
        node_annotations,
        selection: PlanSelection::ExpectedPenalty,
        penalty: Some(report),
    }
}
