//! The optimizer facade.

use std::collections::HashSet;
use std::sync::Arc;

use rqo_core::{CardinalityEstimator, PlanSelection};
use rqo_exec::PhysicalPlan;
use rqo_storage::{Catalog, CostParams, DataType};

use crate::analyze::{annotate_plan, estimates_only, NodeAnnotations};
use crate::cost::CostModel;
use crate::enumerate::{best_join_plan, PlanContext};
use crate::query::Query;
use crate::selection::{optimize_expected_penalty, PenaltyReport};

/// The result of optimization.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The chosen physical plan (aggregation included when requested).
    pub plan: PhysicalPlan,
    /// The optimizer's cost estimate, in simulated milliseconds.
    pub estimated_cost_ms: f64,
    /// Estimated output rows of the join (pre-aggregation).
    pub estimated_rows: f64,
    /// Number of distinct cardinality-estimation calls made while
    /// planning (the traffic the paper's §6.1 overhead numbers are about).
    pub estimator_calls: usize,
    /// Per-node estimation context in the plan's pre-order numbering
    /// (see [`crate::analyze`]): the estimated cardinality each operator
    /// was planned at, plus the `(tables, predicates)` request behind it.
    pub node_annotations: NodeAnnotations,
    /// The plan-selection mode that chose this plan.
    pub selection: PlanSelection,
    /// The expected-penalty decision record, present iff `selection` is
    /// [`PlanSelection::ExpectedPenalty`].
    pub penalty: Option<PenaltyReport>,
}

impl PlannedQuery {
    /// A short label of the plan's shape (for experiment reports).
    pub fn shape(&self) -> String {
        self.plan.shape_label()
    }

    /// Estimated output rows per plan node in pre-order — the vector
    /// [`rqo_exec::OpMetrics::annotate`] accepts.
    pub fn node_estimates(&self) -> Vec<Option<f64>> {
        estimates_only(&self.node_annotations)
    }
}

/// A cost-based optimizer bound to a catalog, cost parameters, and a
/// cardinality-estimation module.
///
/// The estimation module is the *only* statistics interface — swapping
/// [`rqo_core::RobustEstimator`] for [`rqo_core::HistogramEstimator`]
/// changes nothing else, which is the architectural point of the paper.
pub struct Optimizer {
    catalog: Arc<Catalog>,
    params: CostParams,
    estimator: Arc<dyn CardinalityEstimator>,
    sorted_columns: HashSet<(String, String)>,
}

impl Optimizer {
    /// Creates an optimizer.  Physical-order metadata (which columns each
    /// table is stored sorted by) is detected here, once.
    pub fn new(
        catalog: Arc<Catalog>,
        params: CostParams,
        estimator: Arc<dyn CardinalityEstimator>,
    ) -> Self {
        let sorted_columns = detect_sorted_columns(&catalog);
        Self::with_metadata(catalog, params, estimator, sorted_columns)
    }

    /// Creates an optimizer with precomputed physical-order metadata
    /// (from [`detect_sorted_columns`]) — avoids rescanning large tables
    /// when many optimizers share one catalog, as the experiment sweeps
    /// do.
    pub fn with_metadata(
        catalog: Arc<Catalog>,
        params: CostParams,
        estimator: Arc<dyn CardinalityEstimator>,
        sorted_columns: HashSet<(String, String)>,
    ) -> Self {
        Self {
            catalog,
            params,
            estimator,
            sorted_columns,
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The cost parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// The active estimation module.
    pub fn estimator(&self) -> &Arc<dyn CardinalityEstimator> {
        &self.estimator
    }

    /// `(table, column)` pairs stored in non-decreasing order — shared
    /// with the expected-penalty scorer's plan contexts.
    pub(crate) fn sorted_columns(&self) -> &HashSet<(String, String)> {
        &self.sorted_columns
    }

    /// Optimizes a query, honouring its per-query confidence-threshold
    /// hint and per-query selection mode (defaulting to quantile mode
    /// when the query carries no override).
    pub fn optimize(&self, query: &Query) -> PlannedQuery {
        self.optimize_with(query, PlanSelection::default())
    }

    /// Optimizes a query under a caller-supplied default selection mode;
    /// the query's own [`Query::selection`] override still wins.  This is
    /// how the engine threads its session-wide mode through without the
    /// query needing to know it.
    pub fn optimize_with(&self, query: &Query, default_selection: PlanSelection) -> PlannedQuery {
        match query.selection.unwrap_or(default_selection) {
            PlanSelection::Quantile => self.optimize_quantile(query),
            PlanSelection::ExpectedPenalty => optimize_expected_penalty(self, query),
        }
    }

    /// The paper's scheme: collapse each posterior at the confidence
    /// threshold, then run one enumeration at those point selectivities.
    fn optimize_quantile(&self, query: &Query) -> PlannedQuery {
        let hinted;
        let estimator: &dyn CardinalityEstimator = match query.hint {
            Some(t) => match self.estimator.hinted(t) {
                Some(h) => {
                    hinted = h;
                    hinted.as_ref()
                }
                None => self.estimator.as_ref(),
            },
            None => self.estimator.as_ref(),
        };

        let model = CostModel::new(&self.catalog, &self.params);
        let ctx = PlanContext::new(&self.catalog, model, estimator, &self.sorted_columns);
        let best = best_join_plan(&ctx, query);

        let (plan, cost_ms) = if query.aggregates.is_empty() {
            (best.plan, best.cost_ms)
        } else {
            // Group-count guess for costing the (plan-invariant) top
            // aggregate; any monotone heuristic works because it is the
            // same for every candidate.
            let groups = if query.group_by.is_empty() {
                1.0
            } else {
                best.out_rows.sqrt().max(1.0)
            };
            let agg_cost = ctx.model.aggregate_ms(best.out_rows, groups);
            (
                PhysicalPlan::HashAggregate {
                    input: Box::new(best.plan),
                    group_by: query.group_by.clone(),
                    aggregates: query.aggregates.clone(),
                },
                best.cost_ms + agg_cost,
            )
        };

        let node_annotations = annotate_plan(&self.catalog, estimator, query, &plan);
        PlannedQuery {
            plan,
            estimated_cost_ms: cost_ms,
            estimated_rows: best.out_rows,
            estimator_calls: ctx.estimator_calls(),
            node_annotations,
            selection: PlanSelection::Quantile,
            penalty: None,
        }
    }
}

/// Detects, for every table, which `Int`/`Date` columns are stored in
/// non-decreasing order (the physical clustering the merge-join costing
/// exploits).
pub fn detect_sorted_columns(catalog: &Catalog) -> HashSet<(String, String)> {
    let mut sorted = HashSet::new();
    for table in catalog.tables() {
        for (i, col) in table.schema().columns().iter().enumerate() {
            let is_sorted = match col.data_type {
                DataType::Int => table.int_column(i).windows(2).all(|w| w[0] <= w[1]),
                DataType::Date => table.date_column(i).windows(2).all(|w| w[0] <= w[1]),
                _ => false,
            };
            if is_sorted && table.num_rows() > 1 {
                sorted.insert((table.name().to_string(), col.name.clone()));
            }
        }
    }
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_core::{
        ConfidenceThreshold, EstimatorConfig, HistogramEstimator, OracleEstimator, RobustEstimator,
    };
    use rqo_datagen::{workload, StarConfig, StarData, TpchConfig, TpchData};
    use rqo_exec::AggExpr;
    use rqo_stats::SynopsisRepository;

    fn tpch_catalog() -> Arc<Catalog> {
        Arc::new(
            TpchData::generate(&TpchConfig {
                scale_factor: 0.01, // ~60k lineitem
                seed: 1234,
            })
            .into_catalog(),
        )
    }

    fn robust_optimizer(catalog: &Arc<Catalog>, threshold: f64, seed: u64) -> Optimizer {
        let repo = Arc::new(SynopsisRepository::build_all(catalog, 500, seed));
        let est = RobustEstimator::new(
            repo,
            EstimatorConfig::with_threshold(ConfidenceThreshold::new(threshold)),
        );
        Optimizer::new(Arc::clone(catalog), CostParams::default(), Arc::new(est))
    }

    fn exp1_query(offset: i64) -> Query {
        Query::over(&["lineitem"])
            .filter("lineitem", workload::exp1_lineitem_predicate(offset))
            .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
    }

    #[test]
    fn single_table_plan_structure() {
        let cat = tpch_catalog();
        let opt = robust_optimizer(&cat, 0.5, 1);
        let planned = opt.optimize(&exp1_query(0));
        // Top must be the scalar aggregate.
        assert!(matches!(planned.plan, PhysicalPlan::HashAggregate { .. }));
        assert!(planned.estimated_cost_ms > 0.0);
        assert!(planned.estimator_calls > 0);
    }

    #[test]
    fn threshold_flips_access_path() {
        // Low selectivity (offset 110 ⇒ near-zero overlap): at a low
        // confidence threshold the optimizer gambles on index
        // intersection; at a very high threshold it must refuse the gamble
        // and sequential-scan (the §6.2.4 "self-adjusting" behaviour in
        // reverse).
        let cat = tpch_catalog();
        let aggressive = robust_optimizer(&cat, 0.05, 7);
        let conservative = robust_optimizer(&cat, 0.995, 7);
        let q = exp1_query(110);
        let shape_a = aggressive.optimize(&q).shape();
        let shape_c = conservative.optimize(&q).shape();
        assert!(
            shape_a.contains("ixsect"),
            "aggressive should pick index intersection, got {shape_a}"
        );
        assert!(
            shape_c.contains("seqscan"),
            "conservative should pick sequential scan, got {shape_c}"
        );
    }

    #[test]
    fn histogram_estimator_always_picks_same_plan() {
        // The AVI estimate of the exp1 predicate does not depend on the
        // offset, so the histogram optimizer must pick the same plan shape
        // for the empty and the overlapping windows (the paper's
        // observation that the standard module "always selected the index
        // intersection plan").
        let cat = tpch_catalog();
        let est = HistogramEstimator::build_default(&cat);
        let opt = Optimizer::new(Arc::clone(&cat), CostParams::default(), Arc::new(est));
        let s0 = opt.optimize(&exp1_query(0)).shape();
        let s130 = opt.optimize(&exp1_query(130)).shape();
        assert_eq!(s0, s130);
    }

    #[test]
    fn three_way_join_produces_valid_plan() {
        let cat = tpch_catalog();
        let opt = robust_optimizer(&cat, 0.8, 3);
        let q = Query::over(&["lineitem", "orders", "part"])
            .filter("part", workload::exp2_part_predicate(250))
            .aggregate(AggExpr::count_star("n"));
        let planned = opt.optimize(&q);
        // Execute it and compare against the oracle count.
        let (batch, _) = rqo_exec::execute(&planned.plan, &cat, opt.params());
        assert_eq!(batch.len(), 1);
        let n = batch.rows[0][0].as_int();
        let oracle = OracleEstimator::new(Arc::clone(&cat));
        let pred = workload::exp2_part_predicate(250);
        let req = rqo_core::EstimationRequest::new(
            vec!["lineitem", "orders", "part"],
            vec![("part", &pred)],
        );
        let truth =
            oracle.estimate(&req).selectivity * cat.table("lineitem").unwrap().num_rows() as f64;
        assert_eq!(n as f64, truth, "plan result must equal true count");
    }

    #[test]
    fn join_plan_shape_responds_to_part_selectivity() {
        // Very selective part predicate ⇒ INL into lineitem; wide
        // predicate (30% of parts — unambiguous even with sampling noise)
        // ⇒ scan-based join.
        let cat = tpch_catalog();
        let opt = robust_optimizer(&cat, 0.5, 9);
        let narrow = Query::over(&["lineitem", "orders", "part"])
            .filter("part", workload::exp2_part_predicate(295))
            .aggregate(AggExpr::count_star("n"));
        let wide = Query::over(&["lineitem", "orders", "part"])
            .filter(
                "part",
                rqo_expr::Expr::col("p_x").lt(rqo_expr::Expr::lit(300i64)),
            )
            .aggregate(AggExpr::count_star("n"));
        let shape_narrow = opt.optimize(&narrow).shape();
        let shape_wide = opt.optimize(&wide).shape();
        assert!(
            shape_narrow.contains("inl"),
            "narrow predicate should use indexed NL, got {shape_narrow}"
        );
        assert!(
            !shape_wide.contains("inl"),
            "wide predicate should avoid indexed NL, got {shape_wide}"
        );
    }

    #[test]
    fn star_query_selects_semijoin_at_low_match_fraction() {
        // The semijoin's fixed cost (one index descend per selected dim
        // key) only pays off once the fact table is large enough that a
        // full scan is expensive; 500k rows is comfortably past that
        // point, mirroring the paper's 10M-row fact table.
        let cat = Arc::new(
            StarData::generate(&StarConfig {
                fact_rows: 500_000,
                seed: 10,
            })
            .into_catalog(),
        );
        let opt = robust_optimizer(&cat, 0.5, 11);
        let q_low = star_query(0); // diag_fraction(0) = 0 matches
        let q_high = star_query(9); // 10% of fact rows match
        let low_shape = opt.optimize(&q_low).shape();
        let high_shape = opt.optimize(&q_high).shape();
        assert!(
            low_shape.contains("semijoin"),
            "low-match star should use semijoin, got {low_shape}"
        );
        assert!(
            !high_shape.contains("semijoin"),
            "high-match star should use hash joins, got {high_shape}"
        );
    }

    fn star_query(level: i64) -> Query {
        let mut q = Query::over(&["fact", "dim1", "dim2", "dim3"])
            .aggregate(AggExpr::sum("f_measure1", "total"));
        for dim in ["dim1", "dim2", "dim3"] {
            q = q.filter(dim, workload::exp3_dim_predicate(level));
        }
        q
    }

    #[test]
    fn star_semijoin_applies_fact_local_predicate() {
        // Regression: StarSemiJoin emits unfiltered fact rows, so a
        // predicate on the fact table itself must be re-applied by the
        // candidate generator (it was silently dropped once).
        let cat = Arc::new(
            StarData::generate(&StarConfig {
                fact_rows: 500_000,
                seed: 10,
            })
            .into_catalog(),
        );
        let opt = robust_optimizer(&cat, 0.05, 11);
        let fpred = rqo_expr::Expr::col("f_measure1").lt(rqo_expr::Expr::lit(50.0));
        let mut q = Query::over(&["fact", "dim1", "dim2", "dim3"])
            .filter("fact", fpred.clone())
            .aggregate(AggExpr::count_star("n"));
        for dim in ["dim1", "dim2", "dim3"] {
            q = q.filter(dim, workload::exp3_dim_predicate(2));
        }
        let planned = opt.optimize(&q);
        assert!(
            planned.shape().contains("semijoin"),
            "repro requires the semijoin plan, got {}",
            planned.shape()
        );
        let (batch, _) = rqo_exec::execute(&planned.plan, &cat, opt.params());
        let dpred = workload::exp3_dim_predicate(2);
        let req = rqo_core::EstimationRequest::new(
            vec!["fact", "dim1", "dim2", "dim3"],
            vec![
                ("fact", &fpred),
                ("dim1", &dpred),
                ("dim2", &dpred),
                ("dim3", &dpred),
            ],
        );
        let oracle = OracleEstimator::new(Arc::clone(&cat));
        let truth = (oracle.estimate(&req).selectivity * 500_000.0).round() as i64;
        assert_eq!(batch.rows[0][0].as_int(), truth);
    }

    #[test]
    fn star_plan_executes_correctly() {
        let cat = Arc::new(
            StarData::generate(&StarConfig {
                fact_rows: 20_000,
                seed: 12,
            })
            .into_catalog(),
        );
        let opt = robust_optimizer(&cat, 0.8, 13);
        for level in [0i64, 5, 9] {
            let q = star_query(level).aggregate(AggExpr::count_star("n"));
            let planned = opt.optimize(&q);
            let (batch, _) = rqo_exec::execute(&planned.plan, &cat, opt.params());
            let n = batch.rows[0][batch.schema.expect_index("n")].as_int();
            // Compare with brute-force count through the oracle.
            let pred = workload::exp3_dim_predicate(level);
            let req = rqo_core::EstimationRequest::new(
                vec!["fact", "dim1", "dim2", "dim3"],
                vec![("dim1", &pred), ("dim2", &pred), ("dim3", &pred)],
            );
            let oracle = OracleEstimator::new(Arc::clone(&cat));
            let truth = (oracle.estimate(&req).selectivity
                * cat.table("fact").unwrap().num_rows() as f64)
                .round() as i64;
            assert_eq!(n, truth, "level {level}");
        }
    }

    #[test]
    fn per_query_hint_overrides_system_threshold() {
        let cat = tpch_catalog();
        // System-wide aggressive; hint conservative.
        let opt = robust_optimizer(&cat, 0.05, 7);
        let q = exp1_query(110);
        let unhinted = opt.optimize(&q).shape();
        let hinted = opt
            .optimize(&q.clone().with_hint(ConfidenceThreshold::new(0.995)))
            .shape();
        assert!(unhinted.contains("ixsect"), "{unhinted}");
        assert!(hinted.contains("seqscan"), "{hinted}");
    }

    #[test]
    fn sorted_column_detection() {
        let cat = tpch_catalog();
        let sorted = detect_sorted_columns(&cat);
        assert!(sorted.contains(&("lineitem".into(), "l_orderkey".into())));
        assert!(sorted.contains(&("orders".into(), "o_orderkey".into())));
        assert!(sorted.contains(&("part".into(), "p_partkey".into())));
        assert!(!sorted.contains(&("lineitem".into(), "l_partkey".into())));
    }

    #[test]
    fn query_without_aggregates_returns_join_rows() {
        let cat = tpch_catalog();
        let opt = robust_optimizer(&cat, 0.8, 21);
        let q = Query::over(&["lineitem", "orders"]).filter(
            "orders",
            rqo_expr::Expr::col("o_orderkey").le(rqo_expr::Expr::lit(5i64)),
        );
        let planned = opt.optimize(&q);
        assert!(!matches!(planned.plan, PhysicalPlan::HashAggregate { .. }));
        let (batch, _) = rqo_exec::execute(&planned.plan, &cat, opt.params());
        // Every surviving row joins one of the first five orders; columns
        // from both tables are present.
        assert!(!batch.is_empty());
        assert!(batch.schema.index_of("l_partkey").is_some());
        assert!(batch.schema.index_of("o_totalprice").is_some());
        let ok = batch.schema.expect_index("o_orderkey");
        for row in &batch.rows {
            assert!(row[ok].as_int() <= 5);
        }
    }

    #[test]
    #[should_panic(expected = "connected FK join graph")]
    fn disconnected_query_is_rejected() {
        let cat = tpch_catalog();
        let opt = robust_optimizer(&cat, 0.8, 22);
        // orders and part share no FK edge.
        let q = Query::over(&["orders", "part"]).aggregate(AggExpr::count_star("n"));
        opt.optimize(&q);
    }

    #[test]
    fn unfiltered_single_table_query_scans() {
        let cat = tpch_catalog();
        let opt = robust_optimizer(&cat, 0.8, 23);
        let q = Query::over(&["part"]).aggregate(AggExpr::count_star("n"));
        let planned = opt.optimize(&q);
        assert_eq!(planned.shape(), "agg(seqscan)");
        let (batch, _) = rqo_exec::execute(&planned.plan, &cat, opt.params());
        assert_eq!(
            batch.rows[0][0].as_int(),
            cat.table("part").unwrap().num_rows() as i64
        );
    }

    #[test]
    fn grouped_query_plans_and_executes() {
        let cat = tpch_catalog();
        let opt = robust_optimizer(&cat, 0.8, 24);
        let q = Query::over(&["lineitem", "part"])
            .filter(
                "part",
                rqo_expr::Expr::col("p_x").lt(rqo_expr::Expr::lit(100i64)),
            )
            .group(&["p_brand"])
            .aggregate(AggExpr::count_star("n"))
            .aggregate(AggExpr::sum("l_extendedprice", "rev"));
        let planned = opt.optimize(&q);
        let (batch, _) = rqo_exec::execute(&planned.plan, &cat, opt.params());
        assert!(
            batch.len() > 1 && batch.len() <= 25,
            "{} brands",
            batch.len()
        );
        assert_eq!(batch.schema.names(), vec!["p_brand", "n", "rev"]);
        // Group counts sum to the ungrouped count.
        let total: i64 = batch.rows.iter().map(|r| r[1].as_int()).sum();
        let q_total = Query::over(&["lineitem", "part"])
            .filter(
                "part",
                rqo_expr::Expr::col("p_x").lt(rqo_expr::Expr::lit(100i64)),
            )
            .aggregate(AggExpr::count_star("n"));
        let planned_total = opt.optimize(&q_total);
        let (b2, _) = rqo_exec::execute(&planned_total.plan, &cat, opt.params());
        assert_eq!(total, b2.rows[0][0].as_int());
    }

    #[test]
    fn oracle_optimizer_always_picks_best_executed_plan() {
        // With exact cardinalities, the chosen plan's *executed* cost must
        // not exceed the executed cost of the obvious alternatives.
        let cat = tpch_catalog();
        let oracle = OracleEstimator::new(Arc::clone(&cat));
        let opt = Optimizer::new(Arc::clone(&cat), CostParams::default(), Arc::new(oracle));
        for offset in [0i64, 90, 130] {
            let planned = opt.optimize(&exp1_query(offset));
            let (_, cost) = rqo_exec::execute(&planned.plan, &cat, opt.params());
            let chosen = cost.seconds(opt.params());
            // Alternative: forced sequential scan.
            let scan = PhysicalPlan::HashAggregate {
                input: Box::new(PhysicalPlan::SeqScan {
                    table: "lineitem".into(),
                    predicate: Some(workload::exp1_lineitem_predicate(offset)),
                }),
                group_by: vec![],
                aggregates: vec![AggExpr::sum("l_extendedprice", "revenue")],
            };
            let (_, scan_cost) = rqo_exec::execute(&scan, &cat, opt.params());
            assert!(
                chosen <= scan_cost.seconds(opt.params()) * 1.05,
                "offset {offset}: chosen {chosen} vs scan {}",
                scan_cost.seconds(opt.params())
            );
        }
    }
}
