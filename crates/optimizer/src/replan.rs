//! Mid-query re-optimization: planning the remainder of a query against
//! an already-materialized intermediate.
//!
//! When a runtime cardinality guard trips at a pipeline breaker, the
//! adaptive driver (`RobustDb::run_adaptive`) has three things in hand:
//! the materialized batch, the `(tables, predicates)` spec of the subtree
//! that produced it (from the tripped node's [`NodeAnnotation`]), and a
//! feedback store that now records the *observed* selectivities for that
//! spec.  [`Optimizer::replan_with_materialized`] turns those into a
//! resumable plan:
//!
//! 1. re-optimize the **full** query — the estimator, primed with the
//!    fed-back truth, no longer repeats the misestimate, and the search
//!    is free to restructure everything downstream of the breaker;
//! 2. find the node of the fresh plan whose derived estimation request
//!    matches the finished fragment's spec (canonical-key comparison,
//!    the same keying the feedback store uses);
//! 3. graft a [`PhysicalPlan::Materialized`] leaf over that subtree, so
//!    the finished work is served from memory instead of recomputed.
//!
//! Step 2 can legitimately fail: the fresh plan may have absorbed the
//! fragment's tables into a shape with no matching subtree (e.g. the
//! table became the *inner* of an indexed nested-loops join).  In that
//! case the un-grafted plan is returned and the caller simply re-executes
//! it from scratch — correctness never depends on the graft, only the
//! cost saving does.

use rqo_core::{CardinalityEstimator, ConfidenceThreshold, FeedbackStore, PlanSelection};
use rqo_exec::PhysicalPlan;
use rqo_expr::Expr;

use crate::analyze::{annotate_plan, NodeAnnotation};
use crate::planner::{Optimizer, PlannedQuery};
use crate::query::Query;
use crate::selection::PENALTY_ANNOTATION_QUANTILE;

/// A finished, materialized query fragment: the spec of the subtree whose
/// output is already in memory, and the slot its batch is bound to at
/// execution time.
#[derive(Debug, Clone)]
pub struct MaterializedFragment {
    /// Tables the fragment covers.
    pub tables: Vec<String>,
    /// Query predicates applied within the fragment.
    pub predicates: Vec<(String, Expr)>,
    /// Executor slot the fragment's batch is bound to.
    pub slot: usize,
}

impl MaterializedFragment {
    /// Builds a fragment from the tripped node's annotation and the slot
    /// its batch will occupy.
    pub fn from_annotation(annotation: &NodeAnnotation, slot: usize) -> Self {
        Self {
            tables: annotation.tables.clone(),
            predicates: annotation.predicates.clone(),
            slot,
        }
    }

    /// The fragment's canonical estimation-request key — the identity
    /// used to find the matching subtree in a fresh plan.
    pub fn key(&self) -> String {
        spec_key(&self.tables, &self.predicates)
    }
}

/// Canonical key of a `(tables, predicates)` spec, identical to the
/// feedback store's keying so fragment matching and feedback recording
/// agree on what "the same subtree" means.
fn spec_key(tables: &[String], predicates: &[(String, Expr)]) -> String {
    let t: Vec<&str> = tables.iter().map(String::as_str).collect();
    let p: Vec<(&str, &Expr)> = predicates.iter().map(|(t, e)| (t.as_str(), e)).collect();
    FeedbackStore::canonical_key(&t, &p)
}

impl Optimizer {
    /// Re-optimizes `query` and grafts a [`PhysicalPlan::Materialized`]
    /// leaf over the subtree matching `fragment`, returning the planned
    /// query and whether the graft happened.
    ///
    /// The returned plan is always executable; when the flag is `false`
    /// no subtree of the fresh plan matched the fragment's spec and the
    /// plan recomputes everything (correct, just not resumed).
    pub fn replan_with_materialized(
        &self,
        query: &Query,
        fragment: &MaterializedFragment,
    ) -> (PlannedQuery, bool) {
        let mut planned = self.optimize(query);
        let target_key = fragment.key();
        // First pre-order match = shallowest = the largest finished
        // subtree the fresh plan can reuse.
        let target = planned
            .node_annotations
            .iter()
            .enumerate()
            .find_map(|(idx, ann)| {
                let ann = ann.as_ref()?;
                if ann.tables.is_empty() {
                    // Value-only annotations (aggregates) have no spec.
                    return None;
                }
                (spec_key(&ann.tables, &ann.predicates) == target_key).then_some(idx)
            });
        let Some(idx) = target else {
            return (planned, false);
        };
        let leaf = PhysicalPlan::Materialized {
            slot: fragment.slot,
            tables: fragment.tables.clone(),
            predicates: fragment.predicates.clone(),
        };
        let Some(plan) = planned.plan.replace_subtree(idx, leaf) else {
            return (planned, false);
        };
        // Re-derive annotations for the grafted shape with the same
        // (possibly hinted) estimator that derived the fresh plan's own
        // annotations, so downstream guard arming and metric annotation
        // stay aligned node-for-node.  Penalty-mode plans annotate at
        // the posterior median regardless of any threshold hint.
        let annotation_hint = match query.selection.unwrap_or_default() {
            PlanSelection::ExpectedPenalty => {
                Some(ConfidenceThreshold::new(PENALTY_ANNOTATION_QUANTILE))
            }
            PlanSelection::Quantile => query.hint,
        };
        let hinted;
        let estimator: &dyn CardinalityEstimator = match annotation_hint {
            Some(t) => match self.estimator().hinted(t) {
                Some(h) => {
                    hinted = h;
                    hinted.as_ref()
                }
                None => self.estimator().as_ref(),
            },
            None => self.estimator().as_ref(),
        };
        planned.node_annotations = annotate_plan(self.catalog(), estimator, query, &plan);
        planned.plan = plan;
        (planned, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_core::OracleEstimator;
    use rqo_datagen::{workload, TpchConfig, TpchData};
    use rqo_exec::AggExpr;
    use rqo_storage::{Catalog, CostParams};
    use std::sync::Arc;

    fn oracle_optimizer() -> Optimizer {
        let cat: Arc<Catalog> = Arc::new(
            TpchData::generate(&TpchConfig {
                scale_factor: 0.005,
                seed: 42,
            })
            .into_catalog(),
        );
        let est = OracleEstimator::new(Arc::clone(&cat));
        Optimizer::new(cat, CostParams::default(), Arc::new(est))
    }

    #[test]
    fn graft_replaces_matching_subtree() {
        let opt = oracle_optimizer();
        let pred = workload::exp1_lineitem_predicate(50);
        let query = Query::over(&["lineitem"])
            .filter("lineitem", pred.clone())
            .aggregate(AggExpr::count_star("n"));
        let fragment = MaterializedFragment {
            tables: vec!["lineitem".into()],
            predicates: vec![("lineitem".into(), pred)],
            slot: 0,
        };
        let (planned, substituted) = opt.replan_with_materialized(&query, &fragment);
        assert!(substituted);
        assert_eq!(planned.shape(), "agg(mat#0)");
        assert_eq!(
            planned.node_annotations.len(),
            planned.plan.node_count(),
            "annotations re-derived for the grafted shape"
        );
        // The materialized leaf keeps its spec annotation.
        let leaf = planned.node_annotations[1].as_ref().expect("leaf spec");
        assert_eq!(leaf.tables, vec!["lineitem".to_string()]);
    }

    #[test]
    fn unmatched_fragment_returns_plan_unchanged() {
        let opt = oracle_optimizer();
        let query = Query::over(&["lineitem"])
            .filter("lineitem", workload::exp1_lineitem_predicate(50))
            .aggregate(AggExpr::count_star("n"));
        let fragment = MaterializedFragment {
            tables: vec!["orders".into()],
            predicates: vec![],
            slot: 0,
        };
        let baseline = opt.optimize(&query);
        let (planned, substituted) = opt.replan_with_materialized(&query, &fragment);
        assert!(!substituted);
        assert_eq!(planned.shape(), baseline.shape());
    }
}
