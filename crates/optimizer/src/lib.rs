//! A cost-based select-project-join optimizer whose *only* interface to
//! statistics is the [`rqo_core::CardinalityEstimator`] trait — the
//! architectural claim of the paper (§3.1.1): swapping in the robust
//! sampling-based estimator requires no changes to plan enumeration, cost
//! estimation, or search.
//!
//! The optimizer handles the paper's query model: SPJ queries whose joins
//! follow declared foreign keys, with optional aggregation on top.  For
//! each query it performs:
//!
//! * **access-path selection** per table — sequential scan, single index
//!   seek, or index intersection over the indexed range conjuncts (the
//!   choice at the heart of Experiments 1 and 4);
//! * **join enumeration** — dynamic programming over connected subsets of
//!   the FK join graph, considering hash join (both build sides), merge
//!   join (sort-avoiding when inputs arrive clustered), and indexed
//!   nested-loops join (Experiment 2's three regimes);
//! * **star-semijoin candidates** — index-driven semijoin plans for
//!   star-shaped queries, including the hybrid shapes the paper observed
//!   (Experiment 3).
//!
//! Costing mirrors the executor's charging rules exactly, evaluated at the
//! *estimated* cardinalities; with the robust estimator those cardinalities
//! are posterior quantiles at the configured confidence threshold, so a
//! single knob moves every plan choice along the
//! performance/predictability frontier.

#![warn(missing_docs)]

pub mod access;
pub mod analyze;
pub mod cache;
pub mod cost;
pub mod enumerate;
pub mod planner;
pub mod prune;
pub mod query;
pub mod replan;
pub mod selection;

pub use analyze::{annotate_plan, NodeAnnotation, NodeAnnotations};
pub use cache::{CacheStats, PlanCache, PlanFingerprint, DEFAULT_DRIFT_BOUND};
pub use cost::CostModel;
pub use planner::{detect_sorted_columns, Optimizer, PlannedQuery};
pub use prune::pruned_partitions;
pub use query::Query;
pub use replan::MaterializedFragment;
pub use selection::{
    price_plan, CandidateScore, PenaltyReport, PricedPlan, PENALTY_ANNOTATION_QUANTILE,
};
