//! Partition pruning: which partitions of a partitioned table can a
//! predicate possibly match?
//!
//! Pruning is a pure, conservative static analysis over the catalog's
//! partition layout — it may keep a partition that turns out to hold no
//! qualifying rows, but it must never drop one that does, because the
//! executor applies the (full) predicate only to the partitions listed in
//! the plan.  Two sources of evidence are used:
//!
//! * **Per-partition min/max** of the partitioning column, maintained by
//!   the loader.  Any range-shaped conjunct on that column excludes the
//!   partitions whose `[min, max]` interval cannot intersect the
//!   conjunct's range.  This works for both range and hash partitioning
//!   (a hash partition's min/max is still a sound summary of what landed
//!   in it).
//! * **Hash routing** for point equality: under hash partitioning,
//!   `key = v` can only find rows in the bucket `v` routes to.
//!
//! Empty partitions are always pruned; they contribute no rows and no
//! page charges either way, so dropping them is free and keeps the
//! surviving count honest in `EXPLAIN`.

use std::ops::Bound;

use rqo_expr::Expr;
use rqo_storage::{PartitionSpec, Partitioning, Value};

/// The ascending list of partitions a scan with `predicate` must read.
/// `None` (no predicate) keeps every non-empty partition.
pub fn pruned_partitions(layout: &Partitioning, predicate: Option<&Expr>) -> Vec<usize> {
    let key_col = layout.spec().column();
    let mut survivors: Vec<usize> = (0..layout.partition_count())
        .filter(|&p| layout.min_max(p).is_some())
        .collect();
    let Some(predicate) = predicate else {
        return survivors;
    };
    for c in predicate.conjuncts() {
        let Some((col, lo, hi)) = c.as_column_range() else {
            continue;
        };
        if col != key_col {
            continue;
        }
        survivors.retain(|&p| {
            let (pmin, pmax) = layout.min_max(p).expect("empty partitions pruned above");
            lo_allows(&lo, pmax) && hi_allows(&hi, pmin)
        });
        // Point equality under hash partitioning: only the routed bucket
        // can hold the key.
        if let (Bound::Included(a), Bound::Included(b)) = (&lo, &hi) {
            if a == b && matches!(layout.spec(), PartitionSpec::Hash { .. }) {
                let target = layout.spec().route(a);
                survivors.retain(|&p| p == target);
            }
        }
    }
    survivors
}

/// True when a partition whose maximum key is `pmax` can contain a value
/// satisfying the lower bound `lo`.
fn lo_allows(lo: &Bound<Value>, pmax: &Value) -> bool {
    match lo {
        Bound::Unbounded => true,
        Bound::Included(v) => pmax.total_cmp(v).is_ge(),
        Bound::Excluded(v) => pmax.total_cmp(v).is_gt(),
    }
}

/// True when a partition whose minimum key is `pmin` can contain a value
/// satisfying the upper bound `hi`.
fn hi_allows(hi: &Bound<Value>, pmin: &Value) -> bool {
    match hi {
        Bound::Unbounded => true,
        Bound::Included(v) => pmin.total_cmp(v).is_le(),
        Bound::Excluded(v) => pmin.total_cmp(v).is_lt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_storage::{DataType, PartitionedTableBuilder, Schema};

    /// 0..400 range-partitioned on `x` at 100/200/300.
    fn range_layout() -> Partitioning {
        let spec = PartitionSpec::Range {
            column: "x".into(),
            bounds: vec![Value::Int(100), Value::Int(200), Value::Int(300)],
        };
        let mut b =
            PartitionedTableBuilder::new("t", Schema::from_pairs(&[("x", DataType::Int)]), spec);
        for i in 0..400i64 {
            b.push_row(&[Value::Int(i)]);
        }
        b.finish().1
    }

    /// 0..400 hash-partitioned on `x` into 4 buckets.
    fn hash_layout() -> Partitioning {
        let spec = PartitionSpec::Hash {
            column: "x".into(),
            partitions: 4,
        };
        let mut b =
            PartitionedTableBuilder::new("t", Schema::from_pairs(&[("x", DataType::Int)]), spec);
        for i in 0..400i64 {
            b.push_row(&[Value::Int(i)]);
        }
        b.finish().1
    }

    #[test]
    fn no_predicate_keeps_all_nonempty() {
        let layout = range_layout();
        assert_eq!(pruned_partitions(&layout, None), vec![0, 1, 2, 3]);
    }

    #[test]
    fn range_conjunct_prunes_by_bounds() {
        let layout = range_layout();
        let p = Expr::col("x").between(Expr::lit(150i64), Expr::lit(250i64));
        assert_eq!(pruned_partitions(&layout, Some(&p)), vec![1, 2]);
        let p = Expr::col("x").lt(Expr::lit(100i64));
        assert_eq!(pruned_partitions(&layout, Some(&p)), vec![0]);
        // Boundary exactness: x < 101 needs partition 1 (it holds 100..200);
        // x <= 99 does not.
        let p = Expr::col("x").lt(Expr::lit(101i64));
        assert_eq!(pruned_partitions(&layout, Some(&p)), vec![0, 1]);
        let p = Expr::col("x").le(Expr::lit(99i64));
        assert_eq!(pruned_partitions(&layout, Some(&p)), vec![0]);
        // Impossible range: everything pruned.
        let p = Expr::col("x").gt(Expr::lit(999i64));
        assert!(pruned_partitions(&layout, Some(&p)).is_empty());
    }

    #[test]
    fn conjunction_intersects_and_other_columns_ignored() {
        let layout = range_layout();
        let p = Expr::col("x")
            .ge(Expr::lit(150i64))
            .and(Expr::col("y").lt(Expr::lit(5i64)))
            .and(Expr::col("x").lt(Expr::lit(220i64)));
        assert_eq!(pruned_partitions(&layout, Some(&p)), vec![1, 2]);
        // A predicate only on other columns prunes nothing.
        let p = Expr::col("y").lt(Expr::lit(5i64));
        assert_eq!(pruned_partitions(&layout, Some(&p)), vec![0, 1, 2, 3]);
    }

    #[test]
    fn hash_equality_routes_to_one_bucket() {
        let layout = hash_layout();
        let p = Expr::col("x").eq(Expr::lit(42i64));
        let survivors = pruned_partitions(&layout, Some(&p));
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0], layout.spec().route(&Value::Int(42)));
        // A hash layout cannot prune on ranges beyond min/max evidence:
        // a wide range keeps every bucket.
        let p = Expr::col("x").ge(Expr::lit(0i64));
        assert_eq!(pruned_partitions(&layout, Some(&p)).len(), 4);
    }

    #[test]
    fn empty_partitions_always_pruned() {
        // Rows only in 0..100: partitions 1..4 of the range layout are
        // empty and never survive.
        let spec = PartitionSpec::Range {
            column: "x".into(),
            bounds: vec![Value::Int(100), Value::Int(200), Value::Int(300)],
        };
        let mut b =
            PartitionedTableBuilder::new("t", Schema::from_pairs(&[("x", DataType::Int)]), spec);
        for i in 0..50i64 {
            b.push_row(&[Value::Int(i)]);
        }
        let layout = b.finish().1;
        assert_eq!(pruned_partitions(&layout, None), vec![0]);
    }
}
