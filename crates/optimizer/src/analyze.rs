//! Post-hoc per-node cardinality annotation — the optimizer side of
//! `EXPLAIN ANALYZE`.
//!
//! The physical plan type is a pure algebra shared with the executor and
//! compared structurally all over the test suite, so estimated
//! cardinalities are not stored inside the plan nodes.  Instead this
//! module re-derives, for every node of a finished plan, the estimation
//! request the optimizer would make for that node's subtree — which
//! tables it covers and which of the query's predicates have been applied
//! within it — and evaluates the active estimator on it.  The result is a
//! side vector of [`NodeAnnotation`]s in the plan's **pre-order**
//! numbering (node before children, children in execution order), the
//! same numbering as [`rqo_exec::OpMetrics::preorder`], so the executor's
//! actuals and the optimizer's estimates zip together node for node.
//!
//! Because each annotation records the exact `(tables, predicates)`
//! request, observed actual selectivities can be fed back into a
//! [`rqo_core::FeedbackStore`] under keys the estimator will hit when the
//! same query is optimized again — closing the estimate → execute →
//! observe → re-estimate loop.

use rqo_core::{CardinalityEstimator, EstimationRequest};
use rqo_exec::PhysicalPlan;
use rqo_expr::Expr;
use rqo_stats::synopsis::find_root;
use rqo_storage::Catalog;

use crate::query::Query;

/// The derived estimation context for one plan node, in pre-order.
#[derive(Debug, Clone)]
pub struct NodeAnnotation {
    /// Estimated output rows of the node's subtree under the active
    /// estimator; `None` when the subtree's estimation request could not
    /// be reconstructed (hand-built plans whose filters do not correspond
    /// to query predicates).
    pub est_rows: f64,
    /// Rows of the FK-root relation of the subtree's tables — the base
    /// the selectivity multiplies; `rows_out / root_rows` is the node's
    /// observed selectivity.
    pub root_rows: f64,
    /// Tables covered by the subtree.
    pub tables: Vec<String>,
    /// Query predicates applied within the subtree, as `(table, expr)`
    /// pairs — exactly the estimator request whose observed selectivity
    /// is worth recording as feedback.
    pub predicates: Vec<(String, Expr)>,
}

/// A `NodeAnnotation` wrapped in `Option`: `None` marks nodes with no
/// meaningful cardinality derivation (aggregates estimate group counts
/// heuristically and get a value-only annotation instead).
pub type NodeAnnotations = Vec<Option<NodeAnnotation>>;

/// What a subtree covers, threaded up the recursion.
#[derive(Clone)]
struct Spec {
    tables: Vec<String>,
    predicates: Vec<(String, Expr)>,
    /// False once something in the subtree could not be mapped back to
    /// the query (poisons estimates from there up).
    known: bool,
}

/// Annotates every node of `plan` with the estimator's view of its
/// subtree, in pre-order.  `estimator` should be the same (possibly
/// hinted) module that produced the plan, so the annotations reproduce
/// the selectivities the optimizer actually used.
///
/// Node numbering comes from [`PhysicalPlan::preorder`] — the one shared
/// traversal also used by `explain()`, `OpMetrics`, and the executor's
/// guard points, so all four views of a plan agree on every index.
pub fn annotate_plan(
    catalog: &Catalog,
    estimator: &dyn CardinalityEstimator,
    query: &Query,
    plan: &PhysicalPlan,
) -> NodeAnnotations {
    let nodes = plan.preorder();
    // In pre-order every child's index is greater than its parent's, so a
    // reverse-index sweep sees each node's children fully derived.
    let mut specs: Vec<Option<Spec>> = vec![None; nodes.len()];
    for i in (0..nodes.len()).rev() {
        specs[i] = Some(derive_spec(query, &nodes, &specs, i));
    }

    let mut out: NodeAnnotations = vec![None; nodes.len()];
    for i in (0..nodes.len()).rev() {
        if let PhysicalPlan::HashAggregate { group_by, .. } = nodes[i].plan {
            // Mirror the planner's group-count heuristic: one row for a
            // scalar aggregate, √(input estimate) for a grouped one.  A
            // value-only annotation — aggregates have no feedback key.
            let input_est = out[nodes[i].children[0]].as_ref().map(|a| a.est_rows);
            let est = if group_by.is_empty() {
                Some(1.0)
            } else {
                input_est.map(|e| e.sqrt().max(1.0))
            };
            out[i] = est.map(|est_rows| NodeAnnotation {
                est_rows,
                root_rows: 0.0,
                tables: vec![],
                predicates: vec![],
            });
        } else {
            out[i] = annotation_for(catalog, estimator, specs[i].as_ref().expect("derived"));
        }
    }
    out
}

/// Derives one node's estimation spec from its own shape plus its
/// children's already-derived specs (`specs[child]` is `Some` for every
/// child because the caller sweeps in reverse pre-order).
fn derive_spec(
    query: &Query,
    nodes: &[rqo_exec::PreorderNode<'_>],
    specs: &[Option<Spec>],
    i: usize,
) -> Spec {
    let node = &nodes[i];
    let child = |k: usize| -> Spec {
        specs[node.children[k]]
            .clone()
            .expect("children derived before parents in reverse pre-order")
    };
    match node.plan {
        // Partition pruning is semantically transparent — a pruned scan
        // returns the same rows as the full scan — so both derive the
        // same spec.
        PhysicalPlan::SeqScan { table, predicate }
        | PhysicalPlan::PartitionedScan {
            table, predicate, ..
        } => Spec {
            tables: vec![table.clone()],
            predicates: predicate
                .iter()
                .map(|p| (table.clone(), p.clone()))
                .collect(),
            known: true,
        },
        // A seek or intersection implements the table's full query
        // predicate (range conjuncts via the index, the rest as the
        // residual), so its output selectivity is the query predicate's —
        // the same request `access_paths` costs these candidates with.
        PhysicalPlan::IndexSeek { table, .. } | PhysicalPlan::IndexIntersection { table, .. } => {
            Spec {
                tables: vec![table.clone()],
                predicates: query
                    .predicate_for(table)
                    .map(|p| (table.clone(), p.clone()))
                    .into_iter()
                    .collect(),
                known: true,
            }
        }
        PhysicalPlan::Filter { predicate, .. } => {
            let mut spec = child(0);
            // Attribute the filter to the covered table whose query
            // predicate it is (the enumerator only emits such filters:
            // the INL inner predicate, the star fact predicate).
            let attributed = spec
                .tables
                .iter()
                .find(|t| query.predicate_for(t) == Some(predicate))
                .cloned();
            match attributed {
                Some(t) => {
                    let already = spec
                        .predicates
                        .iter()
                        .any(|(pt, pe)| *pt == t && pe == predicate);
                    if !already {
                        spec.predicates.push((t, predicate.clone()));
                    }
                }
                None => spec.known = false,
            }
            spec
        }
        PhysicalPlan::Project { .. } | PhysicalPlan::HashAggregate { .. } => child(0),
        PhysicalPlan::HashJoin { .. } | PhysicalPlan::MergeJoin { .. } => {
            merge_specs(child(0), child(1))
        }
        // The inner predicate (if any) is applied by a Filter *above* the
        // join, so only the outer side's predicates count here.
        PhysicalPlan::IndexedNlJoin { inner_table, .. } => {
            let mut spec = child(0);
            spec.tables.push(inner_table.clone());
            spec
        }
        // A materialized intermediate carries the spec of the subtree it
        // replaced, so re-annotating a grafted plan re-derives the same
        // requests — and the estimator, primed with the observed feedback
        // for those keys, now answers with the truth.
        PhysicalPlan::Materialized {
            tables, predicates, ..
        } => Spec {
            tables: tables.clone(),
            predicates: predicates.clone(),
            known: true,
        },
        PhysicalPlan::StarSemiJoin { fact_table, legs } => Spec {
            tables: std::iter::once(fact_table.clone())
                .chain(legs.iter().map(|l| l.dim_table.clone()))
                .collect(),
            predicates: legs
                .iter()
                .map(|l| (l.dim_table.clone(), l.dim_predicate.clone()))
                .collect(),
            known: true,
        },
    }
}

/// Estimated output rows per node in pre-order (`None` where no estimate
/// could be derived) — the shape [`rqo_exec::OpMetrics::annotate`] takes.
pub fn estimates_only(annotations: &NodeAnnotations) -> Vec<Option<f64>> {
    annotations
        .iter()
        .map(|a| a.as_ref().map(|a| a.est_rows))
        .collect()
}

fn merge_specs(a: Spec, b: Spec) -> Spec {
    let mut tables = a.tables;
    tables.extend(b.tables);
    let mut predicates = a.predicates;
    predicates.extend(b.predicates);
    Spec {
        tables,
        predicates,
        known: a.known && b.known,
    }
}

/// Evaluates the estimator on a subtree's derived request:
/// `rows(FK root) × selectivity(tables, applied predicates)` — the same
/// arithmetic `subset_card` uses while planning.
fn annotation_for(
    catalog: &Catalog,
    estimator: &dyn CardinalityEstimator,
    spec: &Spec,
) -> Option<NodeAnnotation> {
    if !spec.known {
        return None;
    }
    let tables: Vec<&str> = spec.tables.iter().map(String::as_str).collect();
    let root = find_root(catalog, &tables)?;
    let root_rows = catalog.table(root).ok()?.num_rows() as f64;
    let est_rows = if spec.predicates.is_empty() {
        // No predicates ⇒ the FK-join cardinality is the root's rows
        // exactly; skip the estimator like the planner does.
        root_rows
    } else {
        let preds: Vec<(&str, &Expr)> = spec
            .predicates
            .iter()
            .map(|(t, e)| (t.as_str(), e))
            .collect();
        let request = EstimationRequest::new(tables, preds);
        let sel = estimator.estimate(&request).selectivity.clamp(0.0, 1.0);
        root_rows * sel
    };
    Some(NodeAnnotation {
        est_rows,
        root_rows,
        tables: spec.tables.clone(),
        predicates: spec.predicates.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_core::OracleEstimator;
    use rqo_datagen::{workload, TpchConfig, TpchData};
    use rqo_exec::AggExpr;
    use rqo_storage::CostParams;
    use std::sync::Arc;

    fn tpch() -> Arc<Catalog> {
        Arc::new(
            TpchData::generate(&TpchConfig {
                scale_factor: 0.005,
                seed: 42,
            })
            .into_catalog(),
        )
    }

    #[test]
    fn oracle_annotations_match_executed_cardinalities() {
        // With the exact estimator, every annotated node's estimate must
        // equal the actual row count the executor produces for it.
        let cat = tpch();
        let oracle: Arc<dyn CardinalityEstimator> =
            Arc::new(OracleEstimator::new(Arc::clone(&cat)));
        let opt =
            crate::Optimizer::new(Arc::clone(&cat), CostParams::default(), Arc::clone(&oracle));
        let query = Query::over(&["lineitem", "orders", "part"])
            .filter("part", workload::exp2_part_predicate(150))
            .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
        let planned = opt.optimize(&query);
        let annotations = annotate_plan(&cat, oracle.as_ref(), &query, &planned.plan);
        assert_eq!(
            annotations.len(),
            planned.plan.node_count(),
            "one annotation per plan node"
        );
        let (_, _, metrics) = rqo_exec::execute_analyze(
            &planned.plan,
            &cat,
            opt.params(),
            &rqo_exec::ExecOptions::default(),
        );
        let actuals: Vec<u64> = metrics.preorder().iter().map(|m| m.rows_out).collect();
        for (i, (ann, actual)) in annotations.iter().zip(&actuals).enumerate() {
            let Some(ann) = ann else { continue };
            // The aggregate's group-count heuristic is not exact; every
            // real cardinality node must be.
            if ann.tables.is_empty() {
                continue;
            }
            assert!(
                (ann.est_rows - *actual as f64).abs() < 1e-6,
                "node {i}: oracle est {} vs actual {actual}",
                ann.est_rows
            );
        }
    }

    #[test]
    fn scalar_aggregate_estimates_one_row() {
        let cat = tpch();
        let oracle: Arc<dyn CardinalityEstimator> =
            Arc::new(OracleEstimator::new(Arc::clone(&cat)));
        let opt =
            crate::Optimizer::new(Arc::clone(&cat), CostParams::default(), Arc::clone(&oracle));
        let query = Query::over(&["lineitem"])
            .filter("lineitem", workload::exp1_lineitem_predicate(50))
            .aggregate(AggExpr::count_star("n"));
        let planned = opt.optimize(&query);
        let annotations = annotate_plan(&cat, oracle.as_ref(), &query, &planned.plan);
        let root = annotations[0].as_ref().expect("aggregate annotated");
        assert_eq!(root.est_rows, 1.0);
        assert!(root.tables.is_empty(), "no feedback key for aggregates");
    }

    #[test]
    fn unmatched_filter_degrades_to_none() {
        // A hand-built filter that is not a query predicate cannot be
        // mapped to an estimation request; the node and its ancestors
        // stay unannotated rather than getting a wrong estimate.
        let cat = tpch();
        let oracle: Arc<dyn CardinalityEstimator> =
            Arc::new(OracleEstimator::new(Arc::clone(&cat)));
        let query = Query::over(&["part"]);
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                table: "part".into(),
                predicate: None,
            }),
            predicate: rqo_expr::Expr::col("p_x").lt(rqo_expr::Expr::lit(10i64)),
        };
        let annotations = annotate_plan(&cat, oracle.as_ref(), &query, &plan);
        assert!(annotations[0].is_none(), "unattributable filter");
        assert!(annotations[1].is_some(), "scan below is still annotated");
    }
}
