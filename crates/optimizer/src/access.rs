//! Access-path selection for a single table.
//!
//! For a table with predicate `P = c₁ ∧ c₂ ∧ …`, the candidates are:
//!
//! * a **sequential scan** with the whole predicate pushed down — cost
//!   independent of selectivity;
//! * an **index seek** on each range-shaped conjunct whose column is
//!   indexed, with the remaining conjuncts as a residual filter — cost
//!   driven by that conjunct's *marginal* selectivity;
//! * an **index intersection** over all indexed range conjuncts — fixed
//!   cost driven by the marginals, variable cost driven by the *joint*
//!   selectivity of the ranges.  This is where the robust estimator
//!   changes the game: the joint selectivity is exactly what correlated
//!   data hides from AVI-based estimation.

use rqo_exec::{IndexRange, PhysicalPlan};
use rqo_expr::Expr;

use crate::enumerate::{Candidate, PlanContext};
use crate::prune::pruned_partitions;

/// Generates access-path candidates for one table.
pub fn access_paths(
    ctx: &PlanContext<'_>,
    table: &str,
    predicate: Option<&Expr>,
) -> Vec<Candidate> {
    let rows = ctx.model.table_rows(table);
    let out_rows = match predicate {
        Some(p) => rows * ctx.selectivity(&[table], &[(table, p)]),
        None => rows,
    };
    let sorted_by = ctx.clustered_column(table);

    // A partitioned table's full-scan candidate is a partition-wise scan
    // with statically pruned partitions; pruning is conservative, so the
    // output rows are the full scan's and only the cost shrinks.  An
    // unpartitioned table keeps the classic sequential scan.
    let scan = match ctx.catalog.partitioning(table) {
        Some(layout) => {
            let partitions = pruned_partitions(layout, predicate);
            let cost_ms = ctx.model.partitioned_scan_ms(table, &partitions);
            Candidate {
                plan: PhysicalPlan::PartitionedScan {
                    table: table.to_string(),
                    predicate: predicate.cloned(),
                    partitions,
                    total_partitions: layout.partition_count(),
                },
                cost_ms,
                out_rows,
                sorted_by: sorted_by.clone(),
            }
        }
        None => Candidate {
            plan: PhysicalPlan::SeqScan {
                table: table.to_string(),
                predicate: predicate.cloned(),
            },
            cost_ms: ctx.model.seq_scan_ms(table),
            out_rows,
            sorted_by: sorted_by.clone(),
        },
    };
    let mut candidates = vec![scan];

    let Some(predicate) = predicate else {
        return candidates;
    };

    // Split the predicate into indexed range conjuncts vs. everything else.
    let conjuncts = predicate.conjuncts();
    let mut ranges: Vec<(usize, IndexRange)> = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        if let Some((col, lo, hi)) = c.as_column_range() {
            if ctx.catalog.secondary_index(table, col).is_some() {
                ranges.push((
                    i,
                    IndexRange {
                        column: col.to_string(),
                        lo,
                        hi,
                    },
                ));
            }
        }
    }

    // Residual for a set of consumed conjunct indexes.
    let residual = |consumed: &[usize]| -> Option<Expr> {
        let rest: Vec<Expr> = conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| !consumed.contains(i))
            .map(|(_, c)| (*c).clone())
            .collect();
        Expr::conjunction(rest)
    };

    // Single-index seeks.
    for (i, range) in &ranges {
        let marginal = ctx.selectivity(&[table], &[(table, conjuncts[*i])]);
        let entries = rows * marginal;
        candidates.push(Candidate {
            plan: PhysicalPlan::IndexSeek {
                table: table.to_string(),
                range: range.clone(),
                residual: residual(&[*i]),
            },
            cost_ms: ctx.model.index_seek_ms(table, entries),
            out_rows,
            sorted_by: sorted_by.clone(),
        });
    }

    // Index intersection over all indexed ranges.
    if ranges.len() >= 2 {
        let entries: Vec<f64> = ranges
            .iter()
            .map(|(i, _)| rows * ctx.selectivity(&[table], &[(table, conjuncts[*i])]))
            .collect();
        let consumed: Vec<usize> = ranges.iter().map(|(i, _)| *i).collect();
        // Joint selectivity of the range conjuncts only: the quantity the
        // confidence threshold acts on.
        let range_conj =
            Expr::conjunction(consumed.iter().map(|&i| conjuncts[i].clone()).collect())
                .expect("at least two ranges");
        let joint = ctx.selectivity(&[table], &[(table, &range_conj)]);
        let result_rows = rows * joint;
        candidates.push(Candidate {
            plan: PhysicalPlan::IndexIntersection {
                table: table.to_string(),
                ranges: ranges.iter().map(|(_, r)| r.clone()).collect(),
                residual: residual(&consumed),
            },
            cost_ms: ctx
                .model
                .index_intersection_ms(table, &entries, result_rows),
            out_rows,
            sorted_by,
        });
    }

    candidates
}
