//! A shared, thread-safe plan cache with feedback-drift invalidation.
//!
//! Under heavy repeated traffic, re-running DP join enumeration and
//! posterior inversion for every arriving query is wasted work: the same
//! canonical query against the same statistics always produces the same
//! plan.  This module memoizes finished [`PlannedQuery`]s under a
//! [`PlanFingerprint`] — the canonical form of the query plus the
//! confidence threshold it was priced at plus the **statistics epoch** —
//! and serves them lock-cheaply (one `RwLock` read acquisition and an
//! `Arc` clone) to any number of concurrent callers.
//!
//! Three events remove entries:
//!
//! * **Feedback drift** — an `EXPLAIN ANALYZE` run observes the true
//!   selectivity of a predicate set.  [`PlanCache::observe`] compares the
//!   observation against the selectivity each cached plan was *priced*
//!   at (recorded per estimation-request key at insert time); when the
//!   q-error `max(est, obs) / min(est, obs)` exceeds the configured
//!   [`drift bound`](PlanCache::drift_bound), every fingerprint priced
//!   with that key is evicted, and the next optimization re-plans with
//!   the feedback in effect.  Entries whose estimates were close enough
//!   stay — re-planning them would reach the same plan.
//! * **Epoch invalidation** — `refresh_statistics` bumps the statistics
//!   epoch.  Fingerprints embed the epoch, so stale entries can never be
//!   *hit* again; [`PlanCache::invalidate_epochs_before`] additionally
//!   drops them eagerly so the map does not grow without bound.
//! * **Explicit [`clear`](PlanCache::clear)**.
//!
//! Every event is counted and exposed as a [`CacheStats`] snapshot so the
//! cache's behaviour is observable rather than inferred.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use rqo_core::{ConfidenceThreshold, PlanSelection};

use crate::planner::PlannedQuery;
use crate::query::Query;

/// Default drift bound: a cached plan survives as long as every observed
/// selectivity is within 2× (either direction) of the selectivity the
/// plan was priced at.  Cost is monotone in cardinality, so small drift
/// moves cost estimates without usually moving the argmin; a 2× error is
/// where the paper's cost curves start crossing.
pub const DEFAULT_DRIFT_BOUND: f64 = 2.0;

/// Selectivity floor used in q-error comparisons, so an estimate of
/// exactly zero still yields a finite (and enormous) q-error against any
/// positive observation.
const SELECTIVITY_FLOOR: f64 = 1e-12;

/// The canonical identity of a cached plan: *what was asked* (the query's
/// canonical form), *how it was priced* (the effective confidence
/// threshold and selection mode, hints included), and *against which
/// statistics* (the epoch).
///
/// Two `Query` values that differ only in construction order — table
/// listing order, predicate attachment order — map to the same
/// fingerprint; anything that can change the chosen plan (predicates,
/// grouping, aggregates, threshold, selection mode, statistics epoch) is
/// part of it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanFingerprint {
    canonical: String,
    /// Exact bits of the effective threshold — fingerprints must not
    /// merge thresholds that merely round alike.
    threshold_bits: u64,
    /// The effective plan-selection mode the plan was chosen under.
    /// Quantile and expected-penalty mode can pick different plans from
    /// identical statistics, so the mode is part of the identity — a
    /// penalty-mode session must never be served a quantile-mode plan.
    selection: PlanSelection,
    epoch: u64,
}

impl PlanFingerprint {
    /// Fingerprints a query priced at `threshold` (overridden by the
    /// query's own hint, mirroring [`crate::Optimizer::optimize`])
    /// against statistics epoch `epoch`, under the default (quantile)
    /// selection mode unless the query overrides it.
    pub fn of(query: &Query, threshold: ConfidenceThreshold, epoch: u64) -> Self {
        Self::of_with(query, threshold, epoch, PlanSelection::default())
    }

    /// [`of`](Self::of) with a caller-supplied default selection mode
    /// (the engine's session-wide mode); the query's own
    /// [`Query::selection`] override still wins, mirroring
    /// [`crate::Optimizer::optimize_with`].
    pub fn of_with(
        query: &Query,
        threshold: ConfidenceThreshold,
        epoch: u64,
        default_selection: PlanSelection,
    ) -> Self {
        let effective = query.hint.unwrap_or(threshold);
        let selection = query.selection.unwrap_or(default_selection);
        let mut tables: Vec<&str> = query.tables.iter().map(String::as_str).collect();
        tables.sort_unstable();
        // Same rendering as the feedback store's canonical key: sorted
        // `"table:expr"` strings, so the two canonicalizations agree.
        let mut preds: Vec<String> = query
            .predicates
            .iter()
            .map(|(t, e)| format!("{t}:{e}"))
            .collect();
        preds.sort_unstable();
        // Grouping and aggregate order affect the output schema, so they
        // enter the fingerprint in declaration order.
        let canonical = format!(
            "{tables:?}|{preds:?}|group={:?}|aggs={:?}",
            query.group_by, query.aggregates
        );
        Self {
            canonical,
            threshold_bits: effective.value().to_bits(),
            selection,
            epoch,
        }
    }

    /// The statistics epoch this fingerprint was formed against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// A point-in-time snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required fresh planning.
    pub misses: u64,
    /// Entries evicted because an observed selectivity drifted past the
    /// bound relative to what the plan was priced at.
    pub drift_evictions: u64,
    /// Entries dropped by statistics-epoch invalidation (plus explicit
    /// `clear`).
    pub epoch_invalidations: u64,
    /// Plans currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} drift_evictions={} epoch_invalidations={} entries={} (hit rate {:.1}%)",
            self.hits,
            self.misses,
            self.drift_evictions,
            self.epoch_invalidations,
            self.entries,
            self.hit_rate() * 100.0
        )
    }
}

/// One cached plan plus the per-request selectivities it was priced at —
/// the reference point drift is measured against.
struct CacheEntry {
    planned: Arc<PlannedQuery>,
    /// Feedback canonical key → estimated selectivity (`est_rows /
    /// root_rows`) for every annotated node with predicates.
    priced_at: HashMap<String, f64>,
    /// Every base table the plan reads (union of its annotations' table
    /// lists, sorted), so a per-table statistics refresh can evict
    /// exactly the plans whose pricing depended on the refreshed table.
    tables: Vec<String>,
}

#[derive(Default)]
struct Inner {
    plans: HashMap<PlanFingerprint, CacheEntry>,
    /// Reverse index: feedback key → fingerprints priced with it, so an
    /// observation checks only the plans it can actually invalidate.
    by_key: HashMap<String, HashSet<PlanFingerprint>>,
}

/// The shared, thread-safe plan cache.  See the module docs for the
/// lifecycle; construct one per database handle and share it via `Arc`.
pub struct PlanCache {
    inner: RwLock<Inner>,
    drift_bound: f64,
    hits: AtomicU64,
    misses: AtomicU64,
    drift_evictions: AtomicU64,
    epoch_invalidations: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(DEFAULT_DRIFT_BOUND)
    }
}

impl PlanCache {
    /// Creates an empty cache that evicts on observed q-error greater
    /// than `drift_bound` (must be ≥ 1; 1 evicts on any disagreement).
    pub fn new(drift_bound: f64) -> Self {
        assert!(
            drift_bound >= 1.0 && drift_bound.is_finite(),
            "drift bound {drift_bound} must be a finite q-error ≥ 1"
        );
        Self {
            inner: RwLock::new(Inner::default()),
            drift_bound,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            drift_evictions: AtomicU64::new(0),
            epoch_invalidations: AtomicU64::new(0),
        }
    }

    /// The configured drift bound (q-error).
    pub fn drift_bound(&self) -> f64 {
        self.drift_bound
    }

    fn read(&self) -> RwLockReadGuard<'_, Inner> {
        // Same recovery rationale as the feedback store: each write
        // leaves the maps consistent, so poisoning is survivable.
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a fingerprint, counting the hit or miss.  The returned
    /// plan is shared — callers clone nodes out of it as needed.
    pub fn get(&self, fingerprint: &PlanFingerprint) -> Option<Arc<PlannedQuery>> {
        let found = self
            .read()
            .plans
            .get(fingerprint)
            .map(|e| Arc::clone(&e.planned));
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts (or replaces) a plan, recording the selectivity each
    /// annotated estimation request was priced at so later observations
    /// can be checked for drift.  Returns the shared handle.
    ///
    /// Two threads that race on the same cold fingerprint both plan and
    /// both insert; planning is deterministic, so the second insert
    /// replaces an identical entry and either handle is correct.
    pub fn insert(&self, fingerprint: PlanFingerprint, planned: PlannedQuery) -> Arc<PlannedQuery> {
        self.insert_shared(fingerprint, Arc::new(planned))
    }

    /// [`insert`](Self::insert) for a plan that is already shared.  The
    /// query service plans *before* executing but caches only *after* a
    /// successful (non-cancelled) execution, by which point it holds an
    /// `Arc` — this entry point avoids cloning the whole plan back out.
    pub fn insert_shared(
        &self,
        fingerprint: PlanFingerprint,
        planned: Arc<PlannedQuery>,
    ) -> Arc<PlannedQuery> {
        let mut priced_at = HashMap::new();
        let mut entry_tables: Vec<String> = Vec::new();
        for ann in planned.node_annotations.iter().flatten() {
            for t in &ann.tables {
                if !entry_tables.contains(t) {
                    entry_tables.push(t.clone());
                }
            }
            if ann.predicates.is_empty() || ann.root_rows <= 0.0 {
                continue;
            }
            let tables: Vec<&str> = ann.tables.iter().map(String::as_str).collect();
            let predicates: Vec<(&str, &rqo_expr::Expr)> = ann
                .predicates
                .iter()
                .map(|(t, e)| (t.as_str(), e))
                .collect();
            let key = rqo_core::FeedbackStore::canonical_key(&tables, &predicates);
            priced_at.insert(key, (ann.est_rows / ann.root_rows).clamp(0.0, 1.0));
        }
        entry_tables.sort_unstable();

        let mut inner = self.write();
        // Replacing an entry must drop its old reverse-index edges first,
        // or keys priced only by the displaced plan would dangle.
        if let Some(old) = inner.plans.remove(&fingerprint) {
            unindex(&mut inner, &fingerprint, &old);
        }
        for key in priced_at.keys() {
            inner
                .by_key
                .entry(key.clone())
                .or_default()
                .insert(fingerprint.clone());
        }
        inner.plans.insert(
            fingerprint,
            CacheEntry {
                planned: Arc::clone(&planned),
                priced_at,
                tables: entry_tables,
            },
        );
        planned
    }

    /// Reacts to an observed selectivity for one estimation-request key
    /// (canonical [`rqo_core::FeedbackStore`] form): evicts every cached
    /// plan whose priced-at selectivity for that key q-errs beyond the
    /// drift bound, and returns the evicted fingerprints.
    pub fn observe(&self, key: &str, observed: f64) -> Vec<PlanFingerprint> {
        let mut inner = self.write();
        let Some(holders) = inner.by_key.get(key) else {
            return Vec::new();
        };
        let drifted: Vec<PlanFingerprint> = holders
            .iter()
            .filter(|fp| {
                inner
                    .plans
                    .get(fp)
                    .and_then(|e| e.priced_at.get(key))
                    .is_some_and(|est| q_error(*est, observed) > self.drift_bound)
            })
            .cloned()
            .collect();
        for fp in &drifted {
            if let Some(entry) = inner.plans.remove(fp) {
                unindex(&mut inner, fp, &entry);
                self.drift_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        drifted
    }

    /// Eagerly drops every entry fingerprinted against an epoch older
    /// than `epoch` (they are already unreachable — new fingerprints
    /// embed the new epoch), returning how many were dropped.
    pub fn invalidate_epochs_before(&self, epoch: u64) -> usize {
        let mut inner = self.write();
        let stale: Vec<PlanFingerprint> = inner
            .plans
            .keys()
            .filter(|fp| fp.epoch < epoch)
            .cloned()
            .collect();
        for fp in &stale {
            if let Some(entry) = inner.plans.remove(fp) {
                unindex(&mut inner, fp, &entry);
            }
        }
        self.epoch_invalidations
            .fetch_add(stale.len() as u64, Ordering::Relaxed);
        stale.len()
    }

    /// Drops every cached plan that reads `table` (counted under
    /// `epoch_invalidations`), returning how many were dropped.  Plans
    /// over other tables stay warm — this is the partial-refresh
    /// counterpart of [`invalidate_epochs_before`]
    /// (Self::invalidate_epochs_before): a per-table statistics refresh
    /// makes only the refreshed table's plans stale, and the per-table
    /// epoch inside new fingerprints already keeps them from being hit
    /// again, so the eager drop here is pure housekeeping.
    pub fn invalidate_table(&self, table: &str) -> usize {
        let mut inner = self.write();
        let stale: Vec<PlanFingerprint> = inner
            .plans
            .iter()
            .filter(|(_, e)| e.tables.iter().any(|t| t == table))
            .map(|(fp, _)| fp.clone())
            .collect();
        for fp in &stale {
            if let Some(entry) = inner.plans.remove(fp) {
                unindex(&mut inner, fp, &entry);
            }
        }
        self.epoch_invalidations
            .fetch_add(stale.len() as u64, Ordering::Relaxed);
        stale.len()
    }

    /// An empty cache with a different drift bound that **carries this
    /// cache's lifetime counters forward**.  Entries are dropped — their
    /// keep/evict decisions were made under the old bound and would be
    /// wrong under the new one — and counted as epoch invalidations, but
    /// the hit/miss/eviction history survives, so reconfiguring the bound
    /// mid-session no longer silently zeroes the cache's observability.
    pub fn rebuilt_with_drift_bound(&self, drift_bound: f64) -> Self {
        let fresh = Self::new(drift_bound);
        fresh
            .hits
            .store(self.hits.load(Ordering::Relaxed), Ordering::Relaxed);
        fresh
            .misses
            .store(self.misses.load(Ordering::Relaxed), Ordering::Relaxed);
        fresh.drift_evictions.store(
            self.drift_evictions.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        fresh.epoch_invalidations.store(
            self.epoch_invalidations.load(Ordering::Relaxed) + self.len() as u64,
            Ordering::Relaxed,
        );
        fresh
    }

    /// Drops every entry (counted under `epoch_invalidations`).
    pub fn clear(&self) {
        let mut inner = self.write();
        let n = inner.plans.len() as u64;
        inner.plans.clear();
        inner.by_key.clear();
        self.epoch_invalidations.fetch_add(n, Ordering::Relaxed);
    }

    /// Plans currently cached.
    pub fn len(&self) -> usize {
        self.read().plans.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the fingerprint is currently cached (no hit/miss
    /// accounting — observability and tests).
    pub fn contains(&self, fingerprint: &PlanFingerprint) -> bool {
        self.read().plans.contains_key(fingerprint)
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            drift_evictions: self.drift_evictions.load(Ordering::Relaxed),
            epoch_invalidations: self.epoch_invalidations.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Removes one entry's reverse-index edges (after the entry itself has
/// been pulled out of `plans`).
fn unindex(inner: &mut Inner, fingerprint: &PlanFingerprint, entry: &CacheEntry) {
    for key in entry.priced_at.keys() {
        if let Some(set) = inner.by_key.get_mut(key) {
            set.remove(fingerprint);
            if set.is_empty() {
                inner.by_key.remove(key);
            }
        }
    }
}

/// q-error between two selectivities, floored so a zero estimate against
/// a positive observation reads as maximal drift rather than NaN.
fn q_error(a: f64, b: f64) -> f64 {
    let a = a.max(SELECTIVITY_FLOOR);
    let b = b.max(SELECTIVITY_FLOOR);
    (a / b).max(b / a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::NodeAnnotation;
    use rqo_exec::PhysicalPlan;
    use rqo_expr::Expr;

    fn threshold() -> ConfidenceThreshold {
        ConfidenceThreshold::new(0.5)
    }

    fn query(table: &str, lt: i64) -> Query {
        Query::over(&[table]).filter(table, Expr::col("x").lt(Expr::lit(lt)))
    }

    /// A minimal planned query with one annotated node priced at
    /// `est_rows` out of `root_rows` for the query's own request.
    fn planned(q: &Query, est_rows: f64, root_rows: f64) -> PlannedQuery {
        let (table, expr) = &q.predicates[0];
        PlannedQuery {
            plan: PhysicalPlan::SeqScan {
                table: table.clone(),
                predicate: Some(expr.clone()),
            },
            estimated_cost_ms: est_rows,
            estimated_rows: est_rows,
            estimator_calls: 1,
            node_annotations: vec![Some(NodeAnnotation {
                est_rows,
                root_rows,
                tables: vec![table.clone()],
                predicates: vec![(table.clone(), expr.clone())],
            })],
            selection: PlanSelection::Quantile,
            penalty: None,
        }
    }

    fn key_of(q: &Query) -> String {
        let (table, expr) = &q.predicates[0];
        rqo_core::FeedbackStore::canonical_key(&[table], &[(table.as_str(), expr)])
    }

    #[test]
    fn fingerprint_is_invariant_to_declaration_order() {
        let a = Expr::col("x").lt(Expr::lit(10i64));
        let b = Expr::col("y").gt(Expr::lit(3i64));
        let fwd = Query::over(&["t", "u"])
            .filter("t", a.clone())
            .filter("u", b.clone());
        let rev = Query::over(&["u", "t"]).filter("u", b).filter("t", a);
        assert_eq!(
            PlanFingerprint::of(&fwd, threshold(), 0),
            PlanFingerprint::of(&rev, threshold(), 0)
        );
    }

    #[test]
    fn fingerprint_separates_threshold_epoch_hint_and_shape() {
        let q = query("t", 10);
        let base = PlanFingerprint::of(&q, threshold(), 0);
        assert_ne!(
            base,
            PlanFingerprint::of(&q, ConfidenceThreshold::new(0.95), 0),
            "threshold is part of the identity"
        );
        assert_ne!(
            base,
            PlanFingerprint::of(&q, threshold(), 1),
            "statistics epoch is part of the identity"
        );
        let hinted = q.clone().with_hint(ConfidenceThreshold::new(0.95));
        assert_eq!(
            PlanFingerprint::of(&hinted, threshold(), 0),
            PlanFingerprint::of(&q, ConfidenceThreshold::new(0.95), 0),
            "a hint and an equal system threshold price identically"
        );
        assert_ne!(
            base,
            PlanFingerprint::of(&query("t", 11), threshold(), 0),
            "predicate constants are part of the identity"
        );
    }

    #[test]
    fn fingerprint_separates_selection_mode() {
        // Regression: before the selection mode entered the fingerprint,
        // a penalty-mode session could be served a cached quantile plan
        // (and vice versa) for the same query/threshold/epoch.
        let q = query("t", 10);
        let base = PlanFingerprint::of(&q, threshold(), 0);
        assert_ne!(
            base,
            PlanFingerprint::of_with(&q, threshold(), 0, PlanSelection::ExpectedPenalty),
            "selection mode is part of the identity"
        );
        // A per-query override and an equal engine-wide default agree.
        let overridden = q.clone().with_selection(PlanSelection::ExpectedPenalty);
        assert_eq!(
            PlanFingerprint::of(&overridden, threshold(), 0),
            PlanFingerprint::of_with(&q, threshold(), 0, PlanSelection::ExpectedPenalty),
        );
        // Quantile default round-trips through `of`.
        assert_eq!(
            base,
            PlanFingerprint::of_with(&q, threshold(), 0, PlanSelection::Quantile),
        );
    }

    #[test]
    fn get_insert_counts_hits_and_misses() {
        let cache = PlanCache::default();
        let q = query("t", 10);
        let fp = PlanFingerprint::of(&q, threshold(), 0);
        assert!(cache.get(&fp).is_none());
        let inserted = cache.insert(fp.clone(), planned(&q, 10.0, 100.0));
        let hit = cache.get(&fp).expect("cached");
        assert!(Arc::ptr_eq(&inserted, &hit), "hits share the same plan");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drift_eviction_is_exactly_the_overlapping_fingerprints() {
        let cache = PlanCache::default();
        let qa = query("t", 10);
        let qb = query("t", 99);
        let fpa = PlanFingerprint::of(&qa, threshold(), 0);
        let fpb = PlanFingerprint::of(&qb, threshold(), 0);
        cache.insert(fpa.clone(), planned(&qa, 10.0, 100.0)); // priced at 0.1
        cache.insert(fpb.clone(), planned(&qb, 50.0, 100.0)); // priced at 0.5

        // In-bound observation for qa's key: nothing evicted.
        assert!(cache.observe(&key_of(&qa), 0.15).is_empty());
        assert_eq!(cache.len(), 2);

        // Drifted observation for qa's key: only qa's fingerprint goes.
        let evicted = cache.observe(&key_of(&qa), 0.9);
        assert_eq!(evicted, vec![fpa.clone()]);
        assert!(!cache.contains(&fpa) && cache.contains(&fpb));
        assert_eq!(cache.stats().drift_evictions, 1);

        // A key no cached plan was priced with is a no-op.
        assert!(cache.observe("unknown-key", 0.5).is_empty());
    }

    #[test]
    fn zero_estimate_drifts_against_any_positive_observation() {
        let cache = PlanCache::default();
        let q = query("t", 10);
        let fp = PlanFingerprint::of(&q, threshold(), 0);
        cache.insert(fp.clone(), planned(&q, 0.0, 100.0));
        assert_eq!(cache.observe(&key_of(&q), 0.005), vec![fp]);
    }

    #[test]
    fn epoch_invalidation_drops_only_older_epochs() {
        let cache = PlanCache::default();
        let q0 = query("t", 10);
        let q1 = query("t", 20);
        cache.insert(
            PlanFingerprint::of(&q0, threshold(), 0),
            planned(&q0, 1.0, 10.0),
        );
        cache.insert(
            PlanFingerprint::of(&q1, threshold(), 1),
            planned(&q1, 1.0, 10.0),
        );
        assert_eq!(cache.invalidate_epochs_before(1), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&PlanFingerprint::of(&q1, threshold(), 1)));
        assert_eq!(cache.stats().epoch_invalidations, 1);

        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().epoch_invalidations, 2);
    }

    #[test]
    fn invalidate_table_drops_only_plans_reading_it() {
        let cache = PlanCache::default();
        let qt = query("t", 10);
        let qu = query("u", 10);
        let fpt = PlanFingerprint::of(&qt, threshold(), 0);
        let fpu = PlanFingerprint::of(&qu, threshold(), 0);
        cache.insert(fpt.clone(), planned(&qt, 10.0, 100.0));
        cache.insert(fpu.clone(), planned(&qu, 10.0, 100.0));
        assert_eq!(cache.invalidate_table("t"), 1);
        assert!(!cache.contains(&fpt), "t's plan is gone");
        assert!(cache.contains(&fpu), "u's plan survives");
        assert_eq!(cache.stats().epoch_invalidations, 1);
        // Unknown table: no-op.
        assert_eq!(cache.invalidate_table("nope"), 0);
        // The dropped plan's reverse-index edges went with it.
        assert!(cache.observe(&key_of(&qt), 0.9).is_empty());
    }

    #[test]
    fn rebuilt_with_drift_bound_carries_counters() {
        let cache = PlanCache::default();
        let q = query("t", 10);
        let fp = PlanFingerprint::of(&q, threshold(), 0);
        assert!(cache.get(&fp).is_none()); // one miss
        cache.insert(fp.clone(), planned(&q, 10.0, 100.0));
        cache.get(&fp).expect("hit"); // one hit
        cache.observe(&key_of(&q), 0.9); // one drift eviction
        cache.insert(fp.clone(), planned(&q, 10.0, 100.0));

        let rebuilt = cache.rebuilt_with_drift_bound(5.0);
        assert_eq!(rebuilt.drift_bound(), 5.0);
        assert!(rebuilt.is_empty(), "entries do not survive a bound change");
        let stats = rebuilt.stats();
        // History carried forward; the dropped entry is accounted for.
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.drift_evictions, 1);
        assert_eq!(stats.epoch_invalidations, 1);
    }

    #[test]
    fn replacing_an_entry_reindexes_cleanly() {
        let cache = PlanCache::default();
        let q = query("t", 10);
        let fp = PlanFingerprint::of(&q, threshold(), 0);
        cache.insert(fp.clone(), planned(&q, 10.0, 100.0));
        // Re-insert priced differently (e.g. re-planned with feedback).
        cache.insert(fp.clone(), planned(&q, 20.0, 100.0));
        assert_eq!(cache.len(), 1);
        // Drift is judged against the *replacement* pricing.
        assert!(cache.observe(&key_of(&q), 0.3).is_empty());
        assert_eq!(cache.observe(&key_of(&q), 0.9), vec![fp]);
    }

    #[test]
    #[should_panic(expected = "must be a finite q-error")]
    fn rejects_sub_unit_drift_bound() {
        PlanCache::new(0.5);
    }
}
