//! Logical queries: the paper's SPJ-with-FK-joins model plus aggregation.

use rqo_core::{ConfidenceThreshold, PlanSelection};
use rqo_exec::AggExpr;
use rqo_expr::Expr;

/// A logical query: a set of tables implicitly joined along declared
/// foreign keys, per-table selection predicates, and an optional aggregate
/// on top.
///
/// Join predicates are not written explicitly — the optimizer derives them
/// from the catalog's FK edges between the listed tables, matching the
/// paper's assumption that all joins are foreign-key joins over an acyclic
/// join graph.
///
/// Column references in `group_by` and `aggregates` are resolved by bare
/// name against the join output.  When two joined tables share a column
/// name (e.g. `d_attr` across several dimension tables), the colliding
/// columns are disambiguated with `l.`/`r.` prefixes and a bare reference
/// to them fails at execution; qualified output references are future
/// work — per-table *predicates* are unaffected, since they bind against
/// their own table's schema before the join.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Tables referenced by the query.
    pub tables: Vec<String>,
    /// Local predicates, attached to the table they reference.
    pub predicates: Vec<(String, Expr)>,
    /// Grouping columns (empty = scalar aggregate or plain SPJ).
    pub group_by: Vec<String>,
    /// Aggregates (empty = return the join result itself).
    pub aggregates: Vec<AggExpr>,
    /// Per-query robustness hint (paper §6.2.5), overriding the
    /// system-wide confidence threshold for this query only.
    pub hint: Option<ConfidenceThreshold>,
    /// Per-query plan-selection mode, overriding the system-wide mode
    /// for this query only (`None` = inherit).
    pub selection: Option<PlanSelection>,
}

impl Query {
    /// Starts a query over the given tables.
    pub fn over(tables: &[&str]) -> Self {
        assert!(!tables.is_empty(), "query needs at least one table");
        Self {
            tables: tables.iter().map(|t| t.to_string()).collect(),
            predicates: Vec::new(),
            group_by: Vec::new(),
            aggregates: Vec::new(),
            hint: None,
            selection: None,
        }
    }

    /// Adds a local predicate on one table.  Multiple predicates on the
    /// same table are ANDed.
    ///
    /// # Panics
    ///
    /// Panics when the table is not part of the query.
    pub fn filter(mut self, table: &str, predicate: Expr) -> Self {
        assert!(
            self.tables.iter().any(|t| t == table),
            "filter on {table:?} which is not in the query"
        );
        if let Some((_, existing)) = self.predicates.iter_mut().find(|(t, _)| t == table) {
            let combined = existing.clone().and(predicate);
            *existing = combined;
        } else {
            self.predicates.push((table.to_string(), predicate));
        }
        self
    }

    /// Adds an aggregate output.
    pub fn aggregate(mut self, agg: AggExpr) -> Self {
        self.aggregates.push(agg);
        self
    }

    /// Sets grouping columns.
    pub fn group(mut self, columns: &[&str]) -> Self {
        self.group_by = columns.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Attaches a per-query confidence-threshold hint.
    pub fn with_hint(mut self, threshold: ConfidenceThreshold) -> Self {
        self.hint = Some(threshold);
        self
    }

    /// Attaches a per-query plan-selection mode.
    pub fn with_selection(mut self, selection: PlanSelection) -> Self {
        self.selection = Some(selection);
        self
    }

    /// The predicate attached to a table, if any.
    pub fn predicate_for(&self, table: &str) -> Option<&Expr> {
        self.predicates
            .iter()
            .find(|(t, _)| t == table)
            .map(|(_, e)| e)
    }

    /// Table names as `&str`s (estimator request shape).
    pub fn table_refs(&self) -> Vec<&str> {
        self.tables.iter().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let q = Query::over(&["lineitem", "orders"])
            .filter("lineitem", Expr::col("l_quantity").gt(Expr::lit(5.0)))
            .filter("lineitem", Expr::col("l_quantity").lt(Expr::lit(10.0)))
            .filter("orders", Expr::col("o_totalprice").gt(Expr::lit(0.0)))
            .aggregate(AggExpr::count_star("n"))
            .group(&["l_partkey"])
            .with_hint(ConfidenceThreshold::new(0.95))
            .with_selection(PlanSelection::ExpectedPenalty);
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.predicates.len(), 2); // lineitem preds merged
        let li = q.predicate_for("lineitem").unwrap();
        assert_eq!(li.conjuncts().len(), 2);
        assert!(q.predicate_for("part").is_none());
        assert_eq!(q.group_by, vec!["l_partkey"]);
        assert_eq!(q.hint.unwrap().percent(), 95.0);
        assert_eq!(q.selection, Some(PlanSelection::ExpectedPenalty));
        assert_eq!(q.table_refs(), vec!["lineitem", "orders"]);
    }

    #[test]
    #[should_panic(expected = "not in the query")]
    fn filter_requires_listed_table() {
        Query::over(&["a"]).filter("b", Expr::col("x").eq(Expr::lit(1i64)));
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn rejects_empty_table_list() {
        Query::over(&[]);
    }
}
