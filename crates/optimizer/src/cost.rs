//! The optimizer's cost model.
//!
//! Formulas mirror the executor's charging rules
//! ([`rqo_exec::scan`]/[`join`](rqo_exec::join)/[`agg`](rqo_exec::agg))
//! evaluated at *estimated* cardinalities, so a plan's estimated cost at
//! the true selectivity equals its executed cost up to the page-coalescing
//! approximation (Cardenas's formula here vs. exact distinct-page counting
//! there).  All costs are in simulated milliseconds.
//!
//! Crucially, every formula is monotone non-decreasing in its cardinality
//! arguments.  That is the property (§3.1.1, footnote 2) that lets the
//! robust estimator hand the optimizer a selectivity *percentile* and get
//! back a cost *percentile* without any distribution plumbing.

use rqo_storage::{Catalog, CostParams};

/// Expected number of distinct pages touched when fetching `k` uniformly
/// scattered rows from a table of `pages` pages (Cardenas's formula).
///
/// At low selectivity this is ≈ `k` (one random I/O per row — the paper's
/// model); at high selectivity it saturates at `pages`.
pub fn cardenas_pages(pages: f64, k: f64) -> f64 {
    if pages <= 0.0 || k <= 0.0 {
        return 0.0;
    }
    if k / pages > 30.0 {
        return pages; // avoid pow underflow; fully saturated
    }
    pages * (1.0 - (1.0 - 1.0 / pages).powf(k))
}

/// The cost model, bound to a catalog (for table sizes) and cost
/// parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    catalog: &'a Catalog,
    params: &'a CostParams,
}

impl<'a> CostModel<'a> {
    /// Creates the model.
    pub fn new(catalog: &'a Catalog, params: &'a CostParams) -> Self {
        Self { catalog, params }
    }

    /// The cost parameters in use.
    pub fn params(&self) -> &CostParams {
        self.params
    }

    /// Number of rows in a table.
    pub fn table_rows(&self, table: &str) -> f64 {
        self.catalog.table(table).expect("table exists").num_rows() as f64
    }

    /// Number of data pages of a table.
    pub fn table_pages(&self, table: &str) -> f64 {
        let t = self.catalog.table(table).expect("table exists");
        self.params.data_pages(t.num_rows(), t.row_width_bytes()) as f64
    }

    /// Sequential scan: all pages + per-row CPU.  Independent of
    /// selectivity — the "stable" plan of the paper's running example.
    pub fn seq_scan_ms(&self, table: &str) -> f64 {
        self.table_pages(table) * self.params.seq_page_ms
            + self.table_rows(table) * self.params.cpu_op_ms
    }

    /// Partition-wise sequential scan over the surviving partitions only:
    /// pages per merged run of adjacent survivors + per-surviving-row CPU.
    /// Mirrors [`rqo_exec::surviving_spans`]'s charging exactly, so the
    /// priced cost of a pruned scan equals its executed cost — and when
    /// every partition survives it collapses to [`Self::seq_scan_ms`].
    pub fn partitioned_scan_ms(&self, table: &str, partitions: &[usize]) -> f64 {
        let t = self.catalog.table(table).expect("table exists");
        let spans = rqo_exec::surviving_spans(self.catalog, table, partitions);
        let rows: usize = spans.iter().map(|s| s.len()).sum();
        let pages: f64 = spans
            .iter()
            .map(|s| self.params.data_pages(s.len(), t.row_width_bytes()) as f64)
            .sum();
        pages * self.params.seq_page_ms + rows as f64 * self.params.cpu_op_ms
    }

    /// Rows in the surviving partitions of a partitioned table — the
    /// pruned scan's input cardinality.
    pub fn partition_rows(&self, table: &str, partitions: &[usize]) -> f64 {
        rqo_exec::surviving_spans(self.catalog, table, partitions)
            .iter()
            .map(|s| s.len() as f64)
            .sum()
    }

    /// One index-range resolution: B-tree descend + leaf pages + per-entry
    /// CPU.
    pub fn index_range_ms(&self, entries: f64) -> f64 {
        let leaf_pages = (entries * self.params.index_entry_bytes as f64
            / self.params.page_bytes as f64)
            .ceil()
            .max(1.0);
        self.params.random_io_ms
            + leaf_pages * self.params.seq_page_ms
            + entries * self.params.cpu_op_ms
    }

    /// Fetching `k` scattered rows from a table by RID: random I/Os on the
    /// expected distinct pages + per-row CPU.
    pub fn fetch_ms(&self, table: &str, k: f64) -> f64 {
        cardenas_pages(self.table_pages(table), k) * self.params.random_io_ms
            + k * self.params.cpu_op_ms
    }

    /// Index seek: one range + fetch + residual filter.
    pub fn index_seek_ms(&self, table: &str, entries: f64) -> f64 {
        self.index_range_ms(entries)
            + self.fetch_ms(table, entries)
            + entries * self.params.cpu_op_ms
    }

    /// Index intersection: every range + RID-merge CPU + fetch of the
    /// intersection + residual filter.  The ranges' (constant, marginal)
    /// entry counts form the paper's `f₂`; the fetch of `result_rows` is
    /// its `v₂ · x`.
    pub fn index_intersection_ms(&self, table: &str, entries: &[f64], result_rows: f64) -> f64 {
        let ranges: f64 = entries.iter().map(|&e| self.index_range_ms(e)).sum();
        let merge: f64 = entries.iter().sum::<f64>() * self.params.cpu_op_ms;
        ranges + merge + self.fetch_ms(table, result_rows) + result_rows * self.params.cpu_op_ms
    }

    /// Hash join over already-produced inputs.
    pub fn hash_join_ms(&self, build_rows: f64, probe_rows: f64, out_rows: f64) -> f64 {
        build_rows * self.params.hash_build_ms
            + probe_rows * self.params.hash_probe_ms
            + out_rows * self.params.cpu_op_ms
    }

    /// Merge join over already-produced inputs; unsorted sides pay an
    /// in-memory sort.
    pub fn merge_join_ms(
        &self,
        left_rows: f64,
        right_rows: f64,
        out_rows: f64,
        left_sorted: bool,
        right_sorted: bool,
    ) -> f64 {
        let sort = |n: f64, sorted: bool| {
            if sorted || n < 2.0 {
                0.0
            } else {
                n * n.log2().ceil() * self.params.cpu_op_ms
            }
        };
        sort(left_rows, left_sorted)
            + sort(right_rows, right_sorted)
            + (left_rows + right_rows + out_rows) * self.params.cpu_op_ms
    }

    /// Indexed nested-loops join: one descend per outer row plus the
    /// scattered fetch of every matching inner row (`fetched_rows`,
    /// *before* the inner residual filter).
    pub fn indexed_nl_join_ms(&self, outer_rows: f64, fetched_rows: f64) -> f64 {
        outer_rows * self.params.random_io_ms
            + fetched_rows * (self.params.random_io_ms + 2.0 * self.params.cpu_op_ms)
    }

    /// One star-semijoin leg: dimension scan + one index descend per
    /// selected key + leaf pages for the touched entries.
    pub fn semijoin_leg_ms(&self, dim_table: &str, selected_keys: f64, entries: f64) -> f64 {
        let leaf_pages = (entries * self.params.index_entry_bytes as f64
            / self.params.page_bytes as f64)
            .ceil()
            .max(1.0);
        self.seq_scan_ms(dim_table)
            + selected_keys * self.params.random_io_ms
            + leaf_pages * self.params.seq_page_ms
            + 2.0 * entries * self.params.cpu_op_ms
    }

    /// Star-semijoin completion: RID intersection + fetch of matching fact
    /// rows.
    pub fn semijoin_finish_ms(&self, fact_table: &str, total_entries: f64, matched: f64) -> f64 {
        total_entries * self.params.cpu_op_ms + self.fetch_ms(fact_table, matched)
    }

    /// Hash aggregation.
    pub fn aggregate_ms(&self, input_rows: f64, groups: f64) -> f64 {
        input_rows * self.params.hash_build_ms + groups * self.params.cpu_op_ms
    }

    /// In-memory filter/projection of an intermediate result.
    pub fn per_row_ms(&self, rows: f64) -> f64 {
        rows * self.params.cpu_op_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_storage::{DataType, Schema, TableBuilder, Value};

    fn catalog(rows: usize) -> Catalog {
        let mut b = TableBuilder::new(
            "t",
            Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]),
            rows,
        );
        for i in 0..rows as i64 {
            b.push_row(&[Value::Int(i), Value::Int(i % 10)]);
        }
        let mut cat = Catalog::new();
        cat.add_table(b.finish()).unwrap();
        cat
    }

    #[test]
    fn cardenas_limits() {
        assert_eq!(cardenas_pages(100.0, 0.0), 0.0);
        assert_eq!(cardenas_pages(0.0, 10.0), 0.0);
        // One row: exactly one page.
        assert!((cardenas_pages(100.0, 1.0) - 1.0).abs() < 1e-9);
        // Few rows over many pages: ≈ one page per row.
        assert!((cardenas_pages(1e6, 100.0) - 100.0).abs() < 0.1);
        // Many rows: saturates at the page count.
        assert!((cardenas_pages(100.0, 1e6) - 100.0).abs() < 1e-6);
        // Monotone in k.
        let mut prev = 0.0;
        for k in [1.0, 10.0, 100.0, 1000.0, 10_000.0] {
            let v = cardenas_pages(500.0, k);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn seq_scan_flat_index_fetch_linear() {
        let cat = catalog(100_000);
        let params = CostParams::default();
        let m = CostModel::new(&cat, &params);
        let scan = m.seq_scan_ms("t");
        // Sequential scan cost does not depend on selectivity at all; the
        // intersection cost grows linearly in the result.
        let low = m.index_intersection_ms("t", &[3000.0, 3000.0], 10.0);
        let high = m.index_intersection_ms("t", &[3000.0, 3000.0], 2000.0);
        assert!(
            low < scan,
            "low-sel intersection {low} should beat scan {scan}"
        );
        assert!(
            high > scan,
            "high-sel intersection {high} should lose to scan {scan}"
        );
        assert!(high > low);
    }

    #[test]
    fn crossover_fraction_matches_paper_ballpark() {
        // With default parameters the scan/intersection crossover must sit
        // in the paper's sub-percent region.
        let cat = catalog(100_000);
        let params = CostParams::default();
        let m = CostModel::new(&cat, &params);
        let scan = m.seq_scan_ms("t");
        let entries = [3000.0, 3000.0];
        let mut crossover = None;
        for permille in 1..50 {
            let rows = 100_000.0 * permille as f64 / 10_000.0; // 0.01% steps
            if m.index_intersection_ms("t", &entries, rows) > scan {
                crossover = Some(permille as f64 / 10_000.0);
                break;
            }
        }
        let c = crossover.expect("crossover in range");
        assert!(
            (0.0005..0.004).contains(&c),
            "crossover fraction {c} outside the paper's ballpark"
        );
    }

    #[test]
    fn monotonicity_in_cardinalities() {
        let cat = catalog(10_000);
        let params = CostParams::default();
        let m = CostModel::new(&cat, &params);
        for k in 1..20 {
            let a = k as f64 * 50.0;
            let b = a + 50.0;
            assert!(m.fetch_ms("t", a) <= m.fetch_ms("t", b));
            assert!(m.index_seek_ms("t", a) <= m.index_seek_ms("t", b));
            assert!(m.hash_join_ms(a, 100.0, 10.0) <= m.hash_join_ms(b, 100.0, 10.0));
            assert!(m.hash_join_ms(100.0, a, 10.0) <= m.hash_join_ms(100.0, b, 10.0));
            assert!(
                m.merge_join_ms(a, 100.0, 10.0, false, true)
                    <= m.merge_join_ms(b, 100.0, 10.0, false, true)
            );
            assert!(m.indexed_nl_join_ms(a, 100.0) <= m.indexed_nl_join_ms(b, 100.0));
            assert!(m.aggregate_ms(a, 5.0) <= m.aggregate_ms(b, 5.0));
        }
    }

    #[test]
    fn merge_join_sort_penalty() {
        let cat = catalog(100);
        let params = CostParams::default();
        let m = CostModel::new(&cat, &params);
        let sorted = m.merge_join_ms(10_000.0, 10_000.0, 100.0, true, true);
        let unsorted = m.merge_join_ms(10_000.0, 10_000.0, 100.0, false, false);
        assert!(unsorted > 2.0 * sorted);
    }
}
