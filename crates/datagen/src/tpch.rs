//! TPC-H-like generator (`orders`, `lineitem`, `part`).
//!
//! Proportions follow TPC-H at the configured scale factor: 1,500,000
//! orders and ≈6,000,000 lineitems per unit of scale, 200,000 parts.  Only
//! the columns exercised by the paper's experiments are materialized (plus
//! a few realistic extras used by the examples); this keeps memory linear
//! in what the experiments actually touch.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rqo_storage::{days_from_civil, Catalog, DataType, Schema, Table, TableBuilder, Value};

/// First order date in the generated range (TPC-H's STARTDATE).
pub const MIN_ORDER_DATE: (i32, u32, u32) = (1992, 1, 1);
/// Last order date (TPC-H's ENDDATE minus max ship lag).
pub const MAX_ORDER_DATE: (i32, u32, u32) = (1998, 8, 2);

/// Number of distinct values of the correlated pair columns `p_x`/`p_y`.
pub const PART_X_DOMAIN: i64 = 1000;
/// `p_y = (p_x + U(0, PART_Y_LAG - 1)) mod PART_X_DOMAIN`.
pub const PART_Y_LAG: i64 = 200;

/// Configuration for the TPC-H-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchConfig {
    /// Scale factor: 1.0 ⇒ ≈6M `lineitem` rows (the paper's SF 1).
    pub scale_factor: f64,
    /// RNG seed; identical configs generate identical data.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self {
            scale_factor: 0.01,
            seed: 42,
        }
    }
}

impl TpchConfig {
    /// A config at the given scale factor with the default seed.
    pub fn at_scale(scale_factor: f64) -> Self {
        Self {
            scale_factor,
            ..Self::default()
        }
    }

    /// Number of orders at this scale.
    pub fn num_orders(&self) -> usize {
        ((1_500_000.0 * self.scale_factor) as usize).max(1)
    }

    /// Number of parts at this scale.
    pub fn num_parts(&self) -> usize {
        ((200_000.0 * self.scale_factor) as usize).max(1)
    }
}

/// The generated tables.
#[derive(Debug)]
pub struct TpchData {
    /// The `orders` table.
    pub orders: Table,
    /// The `lineitem` table (≈4 rows per order).
    pub lineitem: Table,
    /// The `part` table, including the correlated `p_x`/`p_y` pair.
    pub part: Table,
}

impl TpchData {
    /// Generates all three tables.
    pub fn generate(config: &TpchConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let part = generate_part(config, &mut rng);
        let (orders, lineitem) = generate_orders_and_lineitem(config, &mut rng);
        Self {
            orders,
            lineitem,
            part,
        }
    }

    /// Registers the tables, the FK edges
    /// (`lineitem.l_orderkey → orders.o_orderkey`,
    /// `lineitem.l_partkey → part.p_partkey`), and the nonclustered indexes
    /// used by the experiments (`l_shipdate`, `l_receiptdate`,
    /// `l_partkey`).
    pub fn into_catalog(self) -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(self.orders).expect("fresh catalog");
        cat.add_table(self.part).expect("fresh catalog");
        cat.add_table(self.lineitem).expect("fresh catalog");
        cat.add_foreign_key("lineitem", "l_orderkey", "orders", "o_orderkey")
            .expect("valid FK");
        cat.add_foreign_key("lineitem", "l_partkey", "part", "p_partkey")
            .expect("valid FK");
        for col in ["l_shipdate", "l_receiptdate", "l_partkey", "l_orderkey"] {
            cat.ensure_secondary_index("lineitem", col)
                .expect("column exists");
        }
        cat.ensure_unique_index("orders", "o_orderkey").expect("pk");
        cat.ensure_unique_index("part", "p_partkey").expect("pk");
        cat
    }
}

fn generate_part(config: &TpchConfig, rng: &mut StdRng) -> Table {
    let n = config.num_parts();
    let schema = Schema::from_pairs(&[
        ("p_partkey", DataType::Int),
        ("p_brand", DataType::Str),
        ("p_container", DataType::Str),
        ("p_size", DataType::Int),
        ("p_retailprice", DataType::Float),
        ("p_x", DataType::Int),
        ("p_y", DataType::Int),
    ]);
    const CONTAINERS_A: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
    const CONTAINERS_B: [&str; 8] = ["BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "CASE", "DRUM"];
    let mut b = TableBuilder::new("part", schema, n);
    for key in 1..=n as i64 {
        let brand = format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5));
        let container = format!(
            "{} {}",
            CONTAINERS_A[rng.gen_range(0..CONTAINERS_A.len())],
            CONTAINERS_B[rng.gen_range(0..CONTAINERS_B.len())]
        );
        let x = rng.gen_range(0..PART_X_DOMAIN);
        let y = (x + rng.gen_range(0..PART_Y_LAG)) % PART_X_DOMAIN;
        b.push_row(&[
            Value::Int(key),
            Value::str(brand.as_str()),
            Value::str(container.as_str()),
            Value::Int(rng.gen_range(1..=50)),
            Value::Float(900.0 + (key % 1000) as f64 * 0.1),
            Value::Int(x),
            Value::Int(y),
        ]);
    }
    b.finish()
}

fn generate_orders_and_lineitem(config: &TpchConfig, rng: &mut StdRng) -> (Table, Table) {
    let n_orders = config.num_orders();
    let n_parts = config.num_parts() as i64;
    let min_date = days_from_civil(MIN_ORDER_DATE.0, MIN_ORDER_DATE.1, MIN_ORDER_DATE.2);
    let max_date = days_from_civil(MAX_ORDER_DATE.0, MAX_ORDER_DATE.1, MAX_ORDER_DATE.2);

    let orders_schema = Schema::from_pairs(&[
        ("o_orderkey", DataType::Int),
        ("o_custkey", DataType::Int),
        ("o_orderdate", DataType::Date),
        ("o_totalprice", DataType::Float),
    ]);
    let lineitem_schema = Schema::from_pairs(&[
        ("l_orderkey", DataType::Int),
        ("l_partkey", DataType::Int),
        ("l_quantity", DataType::Float),
        ("l_extendedprice", DataType::Float),
        ("l_shipdate", DataType::Date),
        ("l_receiptdate", DataType::Date),
    ]);

    let n_customers = (n_orders as i64 / 10).max(1);
    let mut orders = TableBuilder::new("orders", orders_schema, n_orders);
    let mut lineitem = TableBuilder::new("lineitem", lineitem_schema, n_orders * 4);

    for orderkey in 1..=n_orders as i64 {
        let orderdate = rng.gen_range(min_date..=max_date);
        let mut total = 0.0;
        // TPC-H: 1–7 lineitems per order, uniform (mean 4).
        let n_items = rng.gen_range(1..=7);
        for _ in 0..n_items {
            let partkey = rng.gen_range(1..=n_parts);
            let quantity = rng.gen_range(1..=50) as f64;
            let price = quantity * (900.0 + (partkey % 1000) as f64 * 0.1);
            // Ship 1–121 days after the order; receive 1–30 days after
            // shipping.  The ship/receipt correlation is the heart of
            // Experiment 1.
            let shipdate = orderdate + rng.gen_range(1..=121);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            total += price;
            lineitem.push_row(&[
                Value::Int(orderkey),
                Value::Int(partkey),
                Value::Float(quantity),
                Value::Float(price),
                Value::Date(shipdate),
                Value::Date(receiptdate),
            ]);
        }
        orders.push_row(&[
            Value::Int(orderkey),
            Value::Int(rng.gen_range(1..=n_customers)),
            Value::Date(orderdate),
            Value::Float(total),
        ]);
    }
    (orders.finish(), lineitem.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TpchData {
        TpchData::generate(&TpchConfig {
            scale_factor: 0.002, // 3000 orders, ~12000 lineitems, 400 parts
            seed: 7,
        })
    }

    #[test]
    fn row_counts_scale() {
        let d = small();
        assert_eq!(d.orders.num_rows(), 3000);
        assert_eq!(d.part.num_rows(), 400);
        let ratio = d.lineitem.num_rows() as f64 / d.orders.num_rows() as f64;
        assert!((3.5..4.5).contains(&ratio), "lineitem/order ratio {ratio}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.lineitem.num_rows(), b.lineitem.num_rows());
        for rid in [0u32, 100, 1000] {
            assert_eq!(a.lineitem.row(rid), b.lineitem.row(rid));
            assert_eq!(a.part.row(rid % 400), b.part.row(rid % 400));
        }
        let c = TpchData::generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 8,
        });
        assert_ne!(a.lineitem.row(0), c.lineitem.row(0));
    }

    #[test]
    fn receipt_follows_ship() {
        let d = small();
        let ship_idx = d.lineitem.schema().expect_index("l_shipdate");
        let recv_idx = d.lineitem.schema().expect_index("l_receiptdate");
        let ship = d.lineitem.date_column(ship_idx);
        let recv = d.lineitem.date_column(recv_idx);
        for i in 0..d.lineitem.num_rows() {
            let lag = recv[i] - ship[i];
            assert!((1..=30).contains(&lag), "lag {lag} at row {i}");
        }
    }

    #[test]
    fn part_xy_correlation_structure() {
        let d = small();
        let x_idx = d.part.schema().expect_index("p_x");
        let y_idx = d.part.schema().expect_index("p_y");
        let xs = d.part.int_column(x_idx);
        let ys = d.part.int_column(y_idx);
        for i in 0..d.part.num_rows() {
            let lag = (ys[i] - xs[i]).rem_euclid(PART_X_DOMAIN);
            assert!(
                (0..PART_Y_LAG).contains(&lag),
                "lag {lag} outside [0, {PART_Y_LAG})"
            );
        }
    }

    #[test]
    fn part_y_marginal_is_roughly_uniform() {
        // p_y must be (approximately) uniform so that shifting the query
        // window on p_y keeps the marginal selectivity constant.
        let d = TpchData::generate(&TpchConfig {
            scale_factor: 0.05, // 10k parts
            seed: 3,
        });
        let y_idx = d.part.schema().expect_index("p_y");
        let ys = d.part.int_column(y_idx);
        let n = ys.len() as f64;
        // Count in 10 coarse buckets of 100 values each.
        let mut buckets = [0usize; 10];
        for &y in ys {
            buckets[(y / 100) as usize] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            let frac = c as f64 / n;
            assert!(
                (0.08..0.12).contains(&frac),
                "bucket {i} has fraction {frac}"
            );
        }
    }

    #[test]
    fn foreign_keys_are_valid() {
        let d = small();
        let n_orders = d.orders.num_rows() as i64;
        let n_parts = d.part.num_rows() as i64;
        let ok_idx = d.lineitem.schema().expect_index("l_orderkey");
        let pk_idx = d.lineitem.schema().expect_index("l_partkey");
        for i in 0..d.lineitem.num_rows() as u32 {
            let ok = d.lineitem.value(i, ok_idx).as_int();
            let pk = d.lineitem.value(i, pk_idx).as_int();
            assert!((1..=n_orders).contains(&ok));
            assert!((1..=n_parts).contains(&pk));
        }
    }

    #[test]
    fn catalog_assembly() {
        let cat = small().into_catalog();
        assert!(cat.table("lineitem").is_ok());
        assert_eq!(cat.foreign_keys().len(), 2);
        assert!(cat.secondary_index("lineitem", "l_shipdate").is_some());
        assert!(cat.unique_index("orders", "o_orderkey").is_some());
        assert!(cat.unique_index("part", "p_partkey").is_some());
    }

    #[test]
    fn dates_in_range() {
        let d = small();
        let min = days_from_civil(1992, 1, 1);
        let max = days_from_civil(1998, 8, 2) + 151; // order + ship + receipt lag
        let ship_idx = d.lineitem.schema().expect_index("l_shipdate");
        for &s in d.lineitem.date_column(ship_idx) {
            assert!(s > min && s < max);
        }
    }
}
