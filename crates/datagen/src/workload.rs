//! Query templates for the paper's three experimental scenarios.
//!
//! Each scenario is a fixed query template with one free parameter that
//! changes the *joint* selectivity of correlated predicates while leaving
//! every individual predicate's marginal selectivity constant (§6.2) —
//! which is exactly why one-dimensional histograms with the AVI assumption
//! cannot distinguish the cheap cases from the expensive ones.

use rqo_expr::Expr;
use rqo_storage::{parse_date, Table};

use crate::tpch::PART_X_DOMAIN;

/// Experiment 1 (§6.2.1): the two-predicate `lineitem` template.
///
/// ```sql
/// SELECT SUM(l_extendedprice) FROM lineitem
/// WHERE l_shipdate    BETWEEN '07/01/97'     AND '09/30/97'
///   AND l_receiptdate BETWEEN '07/01/97' + ? AND '09/30/97' + ?
/// ```
///
/// `offset_days` is the paper's `?`.  Because receipt dates trail ship
/// dates by 1–30 days, small offsets give high overlap (joint selectivity
/// near the ship-date marginal) and offsets beyond ~120 days give zero
/// overlap; the marginal selectivity of each BETWEEN is constant
/// regardless.
pub fn exp1_lineitem_predicate(offset_days: i64) -> Expr {
    let ship_lo = parse_date("1997-07-01");
    let ship_hi = parse_date("1997-09-30");
    let ship =
        Expr::col("l_shipdate").between(Expr::lit(ship_lo.clone()), Expr::lit(ship_hi.clone()));
    let receipt = Expr::col("l_receiptdate").between(
        Expr::lit(ship_lo).add(Expr::lit(offset_days)),
        Expr::lit(ship_hi).add(Expr::lit(offset_days)),
    );
    ship.and(receipt)
}

/// Offsets that sweep Experiment 1's joint selectivity from its maximum
/// down to zero (the paper plots joint selectivities 0%–0.6%, i.e. the
/// upper offsets of this range).
pub fn exp1_offsets() -> Vec<i64> {
    // Joint selectivity decreases as the offset grows; ≥ ~125 days is zero.
    vec![
        0, 20, 40, 60, 70, 80, 85, 90, 95, 100, 105, 110, 115, 120, 125, 130,
    ]
}

/// Experiment 2 (§6.2.2): the correlated `part` predicate of the
/// three-table join template.
///
/// ```sql
/// SELECT ... FROM lineitem ⋈ orders ⋈ part
/// WHERE p_x < 30 AND p_y BETWEEN ? AND ? + 29
/// ```
///
/// Both predicates always select 3% of `part` individually, so the AVI
/// estimate is a constant `0.09%` — *below* the indexed-nested-loops
/// crossover, which locks the histogram baseline onto the risky plan
/// exactly as the paper observed.  The joint selectivity depends on the
/// window position because `p_y = p_x + U(0, 199) mod 1000`: rows with
/// `p_x < 30` have `p_y` spread over `[p_x, p_x + 199]`.  The joint
/// selectivity peaks at ≈0.45% for windows inside `[30, 200]`, falls as
/// the window slides right, and is exactly zero for window starts ≥ 229 —
/// covering the paper's 0–0.5% sweep with its 0.1–0.2% crossover inside.
pub fn exp2_part_predicate(window_start: i64) -> Expr {
    assert!(
        (0..PART_X_DOMAIN).contains(&window_start),
        "window start {window_start} outside [0, {PART_X_DOMAIN})"
    );
    let x_pred = Expr::col("p_x").lt(Expr::lit(30i64));
    let y_pred = Expr::col("p_y").between(
        Expr::lit(window_start),
        Expr::lit((window_start + 29).min(PART_X_DOMAIN - 1)),
    );
    x_pred.and(y_pred)
}

/// Window starts that sweep Experiment 2's joint `part` selectivity from
/// ≈0.45% down to 0, dense around the paper's 0.1%–0.2% crossover region.
pub fn exp2_window_starts() -> Vec<i64> {
    vec![
        60, 130, 170, 190, 200, 206, 212, 217, 220, 223, 226, 229, 240,
    ]
}

/// Experiment 3 (§6.2.3): the per-dimension filter of the star-join
/// template, always selecting 10% of the dimension.
///
/// ```sql
/// SELECT SUM(f_measure1) FROM fact ⋈ dim1 ⋈ dim2 ⋈ dim3
/// WHERE dim1.d_attr = level AND dim2.d_attr = level AND dim3.d_attr = level
/// ```
///
/// The fact table's handcrafted distribution makes the matched fact
/// fraction equal [`crate::star::diag_fraction`]`(level)`.
pub fn exp3_dim_predicate(level: i64) -> Expr {
    Expr::col("d_attr").eq(Expr::lit(level))
}

/// The levels (free parameter values) for Experiment 3.
pub fn exp3_levels() -> Vec<i64> {
    (0..10).collect()
}

/// Measures the exact selectivity of a predicate on a table by evaluating
/// it against every row.  Used by the experiment harnesses to put *true*
/// selectivity on the x-axis (the paper does the same: its figures plot
/// measured query selectivity).
///
/// # Panics
///
/// Panics when the predicate references columns absent from the table.
pub fn true_selectivity(table: &Table, predicate: &Expr) -> f64 {
    if table.num_rows() == 0 {
        return 0.0;
    }
    let bound = predicate
        .bind(table.schema())
        .expect("predicate references missing columns");
    let mut row = Vec::with_capacity(table.schema().len());
    let mut hits = 0usize;
    for rid in 0..table.num_rows() as u32 {
        row.clear();
        row.extend((0..table.schema().len()).map(|c| table.value(rid, c)));
        if rqo_expr::eval_bool(&bound, &row) {
            hits += 1;
        }
    }
    hits as f64 / table.num_rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::{diag_fraction, StarConfig, StarData};
    use crate::tpch::{TpchConfig, TpchData};

    #[test]
    fn exp1_marginals_constant_joint_varies() {
        let d = TpchData::generate(&TpchConfig {
            scale_factor: 0.01, // ~60k lineitems
            seed: 11,
        });
        // Marginal of the receipt-date window must not depend on the offset.
        let marginal = |offset: i64| {
            let ship_lo = parse_date("1997-07-01");
            let ship_hi = parse_date("1997-09-30");
            let pred = Expr::col("l_receiptdate").between(
                Expr::lit(ship_lo).add(Expr::lit(offset)),
                Expr::lit(ship_hi).add(Expr::lit(offset)),
            );
            true_selectivity(&d.lineitem, &pred)
        };
        let m0 = marginal(0);
        let m100 = marginal(100);
        assert!((m0 - m100).abs() < 0.01, "marginals {m0} vs {m100}");
        assert!(m0 > 0.02, "receipt marginal too small: {m0}");

        // Joint selectivity decreases with the offset and hits zero.
        let joint: Vec<f64> = [0i64, 60, 90, 110, 130]
            .iter()
            .map(|&q| true_selectivity(&d.lineitem, &exp1_lineitem_predicate(q)))
            .collect();
        assert!(joint[0] > joint[2], "{joint:?}");
        assert!(joint[2] > joint[3], "{joint:?}");
        assert_eq!(joint[4], 0.0, "{joint:?}");
        // The paper's sweep covers 0–0.6%; ensure the tail offsets land there.
        assert!(joint[3] < 0.006, "{joint:?}");
    }

    #[test]
    fn exp2_marginals_constant_joint_varies() {
        let d = TpchData::generate(&TpchConfig {
            scale_factor: 0.1, // 20k parts
            seed: 13,
        });
        let y_marginal = |start: i64| {
            let pred = Expr::col("p_y").between(Expr::lit(start), Expr::lit(start + 29));
            true_selectivity(&d.part, &pred)
        };
        let m0 = y_marginal(0);
        let m200 = y_marginal(200);
        assert!((m0 - 0.03).abs() < 0.01, "{m0}");
        assert!((m200 - 0.03).abs() < 0.01, "{m200}");

        let joint: Vec<f64> = [100i64, 200, 220, 240]
            .iter()
            .map(|&q| true_selectivity(&d.part, &exp2_part_predicate(q)))
            .collect();
        assert!(joint[0] > 0.003, "{joint:?}");
        assert!(joint[0] > joint[1] && joint[1] > joint[2], "{joint:?}");
        assert_eq!(joint[3], 0.0, "{joint:?}");
        // Crossover region coverage: some window start lands in 0–0.2%.
        assert!(joint[2] > 0.0 && joint[2] < 0.002, "{joint:?}");
    }

    #[test]
    fn exp3_dim_predicate_selects_ten_percent() {
        let d = StarData::generate(&StarConfig {
            fact_rows: 1000,
            seed: 1,
        });
        for level in exp3_levels() {
            let s = true_selectivity(&d.dims[1], &exp3_dim_predicate(level));
            assert!((s - 0.1).abs() < 1e-9, "level {level}: {s}");
        }
        let _ = diag_fraction(0); // linked for doc purposes
    }

    #[test]
    fn true_selectivity_empty_table() {
        use rqo_storage::{DataType, Schema, TableBuilder};
        let t = TableBuilder::new("e", Schema::from_pairs(&[("x", DataType::Int)]), 0).finish();
        assert_eq!(
            true_selectivity(&t, &Expr::col("x").eq(Expr::lit(1i64))),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn exp2_rejects_out_of_domain_window() {
        exp2_part_predicate(1000);
    }
}
