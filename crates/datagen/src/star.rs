//! Star-schema generator (Experiment 3, paper §6.2.3).
//!
//! One fact table with three dimension FKs, three 1000-row dimension
//! tables.  Each dimension carries an attribute `d_attr ∈ {0..9}` that
//! partitions its keys into ten 100-key blocks, so a filter `d_attr = i`
//! always selects exactly 10% of the dimension.
//!
//! The fact-table joint distribution is handcrafted: a fraction
//! `diag_fraction(i) ≈ 0.1 · (i/9)²` of fact rows are "diagonal" at level
//! `i` — all three FKs point into block `i` of their dimensions — and the
//! remaining rows draw blocks uniformly at random *excluding* same-block
//! triples.  Consequently the star query that filters `d_attr = i` on all
//! three dimensions matches exactly the level-`i` diagonal rows: the match
//! fraction sweeps ≈0%…10% as `i` goes 0…9, while an AVI estimator always
//! predicts `10%³ = 0.1%` (what the paper reports for the histogram-based
//! optimizer).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rqo_storage::{Catalog, DataType, Schema, Table, TableBuilder, Value};

/// Number of rows in each dimension table (paper: 1000).
pub const DIM_ROWS: i64 = 1000;
/// Number of attribute blocks per dimension (filter selects one = 10%).
pub const DIM_BLOCKS: i64 = 10;
/// Keys per block.
pub const BLOCK_KEYS: i64 = DIM_ROWS / DIM_BLOCKS;

/// Fraction of fact rows that are diagonal at level `i` (designed match
/// fraction of the level-`i` star query): `0.1 · (i/9)²`, quadratic so the
/// sweep is dense at the low-selectivity end where the plan crossover
/// lives.
pub fn diag_fraction(level: i64) -> f64 {
    assert!(
        (0..DIM_BLOCKS).contains(&level),
        "level {level} out of range"
    );
    0.1 * (level as f64 / (DIM_BLOCKS - 1) as f64).powi(2)
}

/// Configuration for the star-schema generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarConfig {
    /// Number of fact rows (paper: 10,000,000).
    pub fact_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StarConfig {
    fn default() -> Self {
        Self {
            fact_rows: 100_000,
            seed: 99,
        }
    }
}

/// The generated star schema.
#[derive(Debug)]
pub struct StarData {
    /// The fact table (`fact`).
    pub fact: Table,
    /// The three dimension tables (`dim1`, `dim2`, `dim3`).
    pub dims: [Table; 3],
}

impl StarData {
    /// Generates the fact and dimension tables.
    pub fn generate(config: &StarConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let dims = [
            generate_dim("dim1", &mut rng),
            generate_dim("dim2", &mut rng),
            generate_dim("dim3", &mut rng),
        ];
        let fact = generate_fact(config, &mut rng);
        Self { fact, dims }
    }

    /// Registers tables, the three FK edges, and nonclustered indexes on
    /// each fact FK column (the physical design of §6.2.3).
    pub fn into_catalog(self) -> Catalog {
        let mut cat = Catalog::new();
        let [d1, d2, d3] = self.dims;
        cat.add_table(d1).expect("fresh catalog");
        cat.add_table(d2).expect("fresh catalog");
        cat.add_table(d3).expect("fresh catalog");
        cat.add_table(self.fact).expect("fresh catalog");
        for (col, dim) in [("f_key1", "dim1"), ("f_key2", "dim2"), ("f_key3", "dim3")] {
            cat.add_foreign_key("fact", col, dim, "d_key")
                .expect("valid FK");
            cat.ensure_secondary_index("fact", col)
                .expect("column exists");
        }
        cat
    }
}

fn generate_dim(name: &str, rng: &mut StdRng) -> Table {
    let schema = Schema::from_pairs(&[
        ("d_key", DataType::Int),
        ("d_attr", DataType::Int),
        ("d_label", DataType::Str),
        ("d_weight", DataType::Float),
    ]);
    let mut b = TableBuilder::new(name, schema, DIM_ROWS as usize);
    for key in 1..=DIM_ROWS {
        let attr = (key - 1) / BLOCK_KEYS;
        b.push_row(&[
            Value::Int(key),
            Value::Int(attr),
            Value::str(format!("{name}-member-{key}").as_str()),
            Value::Float(rng.gen_range(0.0..1.0)),
        ]);
    }
    b.finish()
}

/// Draws a uniform key from block `block` of a dimension.
fn key_in_block(rng: &mut StdRng, block: i64) -> i64 {
    block * BLOCK_KEYS + rng.gen_range(1..=BLOCK_KEYS)
}

fn generate_fact(config: &StarConfig, rng: &mut StdRng) -> Table {
    let schema = Schema::from_pairs(&[
        ("f_key1", DataType::Int),
        ("f_key2", DataType::Int),
        ("f_key3", DataType::Int),
        ("f_measure1", DataType::Float),
        ("f_measure2", DataType::Float),
    ]);
    // Cumulative diagonal fractions for the level draw.
    let diag_cdf: Vec<f64> = (0..DIM_BLOCKS)
        .scan(0.0, |acc, i| {
            *acc += diag_fraction(i);
            Some(*acc)
        })
        .collect();
    let total_diag = *diag_cdf.last().expect("non-empty");

    let mut b = TableBuilder::new("fact", schema, config.fact_rows);
    for _ in 0..config.fact_rows {
        let u: f64 = rng.gen();
        let (b1, b2, b3) = if u < total_diag {
            // Diagonal row at the level selected by the cdf.
            let level = diag_cdf.partition_point(|&c| c < u) as i64;
            (level, level, level)
        } else {
            // Off-diagonal: uniform triple, rejecting same-block triples so
            // diagonal queries match exactly their designed fraction.
            loop {
                let t = (
                    rng.gen_range(0..DIM_BLOCKS),
                    rng.gen_range(0..DIM_BLOCKS),
                    rng.gen_range(0..DIM_BLOCKS),
                );
                if !(t.0 == t.1 && t.1 == t.2) {
                    break t;
                }
            }
        };
        b.push_row(&[
            Value::Int(key_in_block(rng, b1)),
            Value::Int(key_in_block(rng, b2)),
            Value::Int(key_in_block(rng, b3)),
            Value::Float(rng.gen_range(1.0..100.0)),
            Value::Float(rng.gen_range(0.0..10.0)),
        ]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> StarData {
        StarData::generate(&StarConfig {
            fact_rows: 50_000,
            seed: 5,
        })
    }

    #[test]
    fn dimension_structure() {
        let d = data();
        for dim in &d.dims {
            assert_eq!(dim.num_rows(), 1000);
            let key_idx = dim.schema().expect_index("d_key");
            let attr_idx = dim.schema().expect_index("d_attr");
            for rid in 0..1000u32 {
                let key = dim.value(rid, key_idx).as_int();
                let attr = dim.value(rid, attr_idx).as_int();
                assert_eq!(attr, (key - 1) / 100, "key {key}");
            }
        }
    }

    #[test]
    fn dim_filter_selects_ten_percent() {
        let d = data();
        let attr_idx = d.dims[0].schema().expect_index("d_attr");
        for target in 0..10i64 {
            let count = (0..1000u32)
                .filter(|&rid| d.dims[0].value(rid, attr_idx).as_int() == target)
                .count();
            assert_eq!(count, 100);
        }
    }

    #[test]
    fn diagonal_match_fractions_follow_design() {
        let d = data();
        let n = d.fact.num_rows() as f64;
        let k1 = d.fact.schema().expect_index("f_key1");
        let k2 = d.fact.schema().expect_index("f_key2");
        let k3 = d.fact.schema().expect_index("f_key3");
        for level in [0i64, 3, 6, 9] {
            let lo = level * 100 + 1;
            let hi = (level + 1) * 100;
            let matches = (0..d.fact.num_rows() as u32)
                .filter(|&rid| {
                    let a = d.fact.value(rid, k1).as_int();
                    let b = d.fact.value(rid, k2).as_int();
                    let c = d.fact.value(rid, k3).as_int();
                    (lo..=hi).contains(&a) && (lo..=hi).contains(&b) && (lo..=hi).contains(&c)
                })
                .count() as f64;
            let frac = matches / n;
            let designed = diag_fraction(level);
            assert!(
                (frac - designed).abs() < 0.01,
                "level {level}: measured {frac}, designed {designed}"
            );
        }
    }

    #[test]
    fn fact_keys_reference_dimensions() {
        let d = data();
        for col in 0..3 {
            for rid in (0..d.fact.num_rows() as u32).step_by(97) {
                let key = d.fact.value(rid, col).as_int();
                assert!((1..=1000).contains(&key), "fk {key}");
            }
        }
    }

    #[test]
    fn single_dim_marginal_close_to_designed() {
        // P(f_key1 in block j) = diag_j + offdiag spread; with the quadratic
        // diagonal design the marginal is not uniform, but must match the
        // analytic value: diag_j + (1 - total_diag) * offdiag_j where
        // offdiag_j accounts for the rejected same-block triples.
        let d = data();
        let n = d.fact.num_rows() as f64;
        let k1 = d.fact.schema().expect_index("f_key1");
        let total_diag: f64 = (0..10).map(diag_fraction).sum();
        for block in [0i64, 9] {
            let lo = block * 100 + 1;
            let hi = (block + 1) * 100;
            let count = (0..d.fact.num_rows() as u32)
                .filter(|&rid| {
                    let k = d.fact.value(rid, k1).as_int();
                    (lo..=hi).contains(&k)
                })
                .count() as f64;
            let frac = count / n;
            // Off-diagonal: uniform over the 990 non-diagonal triples, 99 of
            // which have b1 = block.
            let expected = diag_fraction(block) + (1.0 - total_diag) * 99.0 / 990.0;
            assert!(
                (frac - expected).abs() < 0.01,
                "block {block}: measured {frac}, expected {expected}"
            );
        }
    }

    #[test]
    fn catalog_assembly() {
        let cat = data().into_catalog();
        assert_eq!(cat.foreign_keys().len(), 3);
        assert!(cat.secondary_index("fact", "f_key2").is_some());
        assert!(cat.unique_index("dim3", "d_key").is_some());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn diag_fraction_bounds() {
        diag_fraction(10);
    }
}
