//! Synthetic data generators reproducing the paper's experimental datasets.
//!
//! Three datasets drive the paper's evaluation (§6.2):
//!
//! 1. A TPC-H-like schema (`lineitem`, `orders`, `part`) where
//!    `l_receiptdate = l_shipdate + U(1, 30)` — the natural ship/receipt
//!    correlation that defeats the attribute-value-independence assumption
//!    in Experiment 1.
//! 2. The same schema with a *modified `part` table* carrying a correlated
//!    column pair (`p_x`, `p_y = p_x + U(0, 199) mod 1000`) for
//!    Experiment 2: a query window on `p_y` slides relative to a fixed
//!    window on `p_x`, sweeping the joint selectivity while both marginal
//!    selectivities stay exactly constant (the property the paper uses so
//!    that histograms see no difference between the easy and hard cases).
//! 3. A synthetic star schema (Experiment 3): a fact table with three
//!    dimension FKs whose joint distribution is handcrafted so that
//!    selecting attribute value `i` on every dimension (always a 10% filter
//!    per dimension) matches a *designed* fraction of fact rows ranging
//!    from ≈0% to 10%, while an AVI-based estimator always predicts 0.1%.
//!
//! All generators are deterministic given a seed, and scale-factor
//! parameterized; the cost model's crossover selectivities are expressed as
//! *fractions*, so experiments at reduced scale preserve the paper's plan
//! crossover structure.

#![warn(missing_docs)]

pub mod star;
pub mod tpch;
pub mod workload;

pub use star::{StarConfig, StarData};
pub use tpch::{TpchConfig, TpchData};
