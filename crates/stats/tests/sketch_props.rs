//! Property suite pinning the distinct-count sketch's algebra and its
//! accuracy contract.
//!
//! The algebra is what makes sketches *mergeable statistics*: merging
//! must be commutative and associative, inserting then merging must
//! equal merging then inserting (so per-partition maintenance order is
//! irrelevant), and serialization must be lossless — these are the
//! invariants that let per-partition sketches be combined in any order,
//! at any time, into one table-level estimate.
//!
//! The accuracy contract is the acceptance bound for the streaming
//! statistics path: at the default precision (p = 14, ~0.8% standard
//! error) the estimate stays within 5% relative error across
//! cardinalities from 1 to 10^6 — including the linear-counting /
//! raw-estimate crossover region where HLL implementations classically
//! go wrong.

use proptest::prelude::*;
use rqo_stats::sketch::{value_hash, SketchDecodeError, DEFAULT_PRECISION};
use rqo_stats::DistinctSketch;
use rqo_storage::Value;

/// Deterministic value stream: `Int`s drawn from a keyed mix so
/// different streams overlap partially (unions are non-trivial).
fn stream(key: u64, len: usize) -> Vec<Value> {
    (0..len as u64)
        .map(|i| {
            // splitmix-style scramble, offset by the stream key so two
            // streams share roughly half their values.
            let v = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % (len as u64 + 1);
            Value::Int((v + key * (i % 2)) as i64)
        })
        .collect()
}

fn sketch_of(values: &[Value]) -> DistinctSketch {
    let mut s = DistinctSketch::new();
    for v in values {
        s.insert(v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) == merge(b, a): register-wise max is symmetric.
    #[test]
    fn merge_is_commutative(ka in 0u64..32, kb in 0u64..32,
                            na in 0usize..600, nb in 0usize..600) {
        let a = sketch_of(&stream(ka, na));
        let b = sketch_of(&stream(kb, nb));
        prop_assert_eq!(a.merged(&b), b.merged(&a));
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(ka in 0u64..32, kb in 0u64..32, kc in 0u64..32,
                            n in 0usize..400) {
        let a = sketch_of(&stream(ka, n));
        let b = sketch_of(&stream(kb, n + 37));
        let c = sketch_of(&stream(kc, n / 2));
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    /// Inserting a value then merging equals merging then inserting —
    /// maintenance order across partitions cannot change the estimate.
    #[test]
    fn insert_then_merge_equals_merge_then_insert(
        ka in 0u64..32, kb in 0u64..32, n in 0usize..400, x in any::<i64>()) {
        let a = sketch_of(&stream(ka, n));
        let b = sketch_of(&stream(kb, n));

        let mut a_then = a.clone();
        a_then.insert(&Value::Int(x));
        let insert_first = a_then.merged(&b);

        let mut merge_first = a.merged(&b);
        merge_first.insert(&Value::Int(x));

        prop_assert_eq!(insert_first, merge_first);
    }

    /// Merging is idempotent and absorbs subsets: a ∪ a == a, and a
    /// sketch of a prefix merges into the full stream's sketch without
    /// changing it.
    #[test]
    fn merge_is_idempotent_and_absorbing(k in 0u64..32, n in 1usize..500,
                                         cut in 0usize..500) {
        let values = stream(k, n);
        let full = sketch_of(&values);
        prop_assert_eq!(full.merged(&full), full.clone());
        let prefix = sketch_of(&values[..cut.min(n)]);
        prop_assert_eq!(full.merged(&prefix), full);
    }

    /// serialize ∘ deserialize is the identity, at every precision.
    #[test]
    fn serde_roundtrip_is_identity(k in 0u64..64, n in 0usize..800,
                                   p in 4u8..=16) {
        let mut s = DistinctSketch::with_precision(p);
        for v in stream(k, n) {
            s.insert(&v);
        }
        let back = DistinctSketch::from_bytes(&s.to_bytes()).expect("own bytes decode");
        prop_assert_eq!(back, s);
    }

    /// Decoding is defensive: truncation and corruption come back as
    /// typed errors, never panics.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = DistinctSketch::from_bytes(&bytes);
    }

    /// Duplicates never change a sketch: re-inserting any suffix of the
    /// stream leaves the registers untouched.
    #[test]
    fn duplicates_are_free(k in 0u64..32, n in 1usize..500, again in 0usize..500) {
        let values = stream(k, n);
        let mut s = sketch_of(&values);
        let reference = s.clone();
        for v in &values[values.len() - again.min(n)..] {
            s.insert(v);
        }
        prop_assert_eq!(s, reference);
    }

    /// The estimate equals the estimate of the hash-set of the input:
    /// the sketch is a pure function of the distinct hashed values.
    #[test]
    fn estimate_is_a_function_of_the_distinct_set(k in 0u64..32, n in 0usize..500) {
        let values = stream(k, n);
        let mut dedup: Vec<u64> = values.iter().map(value_hash).collect();
        dedup.sort_unstable();
        dedup.dedup();
        let mut from_hashes = DistinctSketch::new();
        for h in dedup {
            from_hashes.insert_hash(h);
        }
        prop_assert_eq!(sketch_of(&values), from_hashes);
    }
}

/// The acceptance bound: ≤5% relative error from 1 distinct value to
/// 10^6, in a deterministic sweep crossing the linear-counting /
/// raw-HLL switchover (~2.5·2^14 ≈ 41k) from both sides.
#[test]
fn estimates_within_five_percent_from_one_to_one_million() {
    assert_eq!(DEFAULT_PRECISION, 14, "sweep bound calibrated for p=14");
    for &n in &[
        1usize, 2, 5, 10, 50, 100, 1_000, 10_000, 30_000, 41_000, 50_000, 100_000, 300_000,
        1_000_000,
    ] {
        let mut s = DistinctSketch::new();
        for i in 0..n as i64 {
            s.insert(&Value::Int(i));
        }
        // A second pass of duplicates must not move the estimate.
        for i in 0..(n as i64).min(1_000) {
            s.insert(&Value::Int(i));
        }
        let est = s.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(
            rel <= 0.05,
            "cardinality {n}: estimate {est:.1}, relative error {:.2}% > 5%",
            rel * 100.0
        );
    }
}

/// Merged per-partition sketches estimate the union as accurately as a
/// single sketch over the concatenated stream — the property the
/// table-level `column_distinct` read path relies on.
#[test]
fn partitioned_union_matches_single_stream() {
    let n = 200_000usize;
    let parts = 8;
    let mut shards: Vec<DistinctSketch> = (0..parts).map(|_| DistinctSketch::new()).collect();
    let mut single = DistinctSketch::new();
    for i in 0..n as i64 {
        let v = Value::Int(i);
        shards[(i as usize) % parts].insert(&v);
        single.insert(&v);
    }
    let mut merged = shards[0].clone();
    for shard in &shards[1..] {
        merged.merge(shard);
    }
    assert_eq!(merged, single, "sharding must be invisible to the union");
    let rel = (merged.estimate() - n as f64).abs() / n as f64;
    assert!(rel <= 0.05, "union error {:.2}%", rel * 100.0);
}

#[test]
fn decode_rejects_each_corruption_with_a_typed_error() {
    let mut s = DistinctSketch::with_precision(10);
    for v in stream(3, 500) {
        s.insert(&v);
    }
    let bytes = s.to_bytes();

    assert_eq!(
        DistinctSketch::from_bytes(&[]),
        Err(SketchDecodeError::Truncated)
    );
    let mut bad = bytes.clone();
    bad[0] = 9;
    assert_eq!(
        DistinctSketch::from_bytes(&bad),
        Err(SketchDecodeError::BadVersion(9))
    );
    let mut bad = bytes.clone();
    bad[1] = 3;
    assert!(matches!(
        DistinctSketch::from_bytes(&bad),
        Err(SketchDecodeError::BadPrecision(3))
    ));
    let mut short = bytes.clone();
    short.truncate(bytes.len() - 1);
    assert!(matches!(
        DistinctSketch::from_bytes(&short),
        Err(SketchDecodeError::LengthMismatch { .. })
    ));
    let mut bad = bytes;
    let last = bad.len() - 1;
    bad[last] = 255; // rank can never exceed 64 - p + 1
    assert!(matches!(
        DistinctSketch::from_bytes(&bad),
        Err(SketchDecodeError::BadRegister { .. })
    ));
}
