//! Property tests for the equi-depth histogram's fallback estimation —
//! the path the system lands on when no synopsis covers a request.
//!
//! Three contracts:
//!
//! 1. every selectivity (range, point, open-ended) lies in `[0, 1]`;
//! 2. estimates are **monotone over widening predicates** — enlarging a
//!    range never shrinks the estimate;
//! 3. on uniform data the histogram agrees with the sampling-based
//!    synopsis estimator within 2× (both are consistent estimators of
//!    the same truth; on uniform data neither has a blind spot, so a
//!    larger gap would mean one of them is broken).

use std::ops::Bound;

use proptest::prelude::*;
use rqo_expr::Expr;
use rqo_stats::{EquiDepthHistogram, JoinSynopsis};
use rqo_storage::{Catalog, DataType, Schema, Table, TableBuilder, Value};

fn int_table(values: &[i64]) -> Table {
    let mut b = TableBuilder::new(
        "t",
        Schema::from_pairs(&[("x", DataType::Int)]),
        values.len(),
    );
    for &v in values {
        b.push_row(&[Value::Int(v)]);
    }
    b.finish()
}

/// `n` rows uniform over `[0, domain)`, deterministic in `seed`.
fn uniform_values(n: usize, domain: i64, seed: u64) -> Vec<i64> {
    // Splitmix-style mixing — cheap, seeded, and uniform enough for the
    // 2× agreement bound.
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            ((z ^ (z >> 31)) % domain as u64) as i64
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract 1: all estimation entry points stay in [0, 1], for any
    /// data distribution, bucket count, and query bounds (including
    /// inverted and out-of-domain ranges).
    #[test]
    fn selectivities_lie_in_unit_interval(
        values in prop::collection::vec(-500i64..500, 1..300),
        lo in -600i64..600,
        hi in -600i64..600,
        probe in -600i64..600,
        buckets in 1usize..50,
    ) {
        let t = int_table(&values);
        let h = EquiDepthHistogram::build(&t, "x", buckets);
        let cases = [
            h.range_selectivity(Bound::Included(&Value::Int(lo)), Bound::Included(&Value::Int(hi))),
            h.range_selectivity(Bound::Excluded(&Value::Int(lo)), Bound::Excluded(&Value::Int(hi))),
            h.range_selectivity(Bound::Unbounded, Bound::Included(&Value::Int(hi))),
            h.range_selectivity(Bound::Included(&Value::Int(lo)), Bound::Unbounded),
            h.range_selectivity(Bound::Unbounded, Bound::Unbounded),
            h.eq_selectivity(&Value::Int(probe)),
        ];
        for (i, sel) in cases.iter().enumerate() {
            prop_assert!(
                (0.0..=1.0).contains(sel),
                "case {i}: selectivity {sel} outside [0, 1]"
            );
        }
    }

    /// Contract 2: widening a range predicate never lowers the estimate
    /// (monotonicity in both directions).  Note that point estimates are
    /// *not* bounded by containing-range estimates: `eq_selectivity`
    /// assumes uniform frequency per distinct value while ranges
    /// interpolate by width, so a narrow bucket with few distincts can
    /// legitimately price a point above a 3-wide range.
    #[test]
    fn estimates_monotone_over_widening_predicates(
        values in prop::collection::vec(-300i64..300, 1..300),
        lo in -350i64..350,
        len in 0i64..200,
        widen_lo in 0i64..100,
        widen_hi in 0i64..100,
        buckets in 1usize..40,
    ) {
        let t = int_table(&values);
        let h = EquiDepthHistogram::build(&t, "x", buckets);
        let hi = lo + len;
        let narrow = h.range_selectivity(
            Bound::Included(&Value::Int(lo)),
            Bound::Included(&Value::Int(hi)),
        );
        let wide = h.range_selectivity(
            Bound::Included(&Value::Int(lo - widen_lo)),
            Bound::Included(&Value::Int(hi + widen_hi)),
        );
        prop_assert!(
            wide >= narrow - 1e-12,
            "widening shrank the estimate: [{},{}]={} ⊂ [{},{}]={}",
            lo, hi, narrow, lo - widen_lo, hi + widen_hi, wide
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 3: on uniform data, histogram and synopsis estimates of
    /// the same range predicate agree within 2× whenever the range is
    /// wide enough for both to resolve it (true selectivity ≥ 5%,
    /// comfortably above sampling noise and single-bucket granularity).
    #[test]
    fn histogram_agrees_with_synopsis_within_2x_on_uniform_data(
        seed in 0u64..1000,
        domain in 50i64..400,
        frac_num in 1i64..20,
        sample_seed in 0u64..1000,
    ) {
        let n = 2000usize;
        let values = uniform_values(n, domain, seed);
        let cut = (domain * frac_num / 20).max(1);
        let truth = values.iter().filter(|&&v| v < cut).count() as f64 / n as f64;
        prop_assume!(truth >= 0.05);

        // Histogram estimate at the default resolution.
        let t = int_table(&values);
        let h = EquiDepthHistogram::build(&t, "x", rqo_stats::histogram::DEFAULT_BUCKETS);
        let hist = h.range_selectivity(
            Bound::Unbounded,
            Bound::Excluded(&Value::Int(cut)),
        );

        // Synopsis (sampling) estimate of the same predicate.
        let mut cat = Catalog::new();
        cat.add_table(int_table(&values)).unwrap();
        let syn = JoinSynopsis::build(&cat, "t", 500, sample_seed);
        let pred = Expr::col("x").lt(Expr::lit(cut));
        let (k, m) = syn.evaluate(&[("t", &pred)]);
        prop_assume!(m > 0);
        let sampled = k as f64 / m as f64;
        prop_assume!(sampled > 0.0);

        let ratio = (hist / sampled).max(sampled / hist);
        prop_assert!(
            ratio <= 2.0,
            "histogram {hist:.4} vs synopsis {sampled:.4} (truth {truth:.4}): ratio {ratio:.2}"
        );
    }
}
