//! Property-based tests of the statistics layer: histogram estimates
//! against exact counts, sampler contracts, and synopsis invariants.

use std::ops::Bound;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rqo_stats::{sample_with_replacement, sample_without_replacement, EquiDepthHistogram};
use rqo_storage::{DataType, Schema, Table, TableBuilder, Value};

fn int_table(values: &[i64]) -> Table {
    let mut b = TableBuilder::new(
        "t",
        Schema::from_pairs(&[("x", DataType::Int)]),
        values.len(),
    );
    for &v in values {
        b.push_row(&[Value::Int(v)]);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Equi-depth histogram range estimates are exact at bucket
    /// boundaries and within one bucket's mass anywhere (the classical
    /// error bound).
    #[test]
    fn histogram_range_error_bounded_by_bucket_mass(
        values in prop::collection::vec(-100i64..100, 1..400),
        lo in -110i64..110,
        len in 0i64..120,
        buckets in 1usize..40,
    ) {
        let t = int_table(&values);
        let h = EquiDepthHistogram::build(&t, "x", buckets);
        let hi = lo + len;
        let est = h.range_selectivity(
            Bound::Included(&Value::Int(lo)),
            Bound::Included(&Value::Int(hi)),
        );
        let exact = values.iter().filter(|&&v| (lo..=hi).contains(&v)).count() as f64
            / values.len() as f64;
        // Two partially covered buckets, each bounded by the bucket mass,
        // plus interpolation error within them.
        let bucket_mass = (values.len() as f64 / buckets as f64).ceil() / values.len() as f64;
        prop_assert!(
            (est - exact).abs() <= 2.0 * bucket_mass + 1e-9,
            "est {est} exact {exact} bucket_mass {bucket_mass}"
        );
    }

    #[test]
    fn histogram_selectivities_are_probabilities(
        values in prop::collection::vec(-50i64..50, 1..200),
        probe in -60i64..60,
        buckets in 1usize..20,
    ) {
        let t = int_table(&values);
        let h = EquiDepthHistogram::build(&t, "x", buckets);
        let eq = h.eq_selectivity(&Value::Int(probe));
        prop_assert!((0.0..=1.0).contains(&eq));
        let full = h.range_selectivity(Bound::Unbounded, Bound::Unbounded);
        prop_assert!((full - 1.0).abs() < 1e-9);
        prop_assert!(h.distinct_estimate() as usize <= values.len());
    }

    #[test]
    fn with_replacement_sampler_contract(rows in 0usize..300, n in 0usize..600, seed: u64) {
        let t = int_table(&(0..rows as i64).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_with_replacement(&t, n, &mut rng);
        if rows == 0 {
            prop_assert!(s.is_empty());
        } else {
            prop_assert_eq!(s.len(), n);
            prop_assert!(s.iter().all(|&r| (r as usize) < rows));
        }
    }

    #[test]
    fn without_replacement_sampler_contract(rows in 0usize..300, n in 0usize..600, seed: u64) {
        let t = int_table(&(0..rows as i64).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = sample_without_replacement(&t, n, &mut rng);
        prop_assert_eq!(s.len(), n.min(rows));
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), n.min(rows), "duplicates in reservoir sample");
    }
}

mod synopsis_props {
    use super::*;
    use rqo_expr::Expr;
    use rqo_stats::JoinSynopsis;
    use rqo_storage::Catalog;

    fn two_table_catalog(parent_a: &[i64], child_fk: &[usize]) -> Catalog {
        let pschema = Schema::from_pairs(&[("pk", DataType::Int), ("a", DataType::Int)]);
        let mut pb = TableBuilder::new("parent", pschema, parent_a.len());
        for (i, &a) in parent_a.iter().enumerate() {
            pb.push_row(&[Value::Int(i as i64), Value::Int(a)]);
        }
        let cschema = Schema::from_pairs(&[("ck", DataType::Int), ("fk", DataType::Int)]);
        let mut cb = TableBuilder::new("child", cschema, child_fk.len());
        for (i, &fk) in child_fk.iter().enumerate() {
            cb.push_row(&[
                Value::Int(i as i64),
                Value::Int((fk % parent_a.len()) as i64),
            ]);
        }
        let mut cat = Catalog::new();
        cat.add_table(pb.finish()).unwrap();
        cat.add_table(cb.finish()).unwrap();
        cat.add_foreign_key("child", "fk", "parent", "pk").unwrap();
        cat
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every synopsis tuple is a genuine join tuple: the child
        /// component's FK equals the parent component's PK, row by row.
        #[test]
        fn synopsis_components_are_aligned(
            parent_a in prop::collection::vec(0i64..10, 1..30),
            child_fk in prop::collection::vec(0usize..1000, 1..100),
            n in 1usize..80,
            seed: u64,
        ) {
            let cat = two_table_catalog(&parent_a, &child_fk);
            let syn = JoinSynopsis::build(&cat, "child", n, seed);
            prop_assert_eq!(syn.sample_size(), n);
            let child = syn.component("child").unwrap();
            let parent = syn.component("parent").unwrap();
            let fk_col = child.schema().expect_index("fk");
            let pk_col = parent.schema().expect_index("pk");
            for i in 0..n as u32 {
                prop_assert_eq!(
                    child.value(i, fk_col).as_int(),
                    parent.value(i, pk_col).as_int()
                );
            }
        }

        /// Evaluating a cross-table predicate on the synopsis gives a k/n
        /// whose expectation is the true joined fraction: checked loosely
        /// with a generous tolerance over one draw (tight unbiasedness is
        /// covered by seeded averaging tests elsewhere).
        #[test]
        fn synopsis_fraction_tracks_truth(
            parent_a in prop::collection::vec(0i64..4, 4..20),
            child_fk in prop::collection::vec(0usize..1000, 50..150),
            seed in 0u64..50,
        ) {
            let cat = two_table_catalog(&parent_a, &child_fk);
            let pred = Expr::col("a").eq(Expr::lit(0i64));
            let truth = child_fk
                .iter()
                .filter(|&&fk| parent_a[fk % parent_a.len()] == 0)
                .count() as f64 / child_fk.len() as f64;
            let syn = JoinSynopsis::build(&cat, "child", 400, seed);
            let (k, n) = syn.evaluate(&[("parent", &pred)]);
            let frac = k as f64 / n as f64;
            // 400 Bernoulli draws: 5 sigma ≈ 0.125 worst case.
            prop_assert!((frac - truth).abs() < 0.15, "frac {frac} truth {truth}");
        }
    }
}
