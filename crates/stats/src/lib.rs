//! Precomputed statistics: uniform samples, join synopses, equi-depth
//! histograms, and distinct-value estimation.
//!
//! This crate holds the *offline precomputation phase* of the paper's
//! estimation procedure (§3.2): the analogue of `UPDATE STATISTICS`.  Two
//! families of summaries are built:
//!
//! * **Join synopses** ([`synopsis`]) — the paper's chosen summary.  For
//!   each relation, a uniform random sample is drawn and pre-joined along
//!   every foreign-key path (Acharya et al.'s construction), so that any
//!   FK-join expression rooted at that relation can later be evaluated
//!   directly against one sample, with no independence assumptions and no
//!   error propagation.
//! * **Equi-depth histograms** ([`histogram`]) — the baseline the paper
//!   compares against: 250-bucket single-column histograms combined with
//!   the attribute-value-independence (AVI) assumption.
//!
//! [`distinct`] implements sample-based distinct-value estimation (the
//! GROUP BY extension sketched in §3.5), and [`sampler`] the underlying
//! uniform row samplers.

#![warn(missing_docs)]

pub mod distinct;
pub mod histogram;
pub mod sampler;
pub mod sketch;
pub mod synopsis;

pub use histogram::EquiDepthHistogram;
pub use sampler::{
    sample_with_replacement, sample_without_replacement, sample_without_replacement_sorted,
};
pub use sketch::{DistinctSketch, RowReservoir, SketchRepository, TableSketches};
pub use synopsis::{JoinSynopsis, SynopsisRepository};
