//! Sample-based distinct-value estimation (paper §3.5, "Incorporating
//! other operators").
//!
//! The result size of `GROUP BY` depends on the number of distinct
//! grouping-key combinations, which the paper proposes to estimate from the
//! precomputed sample by adapting known estimators (citing Haas, Naughton,
//! Seshadri & Stokes, VLDB 1995 — via Charikar et al.'s later GEE
//! formulation).  Two classical estimators are provided:
//!
//! * **GEE** (Guaranteed-Error Estimator): `√(N/n)·f₁ + Σ_{j≥2} fⱼ`, where
//!   `fⱼ` is the number of values seen exactly `j` times in the sample.
//!   Values seen once get scaled up — they are evidence of a large unseen
//!   population — while repeated values are counted as-is.
//! * **First-order jackknife**: `d / (1 − (1 − n/N) · f₁/n)` — a
//!   smooth alternative that also corrects using the singleton count.
//!
//! Both expect a *without-replacement* sample (duplicated sample rows would
//! inflate the `fⱼ` for `j ≥ 2`).

use std::collections::HashMap;

use rqo_storage::Value;

/// Frequency-of-frequencies profile of a sample.
fn frequency_profile(sample: &[Value]) -> (usize, HashMap<u64, u64>) {
    let mut counts: HashMap<&Value, u64> = HashMap::new();
    for v in sample {
        *counts.entry(v).or_insert(0) += 1;
    }
    let d = counts.len();
    let mut fof: HashMap<u64, u64> = HashMap::new();
    for (_, c) in counts {
        *fof.entry(c).or_insert(0) += 1;
    }
    (d, fof)
}

/// The GEE distinct-value estimate for a size-`n` sample from a
/// population of `population_size` rows.
///
/// Returns 0 only for an empty *population*.  An empty sample from a
/// non-empty population floors at 1: any non-empty table has at least one
/// group, and a 0 estimate poisons downstream division (a grouped
/// aggregate priced over 0 groups costs nothing, so every plan above it
/// ties at zero).  The estimate is clamped to `[d, population_size]` where
/// `d` is the number of distinct values seen, since the truth can be
/// neither smaller than what was observed nor larger than the population.
pub fn gee_estimate(sample: &[Value], population_size: u64) -> f64 {
    if population_size == 0 {
        return 0.0;
    }
    if sample.is_empty() {
        return 1.0;
    }
    let n = sample.len() as f64;
    let (d, fof) = frequency_profile(sample);
    let f1 = *fof.get(&1).unwrap_or(&0) as f64;
    let repeated: f64 = fof
        .iter()
        .filter(|(&j, _)| j >= 2)
        .map(|(_, &c)| c as f64)
        .sum();
    let est = (population_size as f64 / n).sqrt() * f1 + repeated;
    est.clamp(d as f64, population_size as f64)
}

/// The first-order jackknife distinct-value estimate.
///
/// Floors at 1 for an empty sample from a non-empty population, returns 0
/// only when the population itself is empty; clamped like
/// [`gee_estimate`].
pub fn jackknife_estimate(sample: &[Value], population_size: u64) -> f64 {
    if population_size == 0 {
        return 0.0;
    }
    if sample.is_empty() {
        return 1.0;
    }
    let n = sample.len() as f64;
    let big_n = population_size as f64;
    let (d, fof) = frequency_profile(sample);
    let f1 = *fof.get(&1).unwrap_or(&0) as f64;
    let denom = 1.0 - (1.0 - n / big_n) * f1 / n;
    let est = if denom <= 0.0 {
        // All singletons in a relatively tiny sample: no information beyond
        // "at least d, plausibly up to N".
        big_n
    } else {
        d as f64 / denom
    };
    est.clamp(d as f64, big_n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_of(values: &[i64]) -> Vec<Value> {
        values.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn empty_population_estimates_zero() {
        assert_eq!(gee_estimate(&[], 0), 0.0);
        assert_eq!(jackknife_estimate(&[], 0), 0.0);
        assert_eq!(gee_estimate(&sample_of(&[1]), 0), 0.0);
    }

    /// Regression: an empty sample drawn from a *non-empty* table used to
    /// estimate 0.0 distinct values, which made every grouped-aggregate
    /// plan above it price at zero groups.  A non-empty population has at
    /// least one group, so the estimators must floor at 1.
    #[test]
    fn empty_sample_from_nonempty_population_floors_at_one() {
        assert_eq!(gee_estimate(&[], 100), 1.0);
        assert_eq!(jackknife_estimate(&[], 100), 1.0);
        assert_eq!(gee_estimate(&[], 1), 1.0);
    }

    #[test]
    fn all_identical_sample() {
        // One distinct value seen n times: both estimators say ~1.
        let s = sample_of(&[5; 50]);
        assert_eq!(gee_estimate(&s, 10_000), 1.0);
        assert_eq!(jackknife_estimate(&s, 10_000), 1.0);
    }

    #[test]
    fn all_singletons_scales_up() {
        // 100 distinct singletons from N = 10000: GEE = sqrt(10000/100)*100
        // = 1000.
        let s = sample_of(&(0..100).collect::<Vec<i64>>());
        let gee = gee_estimate(&s, 10_000);
        assert!((gee - 1000.0).abs() < 1e-9, "gee = {gee}");
        // Jackknife degenerates to N when everything is a singleton.
        let jk = jackknife_estimate(&s, 10_000);
        assert!(jk > 100.0);
    }

    #[test]
    fn estimates_clamped_to_population() {
        let s = sample_of(&(0..100).collect::<Vec<i64>>());
        assert!(gee_estimate(&s, 150) <= 150.0);
        assert!(jackknife_estimate(&s, 150) <= 150.0);
        // ...and to the observed distinct count from below.
        let s2 = sample_of(&[1, 1, 2, 2, 3, 3]);
        assert!(gee_estimate(&s2, 1000) >= 3.0);
    }

    #[test]
    fn gee_accuracy_on_uniform_domain() {
        // Population: N rows over D equally frequent values.  A
        // without-replacement sample is simulated by sampling row indices.
        let n_rows = 100_000u64;
        let d_true = 500i64;
        let mut rng = StdRng::seed_from_u64(8);
        let mut estimates = Vec::new();
        for _ in 0..20 {
            // 5000 draws over 500 values: each value is seen ~10 times, so
            // essentially no singletons remain and GEE ≈ D.
            let sample: Vec<Value> = (0..5000)
                .map(|_| {
                    let row: u64 = rng.gen_range(0..n_rows);
                    Value::Int((row % d_true as u64) as i64)
                })
                .collect();
            estimates.push(gee_estimate(&sample, n_rows));
        }
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert!(
            (mean - d_true as f64).abs() / (d_true as f64) < 0.05,
            "mean GEE = {mean}"
        );
    }

    #[test]
    fn jackknife_on_moderate_skew() {
        // Zipf-ish: value v has weight 1/(v+1).  Jackknife should land in
        // the right order of magnitude (distinct estimation under skew is
        // provably hard; we check sanity, not precision).
        let mut rng = StdRng::seed_from_u64(9);
        let weights: Vec<f64> = (0..1000).map(|v| 1.0 / (v as f64 + 1.0)).collect();
        let total: f64 = weights.iter().sum();
        let sample: Vec<Value> = (0..800)
            .map(|_| {
                let mut u = rng.gen::<f64>() * total;
                let mut v = 0usize;
                while u > weights[v] {
                    u -= weights[v];
                    v += 1;
                }
                Value::Int(v as i64)
            })
            .collect();
        let jk = jackknife_estimate(&sample, 1_000_000);
        assert!((100.0..1_000_000.0).contains(&jk), "jk = {jk}");
    }
}
