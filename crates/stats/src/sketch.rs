//! Mergeable streaming sketches: HyperLogLog distinct counts and
//! deterministic reservoir row samples.
//!
//! Everything else in this crate is batch-only — distinct counts come
//! from GEE/jackknife over an offline sample, and absorbing new rows
//! means a full `refresh_statistics` rebuild.  This module is the
//! streaming half of the statistics subsystem (ROADMAP item 3): a
//! dense-register HyperLogLog sketch ([`DistinctSketch`]) that supports
//! `insert`/`merge`/`estimate` with a compact byte serialization (the
//! same bytes double as the wire format for shipping statistics between
//! shards), and a deterministic reservoir sampler ([`RowReservoir`])
//! that maintains a uniform without-replacement row sample under a
//! stream of inserts.
//!
//! Both structures are *mergeable per partition*: the ingest path keeps
//! one sketch per (partition, column) and one reservoir per partition,
//! and the estimator merges partition sketches on demand — union of
//! register-wise maxima — so a table-level distinct estimate never
//! requires re-scanning data.  Merging is commutative and associative
//! and `insert`-then-merge equals merge-then-`insert`, which is what
//! makes the per-partition decomposition sound (pinned by the property
//! suite in `crates/stats/tests/sketch_props.rs`).
//!
//! Determinism: hashing is seed-free and platform-independent
//! ([`value_hash`] is the storage layer's FNV-1a value hash finished
//! with a splitmix64-style avalanche), and the reservoir draws from an
//! explicit-seed splitmix64 stream, so identical insert sequences
//! produce bit-identical sketches and samples on every machine.

use std::fmt;
use std::sync::Arc;

use rqo_storage::{partition_hash, Value};

/// Minimum supported HLL precision (16 registers).
pub const MIN_PRECISION: u8 = 4;
/// Maximum supported HLL precision (65 536 registers).
pub const MAX_PRECISION: u8 = 16;
/// Default HLL precision: 2^14 = 16 384 registers, ~0.8 % standard
/// error — comfortably inside the 5 % relative-error acceptance bound
/// at 10^5+ distinct values.
pub const DEFAULT_PRECISION: u8 = 14;

/// splitmix64 finalizer: a fast full-avalanche bijection on `u64`.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic 64-bit hash of a [`Value`] for sketching.
///
/// Reuses the storage layer's type-tagged FNV-1a
/// ([`rqo_storage::partition_hash`]) so numeric values that compare
/// equal under `Value::total_cmp`'s coercions (`Int`/`Date`/integral
/// `Float`) hash identically — a column rewritten from `Int` to `Float`
/// keeps the same distinct count.  FNV alone avalanches poorly in the
/// high bits HLL uses for register selection, so the result is finished
/// with a splitmix64 mix.
pub fn value_hash(value: &Value) -> u64 {
    mix64(partition_hash(value))
}

/// Error decoding a serialized sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchDecodeError {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// Unknown format version byte.
    BadVersion(u8),
    /// Precision outside [`MIN_PRECISION`]..=[`MAX_PRECISION`].
    BadPrecision(u8),
    /// Buffer length does not match `2 + 2^precision`.
    LengthMismatch {
        /// Bytes the header promises.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A register value exceeds the maximum rank for this precision.
    BadRegister {
        /// Register index.
        index: usize,
        /// The out-of-range value.
        value: u8,
    },
}

impl fmt::Display for SketchDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchDecodeError::Truncated => write!(f, "sketch buffer truncated"),
            SketchDecodeError::BadVersion(v) => write!(f, "unknown sketch version {v}"),
            SketchDecodeError::BadPrecision(p) => write!(f, "sketch precision {p} out of range"),
            SketchDecodeError::LengthMismatch { expected, got } => {
                write!(f, "sketch length {got} != expected {expected}")
            }
            SketchDecodeError::BadRegister { index, value } => {
                write!(f, "sketch register {index} holds impossible rank {value}")
            }
        }
    }
}

impl std::error::Error for SketchDecodeError {}

const SKETCH_VERSION: u8 = 1;

/// A mergeable HyperLogLog distinct-count sketch with dense `u8`
/// registers.
///
/// `precision` bits of the value hash select a register; the register
/// keeps the maximum rank (position of the first set bit, 1-based) seen
/// in the remaining `64 - precision` bits.  The estimator is classic
/// HLL with the small-range linear-counting correction — with 64-bit
/// hashes no large-range correction is needed at the cardinalities this
/// system stores.
///
/// Two sketches over the same precision merge by register-wise `max`,
/// which computes the sketch of the *union* of the two insert streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctSketch {
    precision: u8,
    registers: Vec<u8>,
}

impl Default for DistinctSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl DistinctSketch {
    /// A sketch at [`DEFAULT_PRECISION`].
    pub fn new() -> Self {
        Self::with_precision(DEFAULT_PRECISION)
    }

    /// A sketch with `2^precision` registers.
    ///
    /// # Panics
    ///
    /// Panics when `precision` is outside
    /// [`MIN_PRECISION`]..=[`MAX_PRECISION`].
    pub fn with_precision(precision: u8) -> Self {
        assert!(
            (MIN_PRECISION..=MAX_PRECISION).contains(&precision),
            "sketch precision {precision} outside {MIN_PRECISION}..={MAX_PRECISION}"
        );
        Self {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// The precision (register-index bits).
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Number of registers (`2^precision`).
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// True when no value has ever been inserted (all registers zero).
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Observes one value.
    pub fn insert(&mut self, value: &Value) {
        self.insert_hash(value_hash(value));
    }

    /// Observes a pre-computed [`value_hash`].
    pub fn insert_hash(&mut self, hash: u64) {
        let p = self.precision as u32;
        let idx = (hash >> (64 - p)) as usize;
        // Rank of the first set bit in the low 64-p bits, 1-based; a
        // zero suffix saturates at 64-p+1.
        let suffix = hash << p;
        let rank = if suffix == 0 {
            (64 - p + 1) as u8
        } else {
            (suffix.leading_zeros() + 1) as u8
        };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merges another sketch into this one (register-wise max), giving
    /// the sketch of the union of both insert streams.
    ///
    /// # Panics
    ///
    /// Panics when the precisions differ — per-partition sketches for
    /// one column are always built at one precision.
    pub fn merge(&mut self, other: &DistinctSketch) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge sketches of different precision"
        );
        for (r, &o) in self.registers.iter_mut().zip(&other.registers) {
            if o > *r {
                *r = o;
            }
        }
    }

    /// Returns the merge of `self` and `other` without mutating either.
    pub fn merged(&self, other: &DistinctSketch) -> DistinctSketch {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Estimated number of distinct values inserted.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 1.0 / (1u64 << r.min(63)) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting over empty
            // registers is near-exact while collisions are rare.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Compact byte serialization: `[version, precision, registers...]`.
    ///
    /// These bytes are the unit of cross-shard statistics shipping and
    /// the payload embedded in wire frames; [`DistinctSketch::from_bytes`]
    /// validates them defensively.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.registers.len());
        out.push(SKETCH_VERSION);
        out.push(self.precision);
        out.extend_from_slice(&self.registers);
        out
    }

    /// Decodes [`DistinctSketch::to_bytes`] output, rejecting malformed
    /// buffers (wrong version/precision/length, impossible register
    /// ranks) instead of panicking — the bytes may arrive off the wire.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SketchDecodeError> {
        if bytes.len() < 2 {
            return Err(SketchDecodeError::Truncated);
        }
        if bytes[0] != SKETCH_VERSION {
            return Err(SketchDecodeError::BadVersion(bytes[0]));
        }
        let precision = bytes[1];
        if !(MIN_PRECISION..=MAX_PRECISION).contains(&precision) {
            return Err(SketchDecodeError::BadPrecision(precision));
        }
        let expected = 2 + (1usize << precision);
        if bytes.len() != expected {
            return Err(SketchDecodeError::LengthMismatch {
                expected,
                got: bytes.len(),
            });
        }
        let max_rank = 64 - precision + 1;
        let registers = bytes[2..].to_vec();
        if let Some((index, &value)) = registers.iter().enumerate().find(|&(_, &r)| r > max_rank) {
            return Err(SketchDecodeError::BadRegister { index, value });
        }
        Ok(Self {
            precision,
            registers,
        })
    }
}

/// A deterministic streaming reservoir sample of rows (Vitter's
/// Algorithm R over an explicit-seed splitmix64 stream).
///
/// Maintains a uniform without-replacement sample of `capacity` rows
/// over everything ever [`insert`](RowReservoir::insert)ed.  The ingest
/// path keeps one reservoir per partition so partition-local synopses
/// can be rebuilt from the sample without re-scanning the partition.
/// Unlike the offline samplers in [`crate::sampler`] this one never
/// sees the table — it observes the insert stream itself, so it works
/// on data that arrives incrementally.
///
/// Determinism: the replacement decisions depend only on `(seed, number
/// of rows seen)`, so the same insert sequence yields the same sample
/// on every run and platform.
#[derive(Debug, Clone)]
pub struct RowReservoir {
    capacity: usize,
    seed: u64,
    state: u64,
    seen: u64,
    rows: Vec<Vec<Value>>,
}

impl RowReservoir {
    /// An empty reservoir holding at most `capacity` rows.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self {
            capacity,
            seed,
            // splitmix64 recommends seeding the stream with a mixed
            // seed so nearby seeds give unrelated streams.
            state: mix64(seed ^ 0x9e37_79b9_7f4a_7c15),
            seen: 0,
            rows: Vec::new(),
        }
    }

    /// splitmix64 step.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Observes one row.
    pub fn insert(&mut self, row: &[Value]) {
        self.seen += 1;
        if self.rows.len() < self.capacity {
            self.rows.push(row.to_vec());
            return;
        }
        if self.capacity == 0 {
            return;
        }
        // Algorithm R: replace slot j with probability capacity/seen.
        let j = self.next_u64() % self.seen;
        if (j as usize) < self.capacity {
            self.rows[j as usize] = row.to_vec();
        }
    }

    /// The current sample, in reservoir slot order.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Total rows ever observed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Sample size currently held (`min(capacity, seen)`).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Maximum sample size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The seed this reservoir draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Streaming statistics for one partition of a table: one
/// [`DistinctSketch`] per column plus a [`RowReservoir`] row sample.
#[derive(Debug, Clone)]
pub struct PartitionSketch {
    /// Per-column distinct sketches, in schema order.
    pub columns: Vec<DistinctSketch>,
    /// Uniform row sample of this partition's insert stream.
    pub reservoir: RowReservoir,
    /// Rows ever routed to this partition.
    pub rows: u64,
}

impl PartitionSketch {
    /// Empty statistics for a partition of a `columns`-wide table.
    pub fn new(columns: usize, precision: u8, sample_capacity: usize, seed: u64) -> Self {
        Self {
            columns: (0..columns)
                .map(|_| DistinctSketch::with_precision(precision))
                .collect(),
            reservoir: RowReservoir::new(sample_capacity, seed),
            rows: 0,
        }
    }

    /// Observes one row: every column sketch and the reservoir see it.
    pub fn observe(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.columns.len(), "row arity vs sketch arity");
        for (sketch, v) in self.columns.iter_mut().zip(row) {
            sketch.insert(v);
        }
        self.reservoir.insert(row);
        self.rows += 1;
    }
}

/// Streaming statistics for a whole table: one [`PartitionSketch`] per
/// partition (a single partition for unpartitioned tables), merged on
/// demand for table-level estimates.
///
/// Shared immutably behind an `Arc`; the ingest path builds an updated
/// copy and republishes, matching the engine's snapshot semantics.
#[derive(Debug, Clone)]
pub struct TableSketches {
    name: String,
    columns: Vec<String>,
    partitions: Vec<PartitionSketch>,
}

impl TableSketches {
    /// Empty statistics for `partition_count` partitions of a table
    /// with the given columns (in schema order).
    ///
    /// Per-partition reservoirs draw from sub-seeds derived the same
    /// way the stratified synopsis builder derives its partition seeds
    /// (`seed ^ ((p + 1) << 16)`), so streams never collide.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<String>,
        partition_count: usize,
        precision: u8,
        sample_capacity: usize,
        seed: u64,
    ) -> Self {
        let width = columns.len();
        Self {
            name: name.into(),
            columns,
            partitions: (0..partition_count)
                .map(|p| {
                    PartitionSketch::new(
                        width,
                        precision,
                        sample_capacity,
                        seed ^ ((p as u64 + 1) << 16),
                    )
                })
                .collect(),
        }
    }

    /// The table these statistics describe.
    pub fn table(&self) -> &str {
        &self.name
    }

    /// Column names in schema order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Ordinal of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Bulk-seeds statistics from an already-stored table so the
    /// sketches cover rows that predate streaming; subsequent inserts
    /// maintain them incrementally.  Partitioned tables attribute each
    /// stored row to its partition via the layout's RID spans.
    pub fn seeded_from_table(
        table: &rqo_storage::Table,
        layout: Option<&rqo_storage::Partitioning>,
        precision: u8,
        sample_capacity: usize,
        seed: u64,
    ) -> Self {
        let columns = table
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let partition_count = layout.map_or(1, |l| l.partition_count());
        let mut out = Self::new(
            table.name(),
            columns,
            partition_count,
            precision,
            sample_capacity,
            seed,
        );
        match layout {
            Some(l) => {
                for (p, span) in l.spans().iter().enumerate() {
                    for rid in span.clone() {
                        out.observe(p, &table.row(rid as rqo_storage::Rid));
                    }
                }
            }
            None => {
                for rid in 0..table.num_rows() {
                    out.observe(0, &table.row(rid as rqo_storage::Rid));
                }
            }
        }
        out
    }

    /// Number of partitions tracked.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Per-partition statistics.
    pub fn partition(&self, p: usize) -> &PartitionSketch {
        &self.partitions[p]
    }

    /// Routes one row's statistics update to partition `p`.
    pub fn observe(&mut self, p: usize, row: &[Value]) {
        self.partitions[p].observe(row);
    }

    /// Total rows observed across all partitions.
    pub fn rows(&self) -> u64 {
        self.partitions.iter().map(|p| p.rows).sum()
    }

    /// The table-level distinct sketch for a column: the merge of every
    /// partition's sketch, computed on demand.
    pub fn merged_column(&self, col: usize) -> DistinctSketch {
        let mut merged = self.partitions[0].columns[col].clone();
        for p in &self.partitions[1..] {
            merged.merge(&p.columns[col]);
        }
        merged
    }

    /// Table-level distinct estimate for a column.
    pub fn column_distinct(&self, col: usize) -> f64 {
        self.merged_column(col).estimate()
    }
}

/// A shared, immutable set of [`TableSketches`] keyed by table name —
/// the streaming counterpart of `SynopsisRepository`, published by the
/// engine alongside the catalog snapshot.
#[derive(Debug, Clone, Default)]
pub struct SketchRepository {
    tables: Vec<Arc<TableSketches>>,
}

impl SketchRepository {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics for a table, if ingest has touched it.
    pub fn for_table(&self, name: &str) -> Option<&Arc<TableSketches>> {
        self.tables.iter().find(|t| t.table() == name)
    }

    /// Installs (or replaces) a table's statistics.
    pub fn publish(&mut self, sketches: Arc<TableSketches>) {
        match self
            .tables
            .iter_mut()
            .find(|t| t.table() == sketches.table())
        {
            Some(slot) => *slot = sketches,
            None => self.tables.push(sketches),
        }
    }

    /// All tracked tables.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<TableSketches>> {
        self.tables.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: impl Iterator<Item = i64>) -> DistinctSketch {
        let mut s = DistinctSketch::new();
        for v in values {
            s.insert(&Value::Int(v));
        }
        s
    }

    #[test]
    fn estimates_track_true_cardinality() {
        for &n in &[1i64, 10, 100, 1_000, 50_000, 200_000] {
            let s = sketch_of(0..n);
            let est = s.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            let bound = if n < 1_000 { 0.02 } else { 0.05 };
            assert!(
                rel <= bound,
                "n={n}: estimate {est:.1} off by {:.2}%",
                rel * 100.0
            );
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = DistinctSketch::new();
        for _ in 0..10 {
            for v in 0..500i64 {
                s.insert(&Value::Int(v));
            }
        }
        let est = s.estimate();
        assert!((est - 500.0).abs() / 500.0 < 0.05, "estimate {est}");
    }

    #[test]
    fn merge_is_union() {
        let a = sketch_of(0..10_000);
        let b = sketch_of(5_000..15_000);
        let m = a.merged(&b);
        let est = m.estimate();
        assert!((est - 15_000.0).abs() / 15_000.0 < 0.05, "union {est}");
        // Commutative.
        assert_eq!(m, b.merged(&a));
    }

    #[test]
    fn insert_then_merge_equals_merge_then_insert() {
        let mut a = sketch_of(0..100);
        let b = sketch_of(100..200);
        let mut merged_first = a.merged(&b);
        merged_first.insert(&Value::Int(999));
        a.insert(&Value::Int(999));
        assert_eq!(a.merged(&b), merged_first);
    }

    #[test]
    fn numeric_coercions_count_once() {
        let mut s = DistinctSketch::new();
        s.insert(&Value::Int(42));
        s.insert(&Value::Float(42.0));
        s.insert(&Value::Date(42));
        let one = {
            let mut t = DistinctSketch::new();
            t.insert(&Value::Int(42));
            t
        };
        assert_eq!(s, one, "coercion-equal values must hash identically");
    }

    #[test]
    fn serde_roundtrip_and_rejection() {
        let s = sketch_of(0..12_345);
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), 2 + (1 << DEFAULT_PRECISION));
        let back = DistinctSketch::from_bytes(&bytes).unwrap();
        assert_eq!(s, back);

        assert_eq!(
            DistinctSketch::from_bytes(&[]),
            Err(SketchDecodeError::Truncated)
        );
        assert_eq!(
            DistinctSketch::from_bytes(&[9, 14]),
            Err(SketchDecodeError::BadVersion(9))
        );
        assert_eq!(
            DistinctSketch::from_bytes(&[1, 40]),
            Err(SketchDecodeError::BadPrecision(40))
        );
        assert!(matches!(
            DistinctSketch::from_bytes(&bytes[..100]),
            Err(SketchDecodeError::LengthMismatch { .. })
        ));
        let mut bad = bytes.clone();
        bad[2] = 64; // max rank at p=14 is 51
        assert!(matches!(
            DistinctSketch::from_bytes(&bad),
            Err(SketchDecodeError::BadRegister {
                index: 0,
                value: 64
            })
        ));
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_rejects_mixed_precision() {
        let mut a = DistinctSketch::with_precision(10);
        a.merge(&DistinctSketch::with_precision(12));
    }

    #[test]
    fn reservoir_is_deterministic_and_uniform() {
        let mut r1 = RowReservoir::new(50, 7);
        let mut r2 = RowReservoir::new(50, 7);
        for i in 0..10_000i64 {
            r1.insert(&[Value::Int(i)]);
            r2.insert(&[Value::Int(i)]);
        }
        assert_eq!(r1.rows(), r2.rows(), "same seed, same stream, same sample");
        assert_eq!(r1.seen(), 10_000);
        assert_eq!(r1.len(), 50);
        // Different seed should (overwhelmingly) give a different sample.
        let mut r3 = RowReservoir::new(50, 8);
        for i in 0..10_000i64 {
            r3.insert(&[Value::Int(i)]);
        }
        assert_ne!(r1.rows(), r3.rows());
        // Inclusion probability: each of 200 items appears in ~25% of
        // 50-slot reservoirs over 200 inserts.
        let mut hits = vec![0usize; 200];
        for seed in 0..400u64 {
            let mut r = RowReservoir::new(50, seed);
            for i in 0..200i64 {
                r.insert(&[Value::Int(i)]);
            }
            for row in r.rows() {
                if let Value::Int(i) = row[0] {
                    hits[i as usize] += 1;
                }
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            let p = h as f64 / 400.0;
            assert!((0.15..0.36).contains(&p), "item {i}: inclusion {p}");
        }
    }

    #[test]
    fn reservoir_small_and_zero_capacity() {
        let mut r = RowReservoir::new(0, 1);
        r.insert(&[Value::Int(1)]);
        assert!(r.is_empty());
        assert_eq!(r.seen(), 1);
        let mut r = RowReservoir::new(10, 1);
        for i in 0..5i64 {
            r.insert(&[Value::Int(i)]);
        }
        assert_eq!(r.len(), 5, "under capacity keeps everything");
    }

    #[test]
    fn table_sketches_merge_partitions() {
        let mut ts = TableSketches::new(
            "t",
            vec!["a".into(), "b".into()],
            4,
            DEFAULT_PRECISION,
            32,
            42,
        );
        assert_eq!(ts.column_index("b"), Some(1));
        assert_eq!(ts.column_index("z"), None);
        for i in 0..40_000i64 {
            let p = (i % 4) as usize;
            ts.observe(p, &[Value::Int(i), Value::Int(i % 100)]);
        }
        assert_eq!(ts.rows(), 40_000);
        let d0 = ts.column_distinct(0);
        assert!((d0 - 40_000.0).abs() / 40_000.0 < 0.05, "col 0 {d0}");
        let d1 = ts.column_distinct(1);
        assert!((d1 - 100.0).abs() / 100.0 < 0.05, "col 1 {d1}");
        // Each partition saw a quarter of the keyspace.
        let p0 = ts.partition(0).columns[0].estimate();
        assert!((p0 - 10_000.0).abs() / 10_000.0 < 0.05, "partition 0 {p0}");
        assert_eq!(ts.partition(0).reservoir.len(), 32);
    }

    #[test]
    fn repository_publish_and_lookup() {
        let mut repo = SketchRepository::new();
        assert!(repo.for_table("t").is_none());
        repo.publish(Arc::new(TableSketches::new(
            "t",
            vec!["x".into()],
            1,
            10,
            8,
            1,
        )));
        assert!(repo.for_table("t").is_some());
        let mut ts = TableSketches::new("t", vec!["x".into()], 1, 10, 8, 1);
        ts.observe(0, &[Value::Int(5)]);
        repo.publish(Arc::new(ts));
        assert_eq!(repo.for_table("t").unwrap().rows(), 1);
        assert_eq!(repo.tables().count(), 1);
    }
}
