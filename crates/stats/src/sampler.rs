//! Uniform random row samplers.
//!
//! The paper's Bayesian derivation (§3.3) assumes tuples drawn uniformly
//! *with replacement*, making the per-tuple indicator variables i.i.d.
//! Bernoulli and the posterior an exact Beta distribution; that is the
//! sampler the robust estimator uses.  A without-replacement (reservoir)
//! sampler is also provided for consumers that need distinct rows (e.g.
//! distinct-value estimation), where with-replacement duplicates would
//! bias frequency statistics.

use rand::Rng;
use rqo_storage::{Rid, Table};

/// Draws `n` row ids uniformly at random **with replacement**.
///
/// Returns an empty vector for an empty table (there is nothing to
/// observe; the caller falls back to its no-statistics path).
pub fn sample_with_replacement<R: Rng + ?Sized>(table: &Table, n: usize, rng: &mut R) -> Vec<Rid> {
    if table.num_rows() == 0 {
        return Vec::new();
    }
    (0..n)
        .map(|_| rng.gen_range(0..table.num_rows() as Rid))
        .collect()
}

/// Draws `min(n, rows)` distinct row ids uniformly at random **without
/// replacement** using reservoir sampling (Vitter's Algorithm R).
///
/// The result is in reservoir order (not sorted); callers that need
/// position-independent output should sort.
pub fn sample_without_replacement<R: Rng + ?Sized>(
    table: &Table,
    n: usize,
    rng: &mut R,
) -> Vec<Rid> {
    let rows = table.num_rows();
    let mut reservoir: Vec<Rid> = (0..rows.min(n) as Rid).collect();
    for rid in n..rows {
        let j = rng.gen_range(0..=rid);
        if j < n {
            reservoir[j] = rid as Rid;
        }
    }
    reservoir
}

/// [`sample_without_replacement`] with the result sorted ascending by row
/// id.
///
/// Reservoir order leaks the internal replacement sequence: two samples
/// containing the *same rows* can arrive in different orders depending on
/// which rid evicted which slot, so any consumer whose output depends on
/// element order (e.g. a streaming histogram build) would silently become
/// seed-and-history dependent.  The sort makes the sample a canonical set:
/// same rows in, same vector out, regardless of how the reservoir
/// happened to fill.  Statistics builders should use this entry point.
pub fn sample_without_replacement_sorted<R: Rng + ?Sized>(
    table: &Table,
    n: usize,
    rng: &mut R,
) -> Vec<Rid> {
    let mut s = sample_without_replacement(table, n, rng);
    s.sort_unstable();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rqo_storage::{DataType, Schema, TableBuilder, Value};

    fn table(rows: usize) -> Table {
        let mut b = TableBuilder::new("t", Schema::from_pairs(&[("x", DataType::Int)]), rows);
        for i in 0..rows {
            b.push_row(&[Value::Int(i as i64)]);
        }
        b.finish()
    }

    #[test]
    fn with_replacement_size_and_range() {
        let t = table(100);
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_with_replacement(&t, 500, &mut rng);
        assert_eq!(s.len(), 500);
        assert!(s.iter().all(|&r| (r as usize) < 100));
        // With replacement over 100 rows, 500 draws must repeat.
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() < 500);
    }

    #[test]
    fn with_replacement_is_roughly_uniform() {
        let t = table(10);
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample_with_replacement(&t, 100_000, &mut rng);
        let mut counts = [0usize; 10];
        for r in s {
            counts[r as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((8_000..12_000).contains(&c), "row {i} drawn {c} times");
        }
    }

    #[test]
    fn without_replacement_distinct_and_uniform() {
        let t = table(100);
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_without_replacement(&t, 30, &mut rng);
        assert_eq!(s.len(), 30);
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 30);

        // Inclusion probability check: each row should appear in ~30% of
        // repeated samples.
        let mut hits = vec![0usize; 100];
        for _ in 0..2000 {
            for r in sample_without_replacement(&t, 30, &mut rng) {
                hits[r as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            let p = h as f64 / 2000.0;
            assert!((0.24..0.36).contains(&p), "row {i}: inclusion {p}");
        }
    }

    #[test]
    fn sorted_sample_is_canonical_and_reproducible() {
        let t = table(200);
        // Same seed → identical vector.
        let a = sample_without_replacement_sorted(&t, 50, &mut StdRng::seed_from_u64(7));
        let b = sample_without_replacement_sorted(&t, 50, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        // Full coverage (n ≥ rows) is exactly 0..rows for any seed.
        let full1 = sample_without_replacement_sorted(&t, 200, &mut StdRng::seed_from_u64(1));
        let full2 = sample_without_replacement_sorted(&t, 200, &mut StdRng::seed_from_u64(99));
        assert_eq!(full1, full2);
        assert_eq!(full1, (0..200).collect::<Vec<Rid>>());
        // The raw reservoir is NOT in rid order for partial samples —
        // evictions overwrite arbitrary slots — which is the
        // position-dependence the sorted variant exists to remove.
        let raw = sample_without_replacement(&t, 50, &mut StdRng::seed_from_u64(7));
        assert!(
            raw.windows(2).any(|w| w[0] > w[1]),
            "reservoir order should be scrambled for a partial sample"
        );
    }

    #[test]
    fn small_table_edge_cases() {
        let t = table(5);
        let mut rng = StdRng::seed_from_u64(4);
        // Requesting more than available without replacement returns all.
        let s = sample_without_replacement(&t, 10, &mut rng);
        assert_eq!(s.len(), 5);
        // With replacement happily oversamples.
        let s = sample_with_replacement(&t, 10, &mut rng);
        assert_eq!(s.len(), 10);
        // Empty table.
        let e = table(0);
        assert!(sample_with_replacement(&e, 10, &mut rng).is_empty());
        assert!(sample_without_replacement(&e, 10, &mut rng).is_empty());
    }
}
