//! Equi-depth (equi-height) single-column histograms — the baseline
//! summary the paper compares against.
//!
//! The commercial system in the paper keeps ~250-bucket histograms per
//! column, each bucket storing a boundary value, a row count, and a
//! distinct count (§6.1).  This module reproduces that: buckets hold equal
//! row counts; range selectivities interpolate linearly within partially
//! overlapped buckets (the *continuous values* assumption); equality
//! selectivities assume uniform frequency across a bucket's distinct
//! values.  Multi-predicate combination — the attribute-value-independence
//! product — is deliberately *not* done here: it lives in the estimator
//! layer, because it is an estimator policy, not a property of the
//! summary.

use std::ops::Bound;

use rqo_storage::{DataType, Table, Value};

/// The paper's histogram resolution (≈ what the commercial DBMS used).
pub const DEFAULT_BUCKETS: usize = 250;

/// One bucket: `[lo, hi]` (inclusive), with row and distinct counts.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bucket {
    lo: f64,
    hi: f64,
    rows: u64,
    distinct: u64,
}

/// An equi-depth histogram over one numeric (`Int`/`Float`/`Date`) column.
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram {
    table: String,
    column: String,
    data_type: DataType,
    total_rows: u64,
    buckets: Vec<Bucket>,
}

impl EquiDepthHistogram {
    /// Builds a histogram with at most `num_buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics when the column is missing, non-numeric (`Str`/`Bool`
    /// columns have no ordering useful to a range histogram — the paper's
    /// baseline also only histograms sortable columns), or when
    /// `num_buckets` is zero.
    pub fn build(table: &Table, column: &str, num_buckets: usize) -> Self {
        assert!(num_buckets > 0, "histogram needs at least one bucket");
        let col = table.schema().expect_index(column);
        let dt = table.schema().column(col).data_type;
        let mut values: Vec<f64> = match dt {
            DataType::Int => table.int_column(col).iter().map(|&v| v as f64).collect(),
            DataType::Float => table.float_column(col).to_vec(),
            DataType::Date => table.date_column(col).iter().map(|&v| v as f64).collect(),
            other => panic!("cannot build range histogram over {other} column {column:?}"),
        };
        values.sort_unstable_by(f64::total_cmp);
        Self::from_sorted_values(table, column, dt, num_buckets, &values)
    }

    /// Builds a histogram from a without-replacement row sample instead of
    /// the full column — the incremental-statistics path, where rescanning
    /// a large table per refresh would defeat the point.
    ///
    /// The sample rids come from
    /// [`crate::sampler::sample_without_replacement_sorted`]: the *sorted*
    /// variant matters here because the per-bucket row counts are scaled
    /// by `rows/sample` and bucket boundaries come from sample order —
    /// a reservoir-ordered sample would build the same buckets only by
    /// luck of eviction order once any consumer keys off positions.  With
    /// sorted rids the result is a pure function of (seed, table, column):
    /// same seed → identical histogram, and a full-coverage sample
    /// (`sample_size ≥ rows`) is identical to [`Self::build`] for *any*
    /// seed.
    pub fn build_sampled<R: rand::Rng + ?Sized>(
        table: &Table,
        column: &str,
        num_buckets: usize,
        sample_size: usize,
        rng: &mut R,
    ) -> Self {
        assert!(num_buckets > 0, "histogram needs at least one bucket");
        let col = table.schema().expect_index(column);
        let dt = table.schema().column(col).data_type;
        let rids = crate::sampler::sample_without_replacement_sorted(table, sample_size, rng);
        let mut values: Vec<f64> = rids
            .iter()
            .map(|&rid| match dt {
                DataType::Int => table.int_column(col)[rid as usize] as f64,
                DataType::Float => table.float_column(col)[rid as usize],
                DataType::Date => table.date_column(col)[rid as usize] as f64,
                other => panic!("cannot build range histogram over {other} column {column:?}"),
            })
            .collect();
        values.sort_unstable_by(f64::total_cmp);
        let mut h = Self::from_sorted_values(table, column, dt, num_buckets, &values);
        // Scale bucket row counts from the sample up to the population so
        // range_selectivity keeps its rows/total semantics.
        let rows = table.num_rows() as u64;
        if !values.is_empty() && rows > values.len() as u64 {
            let scale = rows as f64 / values.len() as f64;
            for b in &mut h.buckets {
                b.rows = ((b.rows as f64) * scale).round().max(1.0) as u64;
            }
            h.total_rows = h.buckets.iter().map(|b| b.rows).sum();
        }
        h
    }

    /// Shared bucket construction over an already-sorted value vector.
    fn from_sorted_values(
        table: &Table,
        column: &str,
        dt: DataType,
        num_buckets: usize,
        values: &[f64],
    ) -> Self {
        let total_rows = values.len() as u64;
        let mut buckets = Vec::with_capacity(num_buckets.min(values.len().max(1)));
        if !values.is_empty() {
            let per = values.len().div_ceil(num_buckets);
            let mut start = 0usize;
            while start < values.len() {
                let end = (start + per).min(values.len());
                let slice = &values[start..end];
                let mut distinct = 1u64;
                for w in slice.windows(2) {
                    if w[0] != w[1] {
                        distinct += 1;
                    }
                }
                buckets.push(Bucket {
                    lo: slice[0],
                    hi: slice[slice.len() - 1],
                    rows: slice.len() as u64,
                    distinct,
                });
                start = end;
            }
        }
        Self {
            table: table.name().to_string(),
            column: column.to_string(),
            data_type: dt,
            total_rows,
            buckets,
        }
    }

    /// The histogrammed table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The histogrammed column.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Number of buckets actually built.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total rows summarized.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Approximate stored size in bytes: per bucket one boundary value and
    /// two counters (the §6.1 space-parity accounting: 8-byte value +
    /// 2×4-byte counters).
    pub fn stored_bytes(&self) -> usize {
        self.buckets.len() * 16
    }

    /// Estimated selectivity of `column ∈ (lo, hi)` under the bounds'
    /// open/closedness, with linear interpolation inside buckets.
    pub fn range_selectivity(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> f64 {
        if self.total_rows == 0 {
            return 0.0;
        }
        // Normalize to a closed numeric interval.  For discrete domains
        // (Int/Date) exclusive bounds shift by one; for floats the
        // continuous assumption makes open/closed indistinguishable.
        let lo = match lo {
            Bound::Unbounded => f64::NEG_INFINITY,
            Bound::Included(v) => v.as_f64(),
            Bound::Excluded(v) => v.as_f64() + self.discrete_step(),
        };
        let hi = match hi {
            Bound::Unbounded => f64::INFINITY,
            Bound::Included(v) => v.as_f64(),
            Bound::Excluded(v) => v.as_f64() - self.discrete_step(),
        };
        if lo > hi {
            return 0.0;
        }
        let mut rows = 0.0;
        for b in &self.buckets {
            rows += overlap_rows(b, lo, hi);
        }
        (rows / self.total_rows as f64).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `column = v`: within the containing
    /// bucket(s), frequency is assumed uniform across distinct values.
    pub fn eq_selectivity(&self, v: &Value) -> f64 {
        if self.total_rows == 0 {
            return 0.0;
        }
        let x = v.as_f64();
        let mut rows = 0.0;
        for b in &self.buckets {
            if x >= b.lo && x <= b.hi {
                rows += b.rows as f64 / b.distinct as f64;
            }
        }
        (rows / self.total_rows as f64).clamp(0.0, 1.0)
    }

    /// Estimated number of distinct values over the whole column.
    pub fn distinct_estimate(&self) -> u64 {
        self.buckets.iter().map(|b| b.distinct).sum()
    }

    fn discrete_step(&self) -> f64 {
        match self.data_type {
            DataType::Int | DataType::Date => 1.0,
            _ => 0.0,
        }
    }
}

/// Rows of bucket `b` falling inside `[lo, hi]`, by linear interpolation.
fn overlap_rows(b: &Bucket, lo: f64, hi: f64) -> f64 {
    let a = lo.max(b.lo);
    let z = hi.min(b.hi);
    if a > z {
        return 0.0;
    }
    if b.hi == b.lo {
        return b.rows as f64; // single-value bucket, fully inside
    }
    b.rows as f64 * (z - a) / (b.hi - b.lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_storage::{Schema, TableBuilder};

    fn int_table(values: &[i64]) -> Table {
        let mut b = TableBuilder::new(
            "t",
            Schema::from_pairs(&[("x", DataType::Int)]),
            values.len(),
        );
        for &v in values {
            b.push_row(&[Value::Int(v)]);
        }
        b.finish()
    }

    fn uniform_0_to_999() -> Table {
        int_table(&(0..1000).collect::<Vec<i64>>())
    }

    #[test]
    fn bucket_structure() {
        let t = uniform_0_to_999();
        let h = EquiDepthHistogram::build(&t, "x", 10);
        assert_eq!(h.num_buckets(), 10);
        assert_eq!(h.total_rows(), 1000);
        assert_eq!(h.stored_bytes(), 160);
        assert_eq!(h.distinct_estimate(), 1000);
        assert_eq!(h.table(), "t");
        assert_eq!(h.column(), "x");
    }

    #[test]
    fn range_selectivity_uniform_data() {
        let t = uniform_0_to_999();
        let h = EquiDepthHistogram::build(&t, "x", 50);
        let sel = h.range_selectivity(
            Bound::Included(&Value::Int(100)),
            Bound::Included(&Value::Int(299)),
        );
        assert!((sel - 0.2).abs() < 0.02, "sel = {sel}");
        // Unbounded sides.
        let sel = h.range_selectivity(Bound::Unbounded, Bound::Included(&Value::Int(499)));
        assert!((sel - 0.5).abs() < 0.02, "sel = {sel}");
        let sel = h.range_selectivity(Bound::Included(&Value::Int(900)), Bound::Unbounded);
        assert!((sel - 0.1).abs() < 0.02, "sel = {sel}");
        // Full range.
        let sel = h.range_selectivity(Bound::Unbounded, Bound::Unbounded);
        assert!((sel - 1.0).abs() < 1e-9);
        // Empty and inverted ranges.
        let sel = h.range_selectivity(
            Bound::Included(&Value::Int(5000)),
            Bound::Included(&Value::Int(6000)),
        );
        assert_eq!(sel, 0.0);
        let sel = h.range_selectivity(
            Bound::Included(&Value::Int(500)),
            Bound::Included(&Value::Int(100)),
        );
        assert_eq!(sel, 0.0);
    }

    #[test]
    fn exclusive_bounds_on_integers() {
        let t = int_table(&[1, 2, 3, 4, 5]);
        let h = EquiDepthHistogram::build(&t, "x", 5);
        // x < 3 → {1, 2} = 40%
        let sel = h.range_selectivity(Bound::Unbounded, Bound::Excluded(&Value::Int(3)));
        assert!((sel - 0.4).abs() < 0.05, "sel = {sel}");
        // x > 3 → {4, 5} = 40%
        let sel = h.range_selectivity(Bound::Excluded(&Value::Int(3)), Bound::Unbounded);
        assert!((sel - 0.4).abs() < 0.05, "sel = {sel}");
    }

    #[test]
    fn eq_selectivity_skewed_data() {
        // 900 copies of 7 plus 100 distinct values: an equality lookup on 7
        // should be ≈90% if 7 dominates its bucket(s).
        let mut vals = vec![7i64; 900];
        vals.extend(1000..1100);
        let t = int_table(&vals);
        let h = EquiDepthHistogram::build(&t, "x", 10);
        let sel = h.eq_selectivity(&Value::Int(7));
        assert!(sel > 0.5, "sel = {sel}");
        // A value outside every bucket.
        assert_eq!(h.eq_selectivity(&Value::Int(5_000)), 0.0);
    }

    #[test]
    fn single_value_column() {
        let t = int_table(&[42; 100]);
        let h = EquiDepthHistogram::build(&t, "x", 10);
        assert!((h.eq_selectivity(&Value::Int(42)) - 1.0).abs() < 1e-9);
        let sel = h.range_selectivity(
            Bound::Included(&Value::Int(0)),
            Bound::Included(&Value::Int(100)),
        );
        assert!((sel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_table() {
        let t = int_table(&[]);
        let h = EquiDepthHistogram::build(&t, "x", 10);
        assert_eq!(h.num_buckets(), 0);
        assert_eq!(h.range_selectivity(Bound::Unbounded, Bound::Unbounded), 0.0);
        assert_eq!(h.eq_selectivity(&Value::Int(1)), 0.0);
    }

    #[test]
    fn float_and_date_columns() {
        let mut b = TableBuilder::new(
            "t",
            Schema::from_pairs(&[("f", DataType::Float), ("d", DataType::Date)]),
            100,
        );
        for i in 0..100 {
            b.push_row(&[Value::Float(i as f64 / 10.0), Value::Date(i)]);
        }
        let t = b.finish();
        let hf = EquiDepthHistogram::build(&t, "f", 10);
        let sel = hf.range_selectivity(
            Bound::Included(&Value::Float(2.0)),
            Bound::Included(&Value::Float(4.0)),
        );
        assert!((sel - 0.2).abs() < 0.05, "float sel {sel}");
        let hd = EquiDepthHistogram::build(&t, "d", 10);
        let sel = hd.range_selectivity(
            Bound::Included(&Value::Date(50)),
            Bound::Included(&Value::Date(99)),
        );
        assert!((sel - 0.5).abs() < 0.05, "date sel {sel}");
    }

    #[test]
    fn sampled_build_is_seed_stable_and_matches_full_at_coverage() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let t = uniform_0_to_999();
        // Full coverage: identical to the exact build for ANY seed — this
        // is the determinism property the sorted sampler guarantees.
        let full = EquiDepthHistogram::build(&t, "x", 10);
        for seed in [1u64, 42, 99] {
            let h = EquiDepthHistogram::build_sampled(
                &t,
                "x",
                10,
                2000,
                &mut StdRng::seed_from_u64(seed),
            );
            assert_eq!(h.num_buckets(), full.num_buckets(), "seed {seed}");
            assert_eq!(h.total_rows(), full.total_rows(), "seed {seed}");
            assert_eq!(h.buckets, full.buckets, "seed {seed}");
        }
        // Partial sample: same seed → identical histogram (reproducible),
        // and selectivities stay close to the exact ones.
        let a = EquiDepthHistogram::build_sampled(&t, "x", 10, 200, &mut StdRng::seed_from_u64(7));
        let b = EquiDepthHistogram::build_sampled(&t, "x", 10, 200, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.total_rows(), b.total_rows());
        let sel = a.range_selectivity(
            Bound::Included(&Value::Int(100)),
            Bound::Included(&Value::Int(299)),
        );
        assert!((sel - 0.2).abs() < 0.08, "sampled sel = {sel}");
    }

    #[test]
    #[should_panic(expected = "cannot build range histogram")]
    fn rejects_string_column() {
        let mut b = TableBuilder::new("t", Schema::from_pairs(&[("s", DataType::Str)]), 1);
        b.push_row(&[Value::str("a")]);
        EquiDepthHistogram::build(&b.finish(), "s", 10);
    }

    #[test]
    fn histogram_is_blind_to_correlation() {
        // The defining failure mode the paper exploits: two perfectly
        // correlated columns look identical to per-column histograms
        // whether or not the joint predicate is satisfiable.
        let n = 1000i64;
        let mut b = TableBuilder::new(
            "t",
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]),
            n as usize,
        );
        for i in 0..n {
            b.push_row(&[Value::Int(i), Value::Int(i)]); // b == a
        }
        let t = b.finish();
        let ha = EquiDepthHistogram::build(&t, "a", 50);
        let hb = EquiDepthHistogram::build(&t, "b", 50);
        let sa = ha.range_selectivity(
            Bound::Included(&Value::Int(0)),
            Bound::Included(&Value::Int(99)),
        );
        let sb_hit = hb.range_selectivity(
            Bound::Included(&Value::Int(0)),
            Bound::Included(&Value::Int(99)),
        );
        let sb_miss = hb.range_selectivity(
            Bound::Included(&Value::Int(900)),
            Bound::Included(&Value::Int(999)),
        );
        // AVI product is the same (~1%) for the fully-overlapping and the
        // fully-disjoint joint predicates, though the truth is 10% vs 0%.
        assert!((sa * sb_hit - 0.01).abs() < 0.005);
        assert!((sa * sb_miss - 0.01).abs() < 0.005);
    }
}
