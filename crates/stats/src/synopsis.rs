//! Join synopses (paper §3.2, after Acharya et al. 1999).
//!
//! Evaluating an SPJ expression on independent per-table samples does not
//! work: the probability that two small samples contain *matching* join
//! keys is tiny.  A join synopsis fixes this for foreign-key joins: take a
//! uniform sample of the *root* relation and join each sampled tuple with
//! the full referenced relations, recursively along every FK path.  The
//! result is a uniform sample of the (lossless) FK join rooted there, so
//! the selectivity of any predicate over any subset of the reached tables
//! can be estimated by directly evaluating the predicate on the synopsis —
//! one sample, no AVI assumption, no error propagation across subresults.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rqo_expr::Expr;
use rqo_storage::{Catalog, Rid, Table, TableBuilder};

use crate::sampler::sample_with_replacement;

/// A join synopsis rooted at one relation.
///
/// Row `i` of every component table corresponds to the same joined sample
/// tuple: `components["root"][i]` is the `i`-th sampled root row and
/// `components[S][i]` is the unique `S` row it (transitively) references.
#[derive(Debug, Clone)]
pub struct JoinSynopsis {
    root: String,
    sample_size: usize,
    components: Vec<(String, Table)>,
}

impl JoinSynopsis {
    /// Builds the synopsis for `root` with `sample_size` tuples drawn with
    /// replacement (the sampling model assumed by the Bayesian posterior).
    ///
    /// # Panics
    ///
    /// Panics when `root` is not in the catalog, when a referenced unique
    /// index is missing (the catalog builds them when FKs are declared),
    /// when a foreign key dangles, or when two FK paths reach the same
    /// table (role-distinct duplicate tables are future work, as in the
    /// paper's single-role join graphs).
    pub fn build(catalog: &Catalog, root: &str, sample_size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let root_table = catalog.table(root).expect("root table exists");
        let rids = sample_with_replacement(root_table, sample_size, &mut rng);
        Self::from_root_rids(catalog, root, &rids)
    }

    /// Builds a synopsis whose root sample is drawn (with replacement)
    /// from one partition's row span only — the unit of incremental
    /// statistics refresh.  Per-partition synopses for the same root are
    /// concatenated with [`JoinSynopsis::merge`] into the table-level
    /// synopsis the estimator consumes; rebuilding one partition's piece
    /// and re-merging refreshes that partition's contribution without
    /// touching the others.
    pub fn build_for_partition(
        catalog: &Catalog,
        root: &str,
        span: Range<usize>,
        sample_size: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rids: Vec<Rid> = if span.is_empty() {
            Vec::new()
        } else {
            (0..sample_size)
                .map(|_| rng.gen_range(span.start as Rid..span.end as Rid))
                .collect()
        };
        Self::from_root_rids(catalog, root, &rids)
    }

    /// Concatenates per-partition pieces (in partition order) into one
    /// synopsis.  Every piece shares the same FK closure — it is derived
    /// from the catalog's FK graph, not from the sampled rows — so the
    /// merge is a component-wise row concatenation.  Proportionally
    /// allocated piece sizes make the result a stratified uniform sample
    /// of the root.
    pub fn merge(root: &str, pieces: &[JoinSynopsis]) -> Self {
        let first = pieces.first().expect("at least one piece to merge");
        let components = first
            .components
            .iter()
            .enumerate()
            .map(|(c, (name, table))| {
                let total: usize = pieces.iter().map(|p| p.components[c].1.num_rows()).sum();
                let mut b = TableBuilder::new(name, table.schema().clone(), total);
                for piece in pieces {
                    let (pname, ptable) = &piece.components[c];
                    assert_eq!(pname, name, "pieces share one FK closure");
                    for i in 0..ptable.num_rows() as u32 {
                        b.push_row(&ptable.row(i));
                    }
                }
                (name.clone(), b.finish())
            })
            .collect::<Vec<_>>();
        Self {
            root: root.to_string(),
            sample_size: components[0].1.num_rows(),
            components,
        }
    }

    /// The FK-closure construction shared by all build paths: joins each
    /// sampled root row with the full referenced relations.
    fn from_root_rids(catalog: &Catalog, root: &str, rids: &[Rid]) -> Self {
        let root_table = catalog.table(root).expect("root table exists");

        // Root component.
        let mut components: Vec<(String, Table)> = Vec::new();
        let mut b = TableBuilder::new(root, root_table.schema().clone(), rids.len());
        for &rid in rids {
            b.push_row(&root_table.row(rid));
        }
        components.push((root.to_string(), b.finish()));

        // Breadth-first FK closure.
        let mut frontier = vec![root.to_string()];
        while let Some(from) = frontier.pop() {
            let fks: Vec<_> = catalog.foreign_keys_from(&from).cloned().collect();
            for fk in fks {
                assert!(
                    !components.iter().any(|(name, _)| *name == fk.to_table),
                    "table {} reached by more than one FK path; role-distinct \
                     synopses are not supported",
                    fk.to_table
                );
                let from_component = &components
                    .iter()
                    .find(|(name, _)| *name == fk.from_table)
                    .expect("component built before traversal")
                    .1;
                let key_col = from_component.schema().expect_index(&fk.from_column);
                let target = catalog.table(&fk.to_table).expect("FK target exists");
                let index = catalog
                    .unique_index(&fk.to_table, &fk.to_column)
                    .unwrap_or_else(|| {
                        panic!(
                            "unique index on {}.{} missing; declare the FK through \
                             Catalog::add_foreign_key",
                            fk.to_table, fk.to_column
                        )
                    });
                let mut b = TableBuilder::new(
                    &fk.to_table,
                    target.schema().clone(),
                    from_component.num_rows(),
                );
                for i in 0..from_component.num_rows() as u32 {
                    let key = from_component.value(i, key_col).as_int();
                    let target_rid = index.get(key).unwrap_or_else(|| {
                        panic!("dangling FK: {}.{} = {key}", fk.from_table, fk.from_column)
                    });
                    b.push_row(&target.row(target_rid));
                }
                components.push((fk.to_table.clone(), b.finish()));
                frontier.push(fk.to_table.clone());
            }
        }

        Self {
            root: root.to_string(),
            sample_size: rids.len(),
            components,
        }
    }

    /// The root relation.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Number of sample tuples (`n` in the Beta posterior).
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Tables covered by this synopsis (root first, then FK closure).
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.components.iter().map(|(n, _)| n.as_str())
    }

    /// True when every listed table is covered.
    pub fn covers<'a>(&self, tables: impl IntoIterator<Item = &'a str>) -> bool {
        tables
            .into_iter()
            .all(|t| self.components.iter().any(|(n, _)| n == t))
    }

    /// The sample component for one table.
    pub fn component(&self, table: &str) -> Option<&Table> {
        self.components
            .iter()
            .find(|(n, _)| n == table)
            .map(|(_, t)| t)
    }

    /// Evaluates per-table predicates against the synopsis, returning
    /// `(satisfying tuples, sample size)` — the `(k, n)` fed to the Beta
    /// posterior.  Tables participating in the query but carrying no
    /// predicate need not be listed: FK joins are lossless, so they do not
    /// filter.
    ///
    /// # Panics
    ///
    /// Panics when a predicate references a table outside the synopsis or
    /// a column outside that table.
    pub fn evaluate(&self, predicates: &[(&str, &Expr)]) -> (usize, usize) {
        // Bind each predicate to its component schema once.
        let bound: Vec<(&Table, Expr)> = predicates
            .iter()
            .map(|(table, expr)| {
                let component = self.component(table).unwrap_or_else(|| {
                    panic!(
                        "table {table:?} not covered by synopsis rooted at {:?}",
                        self.root
                    )
                });
                let b = expr
                    .bind(component.schema())
                    .unwrap_or_else(|e| panic!("binding predicate on {table:?}: {e}"));
                (component, b)
            })
            .collect();

        let mut k = 0usize;
        let mut row: Vec<rqo_storage::Value> = Vec::new();
        for i in 0..self.sample_size as u32 {
            let all = bound.iter().all(|(component, expr)| {
                row.clear();
                row.extend((0..component.schema().len()).map(|c| component.value(i, c)));
                rqo_expr::eval_bool(expr, &row)
            });
            if all {
                k += 1;
            }
        }
        (k, self.sample_size)
    }

    /// Approximate stored size in bytes (for the §6.1 storage-parity
    /// comparison against histograms).
    pub fn stored_bytes(&self) -> usize {
        self.components
            .iter()
            .map(|(_, t)| t.num_rows() * t.row_width_bytes())
            .sum()
    }
}

/// All join synopses for a catalog, one per relation.
///
/// Partitioned roots are sampled **per partition** (stratified, sample
/// budget allocated proportionally to partition row counts) and the pieces
/// kept alongside their merged table-level synopsis; the estimator only
/// ever sees the merged one, but [`SynopsisRepository::refresh_table`] can
/// rebuild a subset of a root's pieces and re-merge without re-sampling
/// the rest.
#[derive(Debug, Clone)]
pub struct SynopsisRepository {
    synopses: Vec<JoinSynopsis>,
    /// Per-partition pieces for partitioned roots, `(root, pieces)` with
    /// pieces aligned to the catalog's partition layout.
    pieces: Vec<(String, Vec<JoinSynopsis>)>,
    sample_size: usize,
    /// Streaming sketch statistics for tables touched by ingest.  Empty
    /// until the first insert; once a table streams, its distinct
    /// counts come from merged per-partition sketches instead of the
    /// (stale) offline sample.
    sketches: crate::sketch::SketchRepository,
}

/// Splits `sample_size` across partitions proportionally to their row
/// counts, assigning leftovers by largest fractional remainder (ties to
/// the lower partition index).  Deterministic; empty partitions get zero.
fn allocate_samples(sample_size: usize, lens: &[usize]) -> Vec<usize> {
    let total: usize = lens.iter().sum();
    if total == 0 {
        return vec![0; lens.len()];
    }
    let mut quotas: Vec<usize> = lens
        .iter()
        .map(|&l| sample_size * l / total) // floor of the exact share
        .collect();
    let assigned: usize = quotas.iter().sum();
    // Largest-remainder: rank partitions by sample_size*l mod total.
    let mut order: Vec<usize> = (0..lens.len()).collect();
    order.sort_by_key(|&p| (std::cmp::Reverse(sample_size * lens[p] % total), p));
    for &p in order.iter().take(sample_size - assigned) {
        quotas[p] += 1;
    }
    quotas
}

/// The deterministic sub-seed for partition `p` of a root whose own
/// sub-seed is `root_seed`.
fn partition_seed(root_seed: u64, p: usize) -> u64 {
    root_seed ^ ((p as u64 + 1) << 16)
}

impl SynopsisRepository {
    /// Builds one synopsis per registered table.  Each synopsis gets a
    /// distinct deterministic sub-seed derived from `seed`; partitioned
    /// tables are built piece-per-partition and merged.
    pub fn build_all(catalog: &Catalog, sample_size: usize, seed: u64) -> Self {
        let mut synopses = Vec::new();
        let mut pieces = Vec::new();
        for (i, t) in catalog.tables().enumerate() {
            let root_seed = seed ^ ((i as u64 + 1) << 32);
            match catalog.partitioning(t.name()) {
                Some(layout) => {
                    let root_pieces =
                        build_pieces(catalog, t.name(), layout.spans(), sample_size, root_seed);
                    synopses.push(JoinSynopsis::merge(t.name(), &root_pieces));
                    pieces.push((t.name().to_string(), root_pieces));
                }
                None => {
                    synopses.push(JoinSynopsis::build(
                        catalog,
                        t.name(),
                        sample_size,
                        root_seed,
                    ));
                }
            }
        }
        Self {
            synopses,
            pieces,
            sample_size,
            sketches: crate::sketch::SketchRepository::new(),
        }
    }

    /// Rebuilds the statistics of one table — and **only** that table.
    ///
    /// For a partitioned root with a non-empty `partitions` list, only the
    /// named partitions' pieces are re-sampled (under `seed`) and the
    /// table-level synopsis re-merged; the other partitions' pieces are
    /// byte-for-byte untouched.  For an unpartitioned root, or an empty
    /// `partitions` list, the whole root synopsis is rebuilt.  Synopses
    /// rooted at *other* tables are never touched: their component rows
    /// for this table are joined through immutable FK edges from their own
    /// root samples, so they stay exact.
    ///
    /// # Panics
    ///
    /// Panics when `root` has no synopsis, or when a named partition index
    /// is out of range for the root's layout.
    pub fn refresh_table(
        &mut self,
        catalog: &Catalog,
        root: &str,
        partitions: &[usize],
        seed: u64,
    ) {
        let slot = self
            .synopses
            .iter()
            .position(|s| s.root() == root)
            .unwrap_or_else(|| panic!("no synopsis rooted at {root:?}"));
        match catalog.partitioning(root) {
            Some(layout) => {
                let spans = layout.spans();
                let quotas = allocate_samples(self.sample_size, &span_lens(spans));
                let root_pieces = &mut self
                    .pieces
                    .iter_mut()
                    .find(|(r, _)| r == root)
                    .expect("partitioned root has pieces")
                    .1;
                let targets: Vec<usize> = if partitions.is_empty() {
                    (0..spans.len()).collect()
                } else {
                    partitions.to_vec()
                };
                for &p in &targets {
                    assert!(p < spans.len(), "partition {p} out of range for {root:?}");
                    root_pieces[p] = JoinSynopsis::build_for_partition(
                        catalog,
                        root,
                        spans[p].clone(),
                        quotas[p],
                        partition_seed(seed, p),
                    );
                }
                self.synopses[slot] = JoinSynopsis::merge(root, root_pieces);
            }
            None => {
                self.synopses[slot] = JoinSynopsis::build(catalog, root, self.sample_size, seed);
            }
        }
    }

    /// The per-partition pieces of a partitioned root (testing/inspection).
    pub fn pieces_for(&self, root: &str) -> Option<&[JoinSynopsis]> {
        self.pieces
            .iter()
            .find(|(r, _)| r == root)
            .map(|(_, p)| p.as_slice())
    }

    /// The synopsis rooted at a table.
    pub fn for_root(&self, root: &str) -> Option<&JoinSynopsis> {
        self.synopses.iter().find(|s| s.root() == root)
    }

    /// All synopses.
    pub fn iter(&self) -> impl Iterator<Item = &JoinSynopsis> {
        self.synopses.iter()
    }

    /// Chooses the synopsis for an expression over `tables`: the paper's
    /// "root relation" rule — the relation whose primary key is not
    /// involved in any join, i.e. the one from which every other listed
    /// table is FK-reachable.
    pub fn for_expression<'a>(
        &self,
        tables: impl IntoIterator<Item = &'a str> + Clone,
    ) -> Option<&JoinSynopsis> {
        self.synopses
            .iter()
            .filter(|s| s.covers(tables.clone()))
            // Prefer the smallest covering synopsis: the root must itself
            // be one of the queried tables.
            .find(|s| tables.clone().into_iter().any(|t| t == s.root()))
    }

    /// Total stored bytes across all synopses.
    pub fn stored_bytes(&self) -> usize {
        self.synopses.iter().map(JoinSynopsis::stored_bytes).sum()
    }

    /// Installs (or replaces) streaming sketch statistics for one
    /// table.  Called by the ingest path each time a batch lands; the
    /// repository itself is immutable-shared, so the engine clones,
    /// publishes, and swaps — same lifecycle as a partial refresh.
    pub fn publish_sketches(&mut self, sketches: std::sync::Arc<crate::sketch::TableSketches>) {
        self.sketches.publish(sketches);
    }

    /// Streaming statistics for a table, if ingest has touched it.
    pub fn sketches_for(
        &self,
        table: &str,
    ) -> Option<&std::sync::Arc<crate::sketch::TableSketches>> {
        self.sketches.for_table(table)
    }

    /// Distinct-count estimate for `table.column` from the merged
    /// per-partition streaming sketches, or `None` when the table has
    /// never streamed (callers fall back to the sample-based GEE /
    /// jackknife estimators — the oracle path).
    pub fn distinct_estimate(&self, table: &str, column: &str) -> Option<f64> {
        let sketches = self.sketches.for_table(table)?;
        let col = sketches.column_index(column)?;
        Some(sketches.column_distinct(col))
    }
}

/// Partition span lengths, in partition order.
fn span_lens(spans: &[Range<usize>]) -> Vec<usize> {
    spans.iter().map(Range::len).collect()
}

/// One synopsis piece per partition of `root`, with the sample budget
/// split proportionally across partitions.
fn build_pieces(
    catalog: &Catalog,
    root: &str,
    spans: &[Range<usize>],
    sample_size: usize,
    root_seed: u64,
) -> Vec<JoinSynopsis> {
    let quotas = allocate_samples(sample_size, &span_lens(spans));
    spans
        .iter()
        .enumerate()
        .map(|(p, span)| {
            JoinSynopsis::build_for_partition(
                catalog,
                root,
                span.clone(),
                quotas[p],
                partition_seed(root_seed, p),
            )
        })
        .collect()
}

/// Finds the root relation of an FK-join expression: the unique listed
/// table from which all other listed tables are reachable along FK edges.
pub fn find_root<'a>(catalog: &Catalog, tables: &[&'a str]) -> Option<&'a str> {
    fn reachable(catalog: &Catalog, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        catalog
            .foreign_keys_from(from)
            .any(|fk| reachable(catalog, &fk.to_table, to))
    }
    tables
        .iter()
        .copied()
        .find(|root| tables.iter().all(|t| reachable(catalog, root, t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_datagen::{StarConfig, StarData, TpchConfig, TpchData};

    fn tpch_catalog() -> Catalog {
        TpchData::generate(&TpchConfig {
            scale_factor: 0.005, // 7500 orders / ~30k lineitem / 1000 parts
            seed: 21,
        })
        .into_catalog()
    }

    #[test]
    fn lineitem_synopsis_covers_closure() {
        let cat = tpch_catalog();
        let syn = JoinSynopsis::build(&cat, "lineitem", 200, 1);
        assert_eq!(syn.root(), "lineitem");
        assert_eq!(syn.sample_size(), 200);
        let mut tables: Vec<&str> = syn.tables().collect();
        tables.sort_unstable();
        assert_eq!(tables, vec!["lineitem", "orders", "part"]);
        assert!(syn.covers(["lineitem", "part"]));
        assert!(!syn.covers(["lineitem", "nonexistent"]));
    }

    #[test]
    fn components_are_aligned_joins() {
        let cat = tpch_catalog();
        let syn = JoinSynopsis::build(&cat, "lineitem", 150, 2);
        let li = syn.component("lineitem").unwrap();
        let orders = syn.component("orders").unwrap();
        let part = syn.component("part").unwrap();
        let lo = li.schema().expect_index("l_orderkey");
        let lp = li.schema().expect_index("l_partkey");
        let oo = orders.schema().expect_index("o_orderkey");
        let pp = part.schema().expect_index("p_partkey");
        for i in 0..150u32 {
            assert_eq!(li.value(i, lo).as_int(), orders.value(i, oo).as_int());
            assert_eq!(li.value(i, lp).as_int(), part.value(i, pp).as_int());
        }
    }

    #[test]
    fn leaf_synopsis_has_single_component() {
        let cat = tpch_catalog();
        let syn = JoinSynopsis::build(&cat, "part", 100, 3);
        assert_eq!(syn.tables().count(), 1);
        assert!(syn.covers(["part"]));
        assert!(!syn.covers(["lineitem"]));
    }

    #[test]
    fn evaluate_counts_cross_table_predicates() {
        let cat = tpch_catalog();
        let syn = JoinSynopsis::build(&cat, "lineitem", 400, 4);
        // Predicate on part evaluated through the lineitem synopsis: p_x in
        // a 10% window — expect roughly 10% of sample tuples to satisfy.
        let pred = Expr::col("p_x").lt(Expr::lit(100i64));
        let (k, n) = syn.evaluate(&[("part", &pred)]);
        assert_eq!(n, 400);
        let frac = k as f64 / n as f64;
        assert!((0.05..0.18).contains(&frac), "fraction {frac}");

        // Empty predicate list: everything satisfies (lossless FK join).
        let (k, n) = syn.evaluate(&[]);
        assert_eq!((k, n), (400, 400));

        // Impossible predicate.
        let none = Expr::col("p_x").lt(Expr::lit(0i64));
        let (k, _) = syn.evaluate(&[("part", &none)]);
        assert_eq!(k, 0);
    }

    #[test]
    fn evaluate_matches_true_fraction_in_expectation() {
        let cat = tpch_catalog();
        // Average the estimate over several synopses; it must approach the
        // true joined fraction (unbiasedness of uniform sampling).
        let part = cat.table("part").unwrap();
        let pred = Expr::col("p_x").lt(Expr::lit(100i64));
        let truth = rqo_datagen::workload::true_selectivity(part, &pred);
        let mut total = 0.0;
        let reps = 30;
        for seed in 0..reps {
            let syn = JoinSynopsis::build(&cat, "lineitem", 300, seed);
            let (k, n) = syn.evaluate(&[("part", &pred)]);
            total += k as f64 / n as f64;
        }
        let mean = total / reps as f64;
        // l_partkey is uniform, so the lineitem-joined fraction equals the
        // part-table fraction.
        assert!(
            (mean - truth).abs() < 0.02,
            "mean estimate {mean} vs truth {truth}"
        );
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn evaluate_rejects_uncovered_table() {
        let cat = tpch_catalog();
        let syn = JoinSynopsis::build(&cat, "part", 50, 5);
        let pred = Expr::col("l_quantity").gt(Expr::lit(0.0));
        syn.evaluate(&[("lineitem", &pred)]);
    }

    #[test]
    fn repository_builds_and_routes() {
        let cat = tpch_catalog();
        let repo = SynopsisRepository::build_all(&cat, 100, 9);
        assert_eq!(repo.iter().count(), 3);
        assert!(repo.for_root("lineitem").is_some());
        assert!(repo.for_root("nope").is_none());
        // Expression over all three tables routes to the lineitem synopsis.
        let s = repo
            .for_expression(["orders", "part", "lineitem"])
            .expect("covered");
        assert_eq!(s.root(), "lineitem");
        // Single-table expression routes to that table's synopsis.
        let s = repo.for_expression(["part"]).unwrap();
        assert_eq!(s.root(), "part");
        // Orders+part have no common root: no FK path connects them.
        assert!(repo.for_expression(["orders", "part"]).is_none());
        assert!(repo.stored_bytes() > 0);
    }

    #[test]
    fn find_root_logic() {
        let cat = tpch_catalog();
        assert_eq!(
            find_root(&cat, &["orders", "lineitem", "part"]),
            Some("lineitem")
        );
        assert_eq!(find_root(&cat, &["orders"]), Some("orders"));
        assert_eq!(find_root(&cat, &["orders", "part"]), None);
    }

    #[test]
    fn allocate_samples_proportional_and_exact() {
        // Proportional with largest-remainder leftovers; sums exactly.
        assert_eq!(allocate_samples(100, &[500, 300, 200]), vec![50, 30, 20]);
        let q = allocate_samples(100, &[333, 333, 334]);
        assert_eq!(q.iter().sum::<usize>(), 100);
        assert!(q.iter().all(|&x| (33..=34).contains(&x)), "{q:?}");
        // Empty partitions get nothing; empty table gets all zeros.
        assert_eq!(allocate_samples(10, &[0, 100, 0]), vec![0, 10, 0]);
        assert_eq!(allocate_samples(10, &[0, 0]), vec![0, 0]);
        // Deterministic tie-break: equal remainders go to lower indexes.
        assert_eq!(allocate_samples(3, &[1, 1]), allocate_samples(3, &[1, 1]));
    }

    /// A range-partitioned copy of the TPC-H `part` table (4 partitions on
    /// `p_partkey`) plus `lineitem`/`orders` unpartitioned.
    fn partitioned_tpch_catalog() -> Catalog {
        use rqo_storage::{PartitionSpec, PartitionedTableBuilder, Value};
        let flat = tpch_catalog();
        let part = flat.table("part").unwrap();
        let n = part.num_rows() as i64;
        let bounds: Vec<Value> = (1..4).map(|i| part.value((i * n / 4) as u32, 0)).collect();
        let spec = PartitionSpec::Range {
            column: part.schema().column(0).name.clone(),
            bounds,
        };
        let mut b = PartitionedTableBuilder::new("part", part.schema().clone(), spec);
        for rid in 0..part.num_rows() as u32 {
            b.push_row(&part.row(rid));
        }
        let (table, layout) = b.finish();
        let mut cat = Catalog::new();
        cat.add_partitioned_table(table, layout).unwrap();
        for name in ["orders", "lineitem"] {
            let t = flat.table(name).unwrap();
            let mut tb = TableBuilder::new(name, t.schema().clone(), t.num_rows());
            for rid in 0..t.num_rows() as u32 {
                tb.push_row(&t.row(rid));
            }
            cat.add_table(tb.finish()).unwrap();
        }
        for fk in flat.foreign_keys() {
            cat.add_foreign_key(&fk.from_table, &fk.from_column, &fk.to_table, &fk.to_column)
                .unwrap();
        }
        cat
    }

    #[test]
    fn partitioned_root_builds_pieces_and_merges() {
        let cat = partitioned_tpch_catalog();
        let repo = SynopsisRepository::build_all(&cat, 200, 11);
        let pieces = repo.pieces_for("part").expect("part is partitioned");
        assert_eq!(pieces.len(), 4);
        let total: usize = pieces.iter().map(JoinSynopsis::sample_size).sum();
        assert_eq!(total, 200, "proportional allocation sums to the budget");
        let merged = repo.for_root("part").unwrap();
        assert_eq!(merged.sample_size(), 200);
        // Each piece samples only rows inside its span: partition rid
        // ranges translate to key ranges under range partitioning.
        let layout = cat.partitioning("part").unwrap();
        let part = cat.table("part").unwrap();
        for (p, piece) in pieces.iter().enumerate() {
            let span = layout.span(p);
            let lo = part.value(span.start as u32, 0).as_int();
            let hi = part.value(span.end as u32 - 1, 0).as_int();
            let c = piece.component("part").unwrap();
            for i in 0..c.num_rows() as u32 {
                let k = c.value(i, 0).as_int();
                assert!((lo..=hi).contains(&k), "piece {p} leaked key {k}");
            }
        }
        // Unpartitioned roots have no pieces.
        assert!(repo.pieces_for("lineitem").is_none());
    }

    #[test]
    fn partial_refresh_touches_only_named_partitions() {
        let cat = partitioned_tpch_catalog();
        let mut repo = SynopsisRepository::build_all(&cat, 200, 11);
        let before: Vec<JoinSynopsis> = repo.pieces_for("part").unwrap().to_vec();
        let lineitem_before = repo.for_root("lineitem").unwrap().clone();
        repo.refresh_table(&cat, "part", &[1, 3], 999);
        let after = repo.pieces_for("part").unwrap();
        let rows = |s: &JoinSynopsis| -> Vec<Vec<rqo_storage::Value>> {
            let c = s.component("part").unwrap();
            (0..c.num_rows() as u32).map(|i| c.row(i)).collect()
        };
        // Untouched partitions keep their exact sample rows.
        assert_eq!(rows(&before[0]), rows(&after[0]));
        assert_eq!(rows(&before[2]), rows(&after[2]));
        // Refreshed partitions were re-sampled under the new seed (same
        // size, same span, different draws).
        assert_eq!(before[1].sample_size(), after[1].sample_size());
        assert_ne!(rows(&before[1]), rows(&after[1]));
        // The merged synopsis reflects the refresh and keeps its size.
        assert_eq!(repo.for_root("part").unwrap().sample_size(), 200);
        // Other roots are untouched.
        let li = repo.for_root("lineitem").unwrap();
        assert_eq!(
            rows_of(li, "lineitem"),
            rows_of(&lineitem_before, "lineitem")
        );
    }

    fn rows_of(s: &JoinSynopsis, table: &str) -> Vec<Vec<rqo_storage::Value>> {
        let c = s.component(table).unwrap();
        (0..c.num_rows() as u32).map(|i| c.row(i)).collect()
    }

    #[test]
    fn refresh_unpartitioned_root_rebuilds_whole_synopsis() {
        let cat = tpch_catalog();
        let mut repo = SynopsisRepository::build_all(&cat, 150, 5);
        let before = rows_of(repo.for_root("orders").unwrap(), "orders");
        let part_before = rows_of(repo.for_root("part").unwrap(), "part");
        repo.refresh_table(&cat, "orders", &[], 777);
        assert_ne!(rows_of(repo.for_root("orders").unwrap(), "orders"), before);
        assert_eq!(repo.for_root("orders").unwrap().sample_size(), 150);
        // Other roots untouched.
        assert_eq!(rows_of(repo.for_root("part").unwrap(), "part"), part_before);
    }

    #[test]
    fn star_synopsis() {
        let cat = StarData::generate(&StarConfig {
            fact_rows: 5000,
            seed: 17,
        })
        .into_catalog();
        let repo = SynopsisRepository::build_all(&cat, 200, 33);
        let syn = repo
            .for_expression(["fact", "dim1", "dim2", "dim3"])
            .expect("fact synopsis covers the star");
        assert_eq!(syn.root(), "fact");
        // Level-9 diagonal ≈ 10% of fact rows.
        let pred = Expr::col("d_attr").eq(Expr::lit(9i64));
        let (k, n) = syn.evaluate(&[("dim1", &pred), ("dim2", &pred), ("dim3", &pred)]);
        let frac = k as f64 / n as f64;
        assert!((0.04..0.18).contains(&frac), "level-9 fraction {frac}");
    }
}
