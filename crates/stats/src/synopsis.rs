//! Join synopses (paper §3.2, after Acharya et al. 1999).
//!
//! Evaluating an SPJ expression on independent per-table samples does not
//! work: the probability that two small samples contain *matching* join
//! keys is tiny.  A join synopsis fixes this for foreign-key joins: take a
//! uniform sample of the *root* relation and join each sampled tuple with
//! the full referenced relations, recursively along every FK path.  The
//! result is a uniform sample of the (lossless) FK join rooted there, so
//! the selectivity of any predicate over any subset of the reached tables
//! can be estimated by directly evaluating the predicate on the synopsis —
//! one sample, no AVI assumption, no error propagation across subresults.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rqo_expr::Expr;
use rqo_storage::{Catalog, Table, TableBuilder};

use crate::sampler::sample_with_replacement;

/// A join synopsis rooted at one relation.
///
/// Row `i` of every component table corresponds to the same joined sample
/// tuple: `components["root"][i]` is the `i`-th sampled root row and
/// `components[S][i]` is the unique `S` row it (transitively) references.
#[derive(Debug, Clone)]
pub struct JoinSynopsis {
    root: String,
    sample_size: usize,
    components: Vec<(String, Table)>,
}

impl JoinSynopsis {
    /// Builds the synopsis for `root` with `sample_size` tuples drawn with
    /// replacement (the sampling model assumed by the Bayesian posterior).
    ///
    /// # Panics
    ///
    /// Panics when `root` is not in the catalog, when a referenced unique
    /// index is missing (the catalog builds them when FKs are declared),
    /// when a foreign key dangles, or when two FK paths reach the same
    /// table (role-distinct duplicate tables are future work, as in the
    /// paper's single-role join graphs).
    pub fn build(catalog: &Catalog, root: &str, sample_size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let root_table = catalog.table(root).expect("root table exists");
        let rids = sample_with_replacement(root_table, sample_size, &mut rng);

        // Root component.
        let mut components: Vec<(String, Table)> = Vec::new();
        let mut b = TableBuilder::new(root, root_table.schema().clone(), rids.len());
        for &rid in &rids {
            b.push_row(&root_table.row(rid));
        }
        components.push((root.to_string(), b.finish()));

        // Breadth-first FK closure.
        let mut frontier = vec![root.to_string()];
        while let Some(from) = frontier.pop() {
            let fks: Vec<_> = catalog.foreign_keys_from(&from).cloned().collect();
            for fk in fks {
                assert!(
                    !components.iter().any(|(name, _)| *name == fk.to_table),
                    "table {} reached by more than one FK path; role-distinct \
                     synopses are not supported",
                    fk.to_table
                );
                let from_component = &components
                    .iter()
                    .find(|(name, _)| *name == fk.from_table)
                    .expect("component built before traversal")
                    .1;
                let key_col = from_component.schema().expect_index(&fk.from_column);
                let target = catalog.table(&fk.to_table).expect("FK target exists");
                let index = catalog
                    .unique_index(&fk.to_table, &fk.to_column)
                    .unwrap_or_else(|| {
                        panic!(
                            "unique index on {}.{} missing; declare the FK through \
                             Catalog::add_foreign_key",
                            fk.to_table, fk.to_column
                        )
                    });
                let mut b = TableBuilder::new(
                    &fk.to_table,
                    target.schema().clone(),
                    from_component.num_rows(),
                );
                for i in 0..from_component.num_rows() as u32 {
                    let key = from_component.value(i, key_col).as_int();
                    let target_rid = index.get(key).unwrap_or_else(|| {
                        panic!("dangling FK: {}.{} = {key}", fk.from_table, fk.from_column)
                    });
                    b.push_row(&target.row(target_rid));
                }
                components.push((fk.to_table.clone(), b.finish()));
                frontier.push(fk.to_table.clone());
            }
        }

        Self {
            root: root.to_string(),
            sample_size: rids.len(),
            components,
        }
    }

    /// The root relation.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Number of sample tuples (`n` in the Beta posterior).
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Tables covered by this synopsis (root first, then FK closure).
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.components.iter().map(|(n, _)| n.as_str())
    }

    /// True when every listed table is covered.
    pub fn covers<'a>(&self, tables: impl IntoIterator<Item = &'a str>) -> bool {
        tables
            .into_iter()
            .all(|t| self.components.iter().any(|(n, _)| n == t))
    }

    /// The sample component for one table.
    pub fn component(&self, table: &str) -> Option<&Table> {
        self.components
            .iter()
            .find(|(n, _)| n == table)
            .map(|(_, t)| t)
    }

    /// Evaluates per-table predicates against the synopsis, returning
    /// `(satisfying tuples, sample size)` — the `(k, n)` fed to the Beta
    /// posterior.  Tables participating in the query but carrying no
    /// predicate need not be listed: FK joins are lossless, so they do not
    /// filter.
    ///
    /// # Panics
    ///
    /// Panics when a predicate references a table outside the synopsis or
    /// a column outside that table.
    pub fn evaluate(&self, predicates: &[(&str, &Expr)]) -> (usize, usize) {
        // Bind each predicate to its component schema once.
        let bound: Vec<(&Table, Expr)> = predicates
            .iter()
            .map(|(table, expr)| {
                let component = self.component(table).unwrap_or_else(|| {
                    panic!(
                        "table {table:?} not covered by synopsis rooted at {:?}",
                        self.root
                    )
                });
                let b = expr
                    .bind(component.schema())
                    .unwrap_or_else(|e| panic!("binding predicate on {table:?}: {e}"));
                (component, b)
            })
            .collect();

        let mut k = 0usize;
        let mut row: Vec<rqo_storage::Value> = Vec::new();
        for i in 0..self.sample_size as u32 {
            let all = bound.iter().all(|(component, expr)| {
                row.clear();
                row.extend((0..component.schema().len()).map(|c| component.value(i, c)));
                rqo_expr::eval_bool(expr, &row)
            });
            if all {
                k += 1;
            }
        }
        (k, self.sample_size)
    }

    /// Approximate stored size in bytes (for the §6.1 storage-parity
    /// comparison against histograms).
    pub fn stored_bytes(&self) -> usize {
        self.components
            .iter()
            .map(|(_, t)| t.num_rows() * t.row_width_bytes())
            .sum()
    }
}

/// All join synopses for a catalog, one per relation.
#[derive(Debug, Clone)]
pub struct SynopsisRepository {
    synopses: Vec<JoinSynopsis>,
}

impl SynopsisRepository {
    /// Builds one synopsis per registered table.  Each synopsis gets a
    /// distinct deterministic sub-seed derived from `seed`.
    pub fn build_all(catalog: &Catalog, sample_size: usize, seed: u64) -> Self {
        let synopses = catalog
            .tables()
            .enumerate()
            .map(|(i, t)| {
                JoinSynopsis::build(
                    catalog,
                    t.name(),
                    sample_size,
                    seed ^ ((i as u64 + 1) << 32),
                )
            })
            .collect();
        Self { synopses }
    }

    /// The synopsis rooted at a table.
    pub fn for_root(&self, root: &str) -> Option<&JoinSynopsis> {
        self.synopses.iter().find(|s| s.root() == root)
    }

    /// All synopses.
    pub fn iter(&self) -> impl Iterator<Item = &JoinSynopsis> {
        self.synopses.iter()
    }

    /// Chooses the synopsis for an expression over `tables`: the paper's
    /// "root relation" rule — the relation whose primary key is not
    /// involved in any join, i.e. the one from which every other listed
    /// table is FK-reachable.
    pub fn for_expression<'a>(
        &self,
        tables: impl IntoIterator<Item = &'a str> + Clone,
    ) -> Option<&JoinSynopsis> {
        self.synopses
            .iter()
            .filter(|s| s.covers(tables.clone()))
            // Prefer the smallest covering synopsis: the root must itself
            // be one of the queried tables.
            .find(|s| tables.clone().into_iter().any(|t| t == s.root()))
    }

    /// Total stored bytes across all synopses.
    pub fn stored_bytes(&self) -> usize {
        self.synopses.iter().map(JoinSynopsis::stored_bytes).sum()
    }
}

/// Finds the root relation of an FK-join expression: the unique listed
/// table from which all other listed tables are reachable along FK edges.
pub fn find_root<'a>(catalog: &Catalog, tables: &[&'a str]) -> Option<&'a str> {
    fn reachable(catalog: &Catalog, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        catalog
            .foreign_keys_from(from)
            .any(|fk| reachable(catalog, &fk.to_table, to))
    }
    tables
        .iter()
        .copied()
        .find(|root| tables.iter().all(|t| reachable(catalog, root, t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_datagen::{StarConfig, StarData, TpchConfig, TpchData};

    fn tpch_catalog() -> Catalog {
        TpchData::generate(&TpchConfig {
            scale_factor: 0.005, // 7500 orders / ~30k lineitem / 1000 parts
            seed: 21,
        })
        .into_catalog()
    }

    #[test]
    fn lineitem_synopsis_covers_closure() {
        let cat = tpch_catalog();
        let syn = JoinSynopsis::build(&cat, "lineitem", 200, 1);
        assert_eq!(syn.root(), "lineitem");
        assert_eq!(syn.sample_size(), 200);
        let mut tables: Vec<&str> = syn.tables().collect();
        tables.sort_unstable();
        assert_eq!(tables, vec!["lineitem", "orders", "part"]);
        assert!(syn.covers(["lineitem", "part"]));
        assert!(!syn.covers(["lineitem", "nonexistent"]));
    }

    #[test]
    fn components_are_aligned_joins() {
        let cat = tpch_catalog();
        let syn = JoinSynopsis::build(&cat, "lineitem", 150, 2);
        let li = syn.component("lineitem").unwrap();
        let orders = syn.component("orders").unwrap();
        let part = syn.component("part").unwrap();
        let lo = li.schema().expect_index("l_orderkey");
        let lp = li.schema().expect_index("l_partkey");
        let oo = orders.schema().expect_index("o_orderkey");
        let pp = part.schema().expect_index("p_partkey");
        for i in 0..150u32 {
            assert_eq!(li.value(i, lo).as_int(), orders.value(i, oo).as_int());
            assert_eq!(li.value(i, lp).as_int(), part.value(i, pp).as_int());
        }
    }

    #[test]
    fn leaf_synopsis_has_single_component() {
        let cat = tpch_catalog();
        let syn = JoinSynopsis::build(&cat, "part", 100, 3);
        assert_eq!(syn.tables().count(), 1);
        assert!(syn.covers(["part"]));
        assert!(!syn.covers(["lineitem"]));
    }

    #[test]
    fn evaluate_counts_cross_table_predicates() {
        let cat = tpch_catalog();
        let syn = JoinSynopsis::build(&cat, "lineitem", 400, 4);
        // Predicate on part evaluated through the lineitem synopsis: p_x in
        // a 10% window — expect roughly 10% of sample tuples to satisfy.
        let pred = Expr::col("p_x").lt(Expr::lit(100i64));
        let (k, n) = syn.evaluate(&[("part", &pred)]);
        assert_eq!(n, 400);
        let frac = k as f64 / n as f64;
        assert!((0.05..0.18).contains(&frac), "fraction {frac}");

        // Empty predicate list: everything satisfies (lossless FK join).
        let (k, n) = syn.evaluate(&[]);
        assert_eq!((k, n), (400, 400));

        // Impossible predicate.
        let none = Expr::col("p_x").lt(Expr::lit(0i64));
        let (k, _) = syn.evaluate(&[("part", &none)]);
        assert_eq!(k, 0);
    }

    #[test]
    fn evaluate_matches_true_fraction_in_expectation() {
        let cat = tpch_catalog();
        // Average the estimate over several synopses; it must approach the
        // true joined fraction (unbiasedness of uniform sampling).
        let part = cat.table("part").unwrap();
        let pred = Expr::col("p_x").lt(Expr::lit(100i64));
        let truth = rqo_datagen::workload::true_selectivity(part, &pred);
        let mut total = 0.0;
        let reps = 30;
        for seed in 0..reps {
            let syn = JoinSynopsis::build(&cat, "lineitem", 300, seed);
            let (k, n) = syn.evaluate(&[("part", &pred)]);
            total += k as f64 / n as f64;
        }
        let mean = total / reps as f64;
        // l_partkey is uniform, so the lineitem-joined fraction equals the
        // part-table fraction.
        assert!(
            (mean - truth).abs() < 0.02,
            "mean estimate {mean} vs truth {truth}"
        );
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn evaluate_rejects_uncovered_table() {
        let cat = tpch_catalog();
        let syn = JoinSynopsis::build(&cat, "part", 50, 5);
        let pred = Expr::col("l_quantity").gt(Expr::lit(0.0));
        syn.evaluate(&[("lineitem", &pred)]);
    }

    #[test]
    fn repository_builds_and_routes() {
        let cat = tpch_catalog();
        let repo = SynopsisRepository::build_all(&cat, 100, 9);
        assert_eq!(repo.iter().count(), 3);
        assert!(repo.for_root("lineitem").is_some());
        assert!(repo.for_root("nope").is_none());
        // Expression over all three tables routes to the lineitem synopsis.
        let s = repo
            .for_expression(["orders", "part", "lineitem"])
            .expect("covered");
        assert_eq!(s.root(), "lineitem");
        // Single-table expression routes to that table's synopsis.
        let s = repo.for_expression(["part"]).unwrap();
        assert_eq!(s.root(), "part");
        // Orders+part have no common root: no FK path connects them.
        assert!(repo.for_expression(["orders", "part"]).is_none());
        assert!(repo.stored_bytes() > 0);
    }

    #[test]
    fn find_root_logic() {
        let cat = tpch_catalog();
        assert_eq!(
            find_root(&cat, &["orders", "lineitem", "part"]),
            Some("lineitem")
        );
        assert_eq!(find_root(&cat, &["orders"]), Some("orders"));
        assert_eq!(find_root(&cat, &["orders", "part"]), None);
    }

    #[test]
    fn star_synopsis() {
        let cat = StarData::generate(&StarConfig {
            fact_rows: 5000,
            seed: 17,
        })
        .into_catalog();
        let repo = SynopsisRepository::build_all(&cat, 200, 33);
        let syn = repo
            .for_expression(["fact", "dim1", "dim2", "dim3"])
            .expect("fact synopsis covers the star");
        assert_eq!(syn.root(), "fact");
        // Level-9 diagonal ≈ 10% of fact rows.
        let pred = Expr::col("d_attr").eq(Expr::lit(9i64));
        let (k, n) = syn.evaluate(&[("dim1", &pred), ("dim2", &pred), ("dim3", &pred)]);
        let frac = k as f64 / n as f64;
        assert!((0.04..0.18).contains(&frac), "level-9 fraction {frac}");
    }
}
