//! Wall-clock timing of the morsel-driven executor at varying thread
//! counts, over a synthetic table large enough for the scan to dominate
//! setup.  Usage:
//!
//! ```sh
//! cargo run --release -p rqo-exec --example morsel_bench -- [rows] [t1 t2 ...]
//! ```
//!
//! Prints per-thread-count mean runtimes for a predicated scan and a
//! grouped aggregate, asserts that rows, simulated cost, and the
//! per-operator metrics tree stay bit-identical across every setting
//! (the differential invariant), and finishes with the EXPLAIN ANALYZE
//! rendering of each plan.

use std::time::Instant;

use rqo_exec::{execute_analyze, execute_with, AggExpr, ExecOptions, PhysicalPlan};
use rqo_expr::Expr;
use rqo_storage::{Catalog, CostParams, DataType, Schema, TableBuilder, Value};

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args
        .next()
        .map(|s| s.parse().expect("rows"))
        .unwrap_or(2_000_000);
    let threads: Vec<usize> = {
        let rest: Vec<usize> = args.map(|s| s.parse().expect("thread count")).collect();
        if rest.is_empty() {
            vec![1, 2, 4]
        } else {
            rest
        }
    };

    let mut b = TableBuilder::new(
        "t",
        Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Int),
            ("f", DataType::Float),
        ]),
        rows,
    );
    for i in 0..rows as i64 {
        b.push_row(&[
            Value::Int(i % 64),
            Value::Int(i.wrapping_mul(2654435761) % 1000),
            Value::Float((i % 97) as f64),
        ]);
    }
    let mut cat = Catalog::new();
    cat.add_table(b.finish()).unwrap();
    let params = CostParams::default();

    let scan = PhysicalPlan::SeqScan {
        table: "t".into(),
        predicate: Some(Expr::col("v").lt(Expr::lit(500i64))),
    };
    let agg = PhysicalPlan::HashAggregate {
        input: Box::new(scan.clone()),
        group_by: vec!["k".into()],
        aggregates: vec![AggExpr::sum("f", "s"), AggExpr::count_star("n")],
    };

    const REPS: u32 = 5;
    for (name, plan) in [("scan+filter", &scan), ("scan+agg", &agg)] {
        let (base_batch, base_cost, base_metrics) =
            execute_analyze(plan, &cat, &params, &ExecOptions::default());
        for &t in &threads {
            let opts = ExecOptions::with_threads(t);
            let start = Instant::now();
            let mut out = None;
            for _ in 0..REPS {
                out = Some(execute_with(plan, &cat, &params, &opts));
            }
            let mean = start.elapsed().as_secs_f64() / f64::from(REPS);
            let (batch, cost) = out.unwrap();
            assert_eq!(batch.rows, base_batch.rows, "rows diverged at {t} threads");
            assert_eq!(cost, base_cost, "cost diverged at {t} threads");
            let (_, _, metrics) = execute_analyze(plan, &cat, &params, &opts);
            assert_eq!(metrics, base_metrics, "metrics diverged at {t} threads");
            println!(
                "{name:<12} rows={rows} threads={t} mean={:.1}ms",
                mean * 1e3
            );
        }
        println!("\n{name} EXPLAIN ANALYZE:\n{}", base_metrics.render());
    }
}
