//! Differential adaptive-vs-static executor tests.
//!
//! For random SPJ workloads over the seeded TPC-H-like generator (whose
//! correlated ship/receipt dates and clustered part keys are the
//! deliberately skewed columns the paper's estimator struggles with),
//! [`RobustDb::run_adaptive`] must return **bit-identical** rows to the
//! static [`RobustDb::run`] path — at 1, 2, and 8 worker threads — no
//! matter how wrong the planted selectivity is and how many mid-query
//! re-plans it provokes.  Guard-trigger points, re-plan counts, and the
//! total tracked cost must also be identical across thread counts: guard
//! decisions compare materialized batch lengths (bit-identical at every
//! thread count by the morsel executor's construction) against plan-time
//! estimates, so parallelism can never change *what* the adaptive layer
//! does, only how fast it does it.
//!
//! Aggregates are restricted to order-insensitive reductions (COUNT,
//! MIN, MAX) plus SUM over the integer-valued `l_quantity` column, so
//! results are exact even when a re-plan changes the order in which the
//! aggregate consumes its input.
//!
//! This test crate dev-depends on the `robust-qo` facade (a dev-only
//! dependency cycle, which cargo permits) because adaptivity spans the
//! whole stack: optimizer annotations arm the guards, the executor trips
//! them, and the facade re-plans.

use proptest::prelude::*;
use robust_qo::prelude::*;

/// Three SPJ families over the TPC-H-like schema, all aggregate-topped
/// (plan-independent output order).
fn build_query(family: usize, offset: i64, window: i64) -> Query {
    let aggs = |q: Query| {
        q.aggregate(AggExpr::count_star("n"))
            .aggregate(AggExpr::sum("l_quantity", "qty"))
            .aggregate(AggExpr::min("l_extendedprice", "lo"))
            .aggregate(AggExpr::max("l_extendedprice", "hi"))
    };
    match family {
        0 => aggs(
            Query::over(&["lineitem"]).filter("lineitem", exp1_lineitem_predicate(offset % 200)),
        ),
        1 => aggs(
            Query::over(&["lineitem", "part"]).filter("part", exp2_part_predicate(window % 300)),
        ),
        _ => aggs(
            Query::over(&["lineitem", "orders", "part"])
                .filter("part", exp2_part_predicate(window % 300)),
        ),
    }
}

/// The single-table key the misestimate is planted under: the family's
/// filtered table and its predicate.
fn inject_misestimate(handle: &RobustDb, family: usize, offset: i64, window: i64, sel: f64) {
    match family {
        0 => {
            let pred = exp1_lineitem_predicate(offset % 200);
            handle
                .feedback()
                .inject_observation(&["lineitem"], &[("lineitem", &pred)], sel);
        }
        _ => {
            let pred = exp2_part_predicate(window % 300);
            handle
                .feedback()
                .inject_observation(&["part"], &[("part", &pred)], sel);
        }
    }
}

fn fresh_db(seed: u64, threads: usize, row_fallback: bool) -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.002,
        seed,
    });
    RobustDb::with_options(data.into_catalog(), CostParams::default(), 300, seed ^ 0xA5)
        .with_exec_options(ExecOptions::with_threads(threads).with_row_fallback(row_fallback))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn adaptive_rows_match_static_at_all_thread_counts(
        seed in 0u64..500,
        family in 0usize..3,
        offset in 0i64..200,
        window in 0i64..300,
        // Spans "absurdly selective" to "everything matches" — either
        // direction of wrongness must leave answers untouched.
        sel in prop_oneof![Just(1e-6), Just(0.01), Just(0.5), Just(0.999)],
    ) {
        let query = build_query(family, offset, window);

        // Static reference: fresh database, same planted misestimate.
        let static_db = fresh_db(seed, 1, false);
        inject_misestimate(&static_db, family, offset, window, sel);
        let static_run = static_db.run(&query);

        // Adaptive at each thread count — plus a row-fallback arm, which
        // must agree with the default columnar kernels down to every
        // guard trip — each on its own fresh database (run_adaptive
        // feeds truth back into its handle's store, which must not leak
        // between arms).
        type Baseline = (usize, f64, Vec<(usize, u64)>);
        let mut baseline: Option<Baseline> = None;
        for (threads, row_fallback) in [(1usize, false), (2, false), (8, false), (1, true), (8, true)] {
            let handle = fresh_db(seed, threads, row_fallback);
            inject_misestimate(&handle, family, offset, window, sel);
            let adaptive = handle.run_adaptive(&query);

            prop_assert_eq!(
                &adaptive.outcome.rows,
                &static_run.rows,
                "rows diverged: threads={} row_fallback={} family={} sel={}",
                threads, row_fallback, family, sel
            );
            prop_assert_eq!(&adaptive.outcome.columns, &static_run.columns);

            let trips: Vec<(usize, u64)> = adaptive
                .events
                .iter()
                .map(|e| (e.node, e.actual_rows))
                .collect();
            match &baseline {
                None => {
                    baseline = Some((
                        adaptive.replans(),
                        adaptive.outcome.simulated_seconds,
                        trips,
                    ));
                }
                Some((replans, cost, base_trips)) => {
                    prop_assert_eq!(
                        adaptive.replans(), *replans,
                        "re-plan count diverged at threads={} row_fallback={}",
                        threads, row_fallback
                    );
                    prop_assert_eq!(
                        adaptive.outcome.simulated_seconds, *cost,
                        "tracked cost diverged at threads={} row_fallback={}",
                        threads, row_fallback
                    );
                    prop_assert_eq!(
                        &trips, base_trips,
                        "guard-trigger points diverged at threads={} row_fallback={}",
                        threads, row_fallback
                    );
                }
            }
        }
    }

    /// The disabled policy is exactly the static path, for every workload
    /// and misestimate.
    #[test]
    fn disabled_policy_is_exactly_static(
        seed in 0u64..500,
        family in 0usize..3,
        offset in 0i64..200,
        window in 0i64..300,
    ) {
        let query = build_query(family, offset, window);
        let static_db = fresh_db(seed, 2, false);
        inject_misestimate(&static_db, family, offset, window, 0.9);
        let static_run = static_db.run(&query);

        let handle = fresh_db(seed, 2, false).with_adaptive_policy(AdaptivePolicy::disabled());
        inject_misestimate(&handle, family, offset, window, 0.9);
        let adaptive = handle.run_adaptive(&query);
        prop_assert_eq!(adaptive.replans(), 0);
        prop_assert_eq!(&adaptive.outcome.rows, &static_run.rows);
        prop_assert_eq!(adaptive.outcome.simulated_seconds, static_run.simulated_seconds);
        prop_assert_eq!(
            adaptive.outcome.plan.shape_label(),
            static_run.plan.shape_label()
        );
    }
}
