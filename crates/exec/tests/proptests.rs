//! Property-based tests of the physical operators: every join algorithm
//! must agree with a naive nested-loops reference on arbitrary inputs,
//! and aggregation must agree with direct computation.

use proptest::prelude::*;
use rqo_exec::{AggExpr, Batch, IndexRange, PhysicalPlan};
use rqo_expr::Expr;
use rqo_storage::{Catalog, CostParams, DataType, Schema, TableBuilder, Value};

/// Builds a catalog with one table `t(k, v)` and indexes on both columns.
fn catalog(rows: &[(i64, i64)]) -> Catalog {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    let mut b = TableBuilder::new("t", schema, rows.len());
    for &(k, v) in rows {
        b.push_row(&[Value::Int(k), Value::Int(v)]);
    }
    let mut cat = Catalog::new();
    cat.add_table(b.finish()).unwrap();
    cat.ensure_secondary_index("t", "k").unwrap();
    cat.ensure_secondary_index("t", "v").unwrap();
    cat
}

/// Canonical multiset rendering of a batch for order-insensitive
/// comparison.
fn canon(batch: &Batch) -> Vec<String> {
    let mut rows: Vec<String> = batch
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scan, seek, and intersection over the same predicate return the
    /// same multiset of rows (at different costs).
    #[test]
    fn access_paths_agree(
        rows in prop::collection::vec((-20i64..20, -20i64..20), 0..150),
        k_lo in -25i64..25,
        k_len in 0i64..25,
        v_lo in -25i64..25,
        v_len in 0i64..25,
    ) {
        let cat = catalog(&rows);
        let params = CostParams::default();
        let pred = Expr::col("k")
            .between(Expr::lit(k_lo), Expr::lit(k_lo + k_len))
            .and(Expr::col("v").between(Expr::lit(v_lo), Expr::lit(v_lo + v_len)));

        let scan = PhysicalPlan::SeqScan {
            table: "t".into(),
            predicate: Some(pred.clone()),
        };
        let seek = PhysicalPlan::IndexSeek {
            table: "t".into(),
            range: IndexRange::between("k", Value::Int(k_lo), Value::Int(k_lo + k_len)),
            residual: Some(Expr::col("v").between(Expr::lit(v_lo), Expr::lit(v_lo + v_len))),
        };
        let sect = PhysicalPlan::IndexIntersection {
            table: "t".into(),
            ranges: vec![
                IndexRange::between("k", Value::Int(k_lo), Value::Int(k_lo + k_len)),
                IndexRange::between("v", Value::Int(v_lo), Value::Int(v_lo + v_len)),
            ],
            residual: None,
        };
        let (b_scan, _) = rqo_exec::execute(&scan, &cat, &params);
        let (b_seek, _) = rqo_exec::execute(&seek, &cat, &params);
        let (b_sect, _) = rqo_exec::execute(&sect, &cat, &params);
        prop_assert_eq!(canon(&b_scan), canon(&b_seek));
        prop_assert_eq!(canon(&b_scan), canon(&b_sect));
    }

    /// Hash join and merge join agree with the nested-loops reference.
    #[test]
    fn joins_agree_with_reference(
        left in prop::collection::vec((-8i64..8, -100i64..100), 0..60),
        right in prop::collection::vec((-8i64..8, -100i64..100), 0..60),
    ) {
        // Reference: nested loops over the raw tuples.
        let mut expected: Vec<String> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    expected.push(format!("{lk}|{lv}|{rk}|{rv}"));
                }
            }
        }
        expected.sort();

        let mk_batch = |name: &str, data: &[(i64, i64)]| {
            Batch::new(
                Schema::from_pairs(&[
                    (&format!("{name}k"), DataType::Int),
                    (&format!("{name}v"), DataType::Int),
                ]),
                data.iter()
                    .map(|&(k, v)| vec![Value::Int(k), Value::Int(v)])
                    .collect(),
            )
        };
        let lb = mk_batch("l", &left);
        let rb = mk_batch("r", &right);

        let mut t1 = rqo_storage::CostTracker::new();
        let hashed = rqo_exec::join::hash_join(&mut t1, lb.clone(), rb.clone(), "lk", "rk");
        prop_assert_eq!(canon(&hashed), expected.clone());

        let mut t2 = rqo_storage::CostTracker::new();
        let merged = rqo_exec::join::merge_join(&mut t2, lb, rb, "lk", "rk");
        prop_assert_eq!(canon(&merged), expected);
    }

    /// Indexed nested loops agrees with the reference when the inner side
    /// is the indexed table.
    #[test]
    fn indexed_nl_agrees_with_reference(
        inner in prop::collection::vec((-6i64..6, -50i64..50), 0..80),
        outer_keys in prop::collection::vec(-8i64..8, 0..30),
    ) {
        let cat = catalog(&inner);
        let params = CostParams::default();
        let outer = Batch::new(
            Schema::from_pairs(&[("ok", DataType::Int)]),
            outer_keys.iter().map(|&k| vec![Value::Int(k)]).collect(),
        );
        let mut tracker = rqo_storage::CostTracker::new();
        let joined = rqo_exec::join::indexed_nl_join(
            &cat, &params, &mut tracker, outer, "t", "k", "ok",
        );
        let mut expected: Vec<String> = Vec::new();
        for &ok in &outer_keys {
            for &(k, v) in &inner {
                if k == ok {
                    expected.push(format!("{ok}|{k}|{v}"));
                }
            }
        }
        expected.sort();
        prop_assert_eq!(canon(&joined), expected);
    }

    /// Grouped aggregation agrees with direct computation.
    #[test]
    fn aggregation_agrees_with_reference(
        rows in prop::collection::vec((-5i64..5, -100i64..100), 0..120),
    ) {
        let input = Batch::new(
            Schema::from_pairs(&[("g", DataType::Int), ("x", DataType::Int)]),
            rows.iter()
                .map(|&(g, x)| vec![Value::Int(g), Value::Int(x)])
                .collect(),
        );
        let mut tracker = rqo_storage::CostTracker::new();
        let out = rqo_exec::agg::hash_aggregate(
            &mut tracker,
            input,
            &["g".to_string()],
            &[
                AggExpr::sum("x", "s"),
                AggExpr::count_star("n"),
                AggExpr::min("x", "lo"),
                AggExpr::max("x", "hi"),
            ],
        );
        use std::collections::BTreeMap;
        let mut expected: BTreeMap<i64, (f64, i64, i64, i64)> = BTreeMap::new();
        for &(g, x) in &rows {
            let e = expected.entry(g).or_insert((0.0, 0, i64::MAX, i64::MIN));
            e.0 += x as f64;
            e.1 += 1;
            e.2 = e.2.min(x);
            e.3 = e.3.max(x);
        }
        prop_assert_eq!(out.len(), expected.len());
        for row in &out.rows {
            let g = row[0].as_int();
            let (s, n, lo, hi) = expected[&g];
            prop_assert_eq!(row[1].as_f64(), s);
            prop_assert_eq!(row[2].as_int(), n);
            prop_assert_eq!(row[3].as_int(), lo);
            prop_assert_eq!(row[4].as_int(), hi);
        }
    }

    /// Filter and Project nodes compose without changing semantics.
    #[test]
    fn filter_project_compose(rows in prop::collection::vec((-20i64..20, -20i64..20), 0..100), cut in -20i64..20) {
        let cat = catalog(&rows);
        let params = CostParams::default();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::SeqScan { table: "t".into(), predicate: None }),
                predicate: Expr::col("v").ge(Expr::lit(cut)),
            }),
            columns: vec!["v".into()],
        };
        let (batch, _) = rqo_exec::execute(&plan, &cat, &params);
        let expected = rows.iter().filter(|&&(_, v)| v >= cut).count();
        prop_assert_eq!(batch.len(), expected);
        prop_assert_eq!(batch.schema.names(), vec!["v"]);
    }
}
