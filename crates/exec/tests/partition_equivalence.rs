//! Differential partitioned-vs-single-blob executor tests.
//!
//! A partitioned table is semantically the *same relation* as its
//! single-blob twin: the canonical row order is the concatenation of the
//! partitions.  For randomly generated plans over paired catalogs — one
//! flat, one range-partitioned four ways — executing the plan with
//! `PartitionedScan` leaves (all partitions surviving) must be
//! **bit-identical** to executing the `SeqScan` version on the flat twin:
//! same rows in the same order, the same `CostTracker` totals (adjacent
//! surviving spans merge into one page run, collapsing the page charge to
//! the blob's), and the same per-operator metrics tree modulo the scan
//! label — at 1, 2, and 8 worker threads, on both the columnar and the
//! row-fallback paths.
//!
//! Pruned scans additionally must return exactly the full scan's rows
//! (pruning is conservative: dropped partitions provably hold no matching
//! rows) while charging strictly less, and guard trips must fire at the
//! same node with the same actuals on both layouts.

use proptest::prelude::*;
use rqo_exec::{
    execute, execute_analyze, execute_guarded, AggExpr, ExecOptions, ExecStatus, OpMetrics,
    PhysicalPlan, RowGuard,
};
use rqo_expr::Expr;
use rqo_storage::{
    Catalog, CostParams, CostTracker, DataType, PartitionSpec, PartitionedTableBuilder, Schema,
    TableBuilder, Value,
};

const PARTS: usize = 4;

/// Paired catalogs over the same logical data: `t(x, k, f)` with `x`
/// ascending (the partition key — insertion order equals canonical
/// partition order, so the two layouts hold byte-identical rows), plus an
/// unpartitioned outer table `u(k, w)` in both.
fn paired_catalogs(n: usize, key_mod: i64) -> (Catalog, Catalog) {
    let schema = Schema::from_pairs(&[
        ("x", DataType::Int),
        ("k", DataType::Int),
        ("f", DataType::Float),
    ]);
    let row = |i: i64| {
        [
            Value::Int(i),
            Value::Int(i * 3 % key_mod),
            Value::Float((i * 7 % 50) as f64),
        ]
    };
    let mut flat_b = TableBuilder::new("t", schema.clone(), n);
    for i in 0..n as i64 {
        flat_b.push_row(&row(i));
    }
    let bounds: Vec<Value> = (1..PARTS as i64)
        .map(|q| Value::Int(q * n as i64 / PARTS as i64))
        .collect();
    let spec = PartitionSpec::Range {
        column: "x".into(),
        bounds,
    };
    let mut part_b = PartitionedTableBuilder::new("t", schema, spec);
    for i in 0..n as i64 {
        part_b.push_row(&row(i));
    }
    let (table, layout) = part_b.finish();

    let outer = |cat: &mut Catalog| {
        let mut b = TableBuilder::new(
            "u",
            Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Int)]),
            32,
        );
        for i in 0..32i64 {
            b.push_row(&[Value::Int(i % key_mod), Value::Int(i)]);
        }
        cat.add_table(b.finish()).unwrap();
    };
    let mut flat = Catalog::new();
    flat.add_table(flat_b.finish()).unwrap();
    outer(&mut flat);
    let mut parted = Catalog::new();
    parted.add_partitioned_table(table, layout).unwrap();
    outer(&mut parted);
    (flat, parted)
}

/// Rewrites every `SeqScan t` leaf into a `PartitionedScan` over the
/// given surviving partitions; other nodes (including scans of `u`) are
/// untouched.
fn partitioned_twin(plan: &PhysicalPlan, partitions: &[usize]) -> PhysicalPlan {
    let mut twin = plan.clone();
    rewrite(&mut twin, partitions);
    twin
}

fn rewrite(plan: &mut PhysicalPlan, partitions: &[usize]) {
    match plan {
        PhysicalPlan::SeqScan { table, predicate } if *table == "t" => {
            *plan = PhysicalPlan::PartitionedScan {
                table: table.clone(),
                predicate: predicate.take(),
                partitions: partitions.to_vec(),
                total_partitions: PARTS,
            };
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::HashAggregate { input, .. } => rewrite(input, partitions),
        PhysicalPlan::HashJoin { build, probe, .. } => {
            rewrite(build, partitions);
            rewrite(probe, partitions);
        }
        PhysicalPlan::MergeJoin { left, right, .. } => {
            rewrite(left, partitions);
            rewrite(right, partitions);
        }
        PhysicalPlan::IndexedNlJoin { outer, .. } => rewrite(outer, partitions),
        _ => {}
    }
}

/// Rewrites `PartitionedScan` labels to their `SeqScan` twin's so the
/// metrics trees compare structurally.
fn normalize_labels(m: &mut OpMetrics) {
    if let Some(rest) = m.label.strip_prefix("PartitionedScan ") {
        let (table, tail) = rest.split_once(' ').expect("label has a parts segment");
        let tail = tail
            .split_once("parts]")
            .expect("label has a parts segment")
            .1;
        m.label = format!("SeqScan {table}{tail}");
    }
    for c in &mut m.children {
        normalize_labels(c);
    }
}

fn rows_out_preorder(m: &OpMetrics) -> Vec<(String, u64)> {
    m.preorder()
        .iter()
        .map(|n| (n.label.clone(), n.rows_out))
        .collect()
}

/// Full bit-identity when every partition survives: rows, cost, and
/// normalized metrics across serial/parallel, columnar/row-fallback.
fn assert_bit_identical(
    flat_cat: &Catalog,
    part_cat: &Catalog,
    flat_plan: &PhysicalPlan,
    morsel: usize,
) -> Result<(), TestCaseError> {
    let params = CostParams::default();
    let part_plan = partitioned_twin(flat_plan, &[0, 1, 2, 3]);
    let (flat_rows, flat_cost) = execute(flat_plan, flat_cat, &params);
    let (part_rows, part_cost) = execute(&part_plan, part_cat, &params);
    prop_assert_eq!(&part_rows.rows, &flat_rows.rows, "serial rows diverged");
    prop_assert_eq!(part_cost, flat_cost, "serial cost diverged");
    for row_fallback in [false, true] {
        for threads in [1usize, 2, 8] {
            let opts = ExecOptions::with_threads(threads)
                .with_morsel_size(morsel)
                .with_row_fallback(row_fallback);
            let (f_batch, f_cost, mut f_metrics) =
                execute_analyze(flat_plan, flat_cat, &params, &opts);
            let (p_batch, p_cost, mut p_metrics) =
                execute_analyze(&part_plan, part_cat, &params, &opts);
            prop_assert_eq!(
                &p_batch.rows,
                &f_batch.rows,
                "rows diverged: threads={} morsel={} row_fallback={}",
                threads,
                morsel,
                row_fallback
            );
            prop_assert_eq!(p_cost, f_cost, "cost diverged: threads={}", threads);
            normalize_labels(&mut f_metrics);
            normalize_labels(&mut p_metrics);
            prop_assert_eq!(
                &p_metrics,
                &f_metrics,
                "metrics diverged: threads={} morsel={} row_fallback={}",
                threads,
                morsel,
                row_fallback
            );
        }
    }
    Ok(())
}

/// The plan pool: scans, filtered scans, scalar and grouped aggregates,
/// and a hash join against the unpartitioned outer — every shape a
/// partitioned leaf can feed.
fn plan_pool(kind: usize, lo: i64, hi: i64) -> PhysicalPlan {
    let scan = |p: Option<Expr>| PhysicalPlan::SeqScan {
        table: "t".into(),
        predicate: p,
    };
    let pred = Expr::col("x")
        .ge(Expr::lit(lo))
        .and(Expr::col("x").lt(Expr::lit(hi)));
    match kind {
        0 => scan(None),
        1 => scan(Some(pred)),
        2 => scan(Some(Expr::col("k").lt(Expr::lit(hi % 7 + 1)))),
        3 => PhysicalPlan::HashAggregate {
            input: Box::new(scan(Some(pred))),
            group_by: vec![],
            aggregates: vec![AggExpr::sum("f", "s"), AggExpr::count_star("n")],
        },
        4 => PhysicalPlan::HashAggregate {
            input: Box::new(scan(None)),
            group_by: vec!["k".into()],
            aggregates: vec![AggExpr::count_star("n")],
        },
        _ => PhysicalPlan::HashJoin {
            build: Box::new(scan(Some(pred))),
            probe: Box::new(PhysicalPlan::SeqScan {
                table: "u".into(),
                predicate: None,
            }),
            build_key: "k".into(),
            probe_key: "k".into(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All-partitions-surviving scans are indistinguishable from the
    /// single blob, through every plan shape and execution mode.
    #[test]
    fn partitioned_execution_is_bit_identical_to_single_blob(
        n in 16usize..300,
        key_mod in 2i64..12,
        kind in 0usize..6,
        sel in 0u8..4,
        morsel_idx in 0usize..3,
    ) {
        let morsel = [7usize, 64, 1024][morsel_idx];
        let (flat, parted) = paired_catalogs(n, key_mod);
        let lo = n as i64 * sel as i64 / 8;
        let hi = n as i64 * (sel as i64 + 3) / 8;
        let plan = plan_pool(kind, lo, hi);
        assert_bit_identical(&flat, &parted, &plan, morsel)?;
    }
}

#[test]
fn pruned_scan_matches_full_scan_rows_and_charges_less() {
    let n = 400;
    let (flat, parted) = paired_catalogs(n, 10);
    let params = CostParams::default();
    // x < 100: only partition 0 (rows 0..100) can match.
    let pred = Expr::col("x").lt(Expr::lit(100i64));
    let flat_plan = PhysicalPlan::SeqScan {
        table: "t".into(),
        predicate: Some(pred.clone()),
    };
    let pruned_plan = PhysicalPlan::PartitionedScan {
        table: "t".into(),
        predicate: Some(pred),
        partitions: vec![0],
        total_partitions: PARTS,
    };
    let (flat_rows, flat_cost) = execute(&flat_plan, &flat, &params);
    let (pruned_rows, pruned_cost) = execute(&pruned_plan, &parted, &params);
    assert_eq!(
        pruned_rows.rows, flat_rows.rows,
        "pruning changed the result"
    );
    assert!(
        pruned_cost.seconds(&params) < flat_cost.seconds(&params) / 2.0,
        "reading 1/4 of the table must cost well under half: pruned {:?} vs full {:?}",
        pruned_cost,
        flat_cost
    );
    // Thread-count invariance of the pruned path itself, and per-node
    // output parity with the flat plan (rows_in legitimately differs:
    // the pruned scan examines fewer rows).
    let mut baseline: Option<(Vec<Vec<Value>>, CostTracker, OpMetrics)> = None;
    for threads in [1usize, 2, 8] {
        let opts = ExecOptions::with_threads(threads).with_morsel_size(32);
        let (batch, cost, metrics) = execute_analyze(&pruned_plan, &parted, &params, &opts);
        let (f_batch, _, f_metrics) = execute_analyze(&flat_plan, &flat, &params, &opts);
        let mut normalized = metrics.clone();
        normalize_labels(&mut normalized);
        assert_eq!(
            rows_out_preorder(&normalized),
            rows_out_preorder(&f_metrics)
        );
        assert_eq!(batch.rows, f_batch.rows);
        match &baseline {
            None => baseline = Some((batch.rows, cost, metrics)),
            Some((rows, c, m)) => {
                assert_eq!(
                    &batch.rows, rows,
                    "pruned rows diverged at {threads} threads"
                );
                assert_eq!(&cost, c, "pruned cost diverged at {threads} threads");
                assert_eq!(&metrics, m, "pruned metrics diverged at {threads} threads");
            }
        }
    }
}

#[test]
fn guard_trips_identically_on_both_layouts() {
    let n = 240;
    let (flat, parted) = paired_catalogs(n, 8);
    let params = CostParams::default();
    let flat_plan = plan_pool(5, 0, n as i64); // join; build side = all of t
    let part_plan = partitioned_twin(&flat_plan, &[0, 1, 2, 3]);
    // Wildly underestimate the build side so the guard must trip.
    let guards = vec![RowGuard {
        node: 1,
        est_rows: 2.0,
        bound: 3.0,
    }];
    for threads in [1usize, 2, 8] {
        let opts = ExecOptions::with_threads(threads).with_morsel_size(16);
        let mut f_tracker = CostTracker::new();
        let mut p_tracker = CostTracker::new();
        let f = execute_guarded(
            &flat_plan,
            &flat,
            &params,
            &opts,
            &guards,
            &[],
            &mut f_tracker,
        );
        let p = execute_guarded(
            &part_plan,
            &parted,
            &params,
            &opts,
            &guards,
            &[],
            &mut p_tracker,
        );
        let (ExecStatus::Tripped(f_trip), ExecStatus::Tripped(p_trip)) = (f, p) else {
            panic!("both layouts must trip the build-side guard");
        };
        assert_eq!(p_trip.node, f_trip.node);
        assert_eq!(p_trip.actual_rows, f_trip.actual_rows);
        assert_eq!(p_trip.q_error, f_trip.q_error);
        assert_eq!(p_trip.batch.rows, f_trip.batch.rows);
        assert_eq!(p_tracker, f_tracker, "cost up to the trip must match");
        let mut f_metrics = f_trip.metrics;
        let mut p_metrics = p_trip.metrics;
        normalize_labels(&mut f_metrics);
        normalize_labels(&mut p_metrics);
        assert_eq!(p_metrics, f_metrics, "completed-subtree metrics must match");
    }
}
