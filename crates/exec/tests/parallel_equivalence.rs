//! Differential serial-vs-parallel executor tests.
//!
//! For randomly generated catalogs and plans, parallel execution at 1, 2,
//! and 8 worker threads must return **exactly** the serial rows (same
//! values, same order — stronger than the multiset requirement) and the
//! **bit-identical** `CostTracker` totals: the simulated cost models the
//! plan's work, never the host's parallelism.
//!
//! Aggregate inputs use integer-valued floats, for which partial-sum
//! merging is exact, so even SUM/AVG results must match to the last bit.
//!
//! The same differential harness also pins the `EXPLAIN ANALYZE` metrics
//! tree: every per-operator counter ([`OpMetrics`] compares everything
//! except wall time) and its rendered form must be identical at 1, 2,
//! and 8 threads for the same morsel size.

use proptest::prelude::*;
use rqo_datagen::workload::exp1_lineitem_predicate;
use rqo_datagen::{TpchConfig, TpchData};
use rqo_exec::{
    execute, execute_analyze, AggExpr, ExecOptions, IndexRange, OpMetrics, PhysicalPlan,
};
use rqo_expr::Expr;
use rqo_storage::{Catalog, CostParams, DataType, Schema, TableBuilder, Value};

/// Runs the plan serially and at 1/2/8 threads with the given morsel
/// size — on both the default columnar path and the `row_fallback`
/// row-at-a-time path — requiring identical rows, identical cost totals,
/// and identical per-operator metrics trees across every combination.
fn assert_equivalent(
    cat: &Catalog,
    plan: &PhysicalPlan,
    morsel: usize,
) -> Result<(), TestCaseError> {
    let params = CostParams::default();
    let (serial, serial_cost) = execute(plan, cat, &params);
    let mut baseline: Option<OpMetrics> = None;
    for row_fallback in [false, true] {
        for threads in [1usize, 2, 8] {
            let opts = ExecOptions::with_threads(threads)
                .with_morsel_size(morsel)
                .with_row_fallback(row_fallback);
            let (par, par_cost, metrics) = execute_analyze(plan, cat, &params, &opts);
            prop_assert_eq!(
                &par.rows,
                &serial.rows,
                "rows diverged: threads={} morsel={} row_fallback={} plan_nodes={}",
                threads,
                morsel,
                row_fallback,
                plan.node_count()
            );
            prop_assert_eq!(
                par_cost,
                serial_cost,
                "cost diverged: threads={} morsel={} row_fallback={} plan_nodes={}",
                threads,
                morsel,
                row_fallback,
                plan.node_count()
            );
            match &baseline {
                None => baseline = Some(metrics),
                Some(base) => {
                    prop_assert_eq!(
                        metrics.render(),
                        base.render(),
                        "rendered metrics diverged: threads={} morsel={} row_fallback={}",
                        threads,
                        morsel,
                        row_fallback
                    );
                    prop_assert_eq!(
                        &metrics,
                        base,
                        "metrics tree diverged: threads={} morsel={} row_fallback={}",
                        threads,
                        morsel,
                        row_fallback
                    );
                }
            }
        }
    }
    Ok(())
}

/// A table `t(k, v, f)` with `n` rows: `k` in a small domain (join/group
/// collisions), `v` a pseudo-random int, `f` an integer-valued float.
/// Secondary indexes on `k` and `v`.
fn base_catalog(n: usize, key_mod: i64) -> Catalog {
    let mut b = TableBuilder::new(
        "t",
        Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Int),
            ("f", DataType::Float),
        ]),
        n.max(1),
    );
    for i in 0..n as i64 {
        b.push_row(&[
            Value::Int(i % key_mod),
            Value::Int(i * 3 % 101),
            Value::Float((i * 7 % 50) as f64),
        ]);
    }
    let mut cat = Catalog::new();
    cat.add_table(b.finish()).unwrap();
    cat.ensure_secondary_index("t", "k").unwrap();
    cat.ensure_secondary_index("t", "v").unwrap();
    cat
}

/// Adds an outer table `u(k, w)` whose keys overlap `t.k`'s domain.
fn with_outer(mut cat: Catalog, m: usize, key_mod: i64) -> Catalog {
    let mut b = TableBuilder::new(
        "u",
        Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Int)]),
        m.max(1),
    );
    for i in 0..m as i64 {
        b.push_row(&[Value::Int(i * 5 % key_mod), Value::Int(i)]);
    }
    cat.add_table(b.finish()).unwrap();
    cat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scan_and_seek_plans_equivalent(
        n in 0usize..300,
        key_mod in 1i64..20,
        cut in 0i64..101,
        res in 0i64..101,
        morsel in 1usize..100,
    ) {
        let cat = base_catalog(n, key_mod);

        let seq = PhysicalPlan::SeqScan {
            table: "t".into(),
            predicate: Some(Expr::col("v").lt(Expr::lit(cut))),
        };
        assert_equivalent(&cat, &seq, morsel)?;

        let seek = PhysicalPlan::IndexSeek {
            table: "t".into(),
            range: IndexRange::between(
                "k",
                Value::Int(cut % key_mod),
                Value::Int(cut % key_mod + 3),
            ),
            residual: Some(Expr::col("v").ge(Expr::lit(res))),
        };
        assert_equivalent(&cat, &seek, morsel)?;

        let sect = PhysicalPlan::IndexIntersection {
            table: "t".into(),
            ranges: vec![
                IndexRange::between("k", Value::Int(0), Value::Int(cut % key_mod)),
                IndexRange::between("v", Value::Int(res / 2), Value::Int(res / 2 + 40)),
            ],
            residual: None,
        };
        assert_equivalent(&cat, &sect, morsel)?;
    }

    #[test]
    fn join_plans_equivalent(
        n in 0usize..250,
        m in 0usize..120,
        key_mod in 1i64..15,
        cut in 0i64..101,
        morsel in 1usize..64,
    ) {
        let cat = with_outer(base_catalog(n, key_mod), m, key_mod);

        let hash = PhysicalPlan::HashJoin {
            build: Box::new(PhysicalPlan::SeqScan {
                table: "u".into(),
                predicate: None,
            }),
            probe: Box::new(PhysicalPlan::SeqScan {
                table: "t".into(),
                predicate: Some(Expr::col("v").lt(Expr::lit(cut))),
            }),
            build_key: "k".into(),
            probe_key: "k".into(),
        };
        assert_equivalent(&cat, &hash, morsel)?;

        let inl = PhysicalPlan::IndexedNlJoin {
            outer: Box::new(PhysicalPlan::SeqScan {
                table: "u".into(),
                predicate: Some(Expr::col("w").lt(Expr::lit(cut))),
            }),
            inner_table: "t".into(),
            inner_index_column: "k".into(),
            outer_key: "k".into(),
        };
        assert_equivalent(&cat, &inl, morsel)?;
    }

    #[test]
    fn aggregate_and_pipeline_plans_equivalent(
        n in 0usize..400,
        key_mod in 1i64..12,
        cut in 0i64..101,
        grouped: bool,
        morsel in 1usize..128,
    ) {
        let cat = base_catalog(n, key_mod);
        let group_by = if grouped { vec!["k".to_string()] } else { vec![] };

        let agg = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::SeqScan {
                table: "t".into(),
                predicate: None,
            }),
            group_by: group_by.clone(),
            aggregates: vec![
                AggExpr::sum("f", "s"),
                AggExpr::count_star("n"),
                AggExpr::avg("f", "a"),
                AggExpr::min("f", "lo"),
                AggExpr::max("f", "hi"),
            ],
        };
        assert_equivalent(&cat, &agg, morsel)?;

        // Filter → project → aggregate pipeline over the scan.
        let pipeline = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::SeqScan {
                        table: "t".into(),
                        predicate: None,
                    }),
                    predicate: Expr::col("v").lt(Expr::lit(cut)),
                }),
                columns: vec!["k".into(), "f".into()],
            }),
            group_by,
            aggregates: vec![AggExpr::sum("f", "s"), AggExpr::count_star("n")],
        };
        assert_equivalent(&cat, &pipeline, morsel)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end over rqo-datagen's TPC-H-like catalog: the paper's
    /// Experiment-1 query shape at random seeds and predicate offsets.
    #[test]
    fn tpch_catalog_equivalent(
        seed in 0u64..1000,
        offset in 0i64..200,
        morsel in 1usize..2048,
    ) {
        let data = TpchData::generate(&TpchConfig {
            scale_factor: 0.002,
            seed,
        });
        let cat = data.into_catalog();
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::SeqScan {
                table: "lineitem".into(),
                predicate: Some(exp1_lineitem_predicate(offset)),
            }),
            group_by: vec![],
            aggregates: vec![
                AggExpr::count_star("n"),
                AggExpr::min("l_extendedprice", "lo"),
                AggExpr::max("l_extendedprice", "hi"),
            ],
        };
        assert_equivalent(&cat, &plan, morsel)?;
    }
}
