//! Differential kernel-oracle harness: every vectorized columnar kernel
//! is checked against a naive row-at-a-time reference implementation
//! written independently in this file, and against the executor's
//! row-fallback path, on arbitrary (NULL-heavy) inputs.
//!
//! "Identical" here means *bit*-identical: same rows, same row order,
//! same simulated cost, same `OpMetrics` — not just the same multiset.
//! Edge cases (empty batches, all-selected, none-selected predicates)
//! get dedicated deterministic tests below the property block.

use proptest::prelude::*;
use rqo_exec::kernels::{filter_batch, project_batch};
use rqo_exec::{execute_analyze, AggExpr, AggFunc, Batch, ExecOptions, PhysicalPlan};
use rqo_expr::Expr;
use rqo_storage::{Catalog, CostParams, CostTracker, DataType, Schema, TableBuilder, Value};

/// NULL-heavy three-column batch: `a Int`, `b Float`, `c Str`.
/// Nullability is derived from the generated values themselves so the
/// shrinker stays effective (`a % 4 == 0` → NULL a, `b` rounding to a
/// multiple of 5 → NULL b).
fn make_batch(rows: &[(i64, i64, u8)]) -> Batch {
    let schema = Schema::from_pairs(&[
        ("a", DataType::Int),
        ("b", DataType::Float),
        ("c", DataType::Str),
    ]);
    let rows: Vec<Vec<Value>> = rows
        .iter()
        .map(|&(a, b, c)| {
            vec![
                if a % 4 == 0 {
                    Value::Null
                } else {
                    Value::Int(a)
                },
                if b % 5 == 0 {
                    Value::Null
                } else {
                    Value::Float(b as f64 * 0.25)
                },
                Value::str(match c % 3 {
                    0 => "red",
                    1 => "green",
                    _ => "blue",
                }),
            ]
        })
        .collect();
    Batch::new(schema, rows)
}

/// The predicate menu exercised against the filter kernel: typed Int and
/// Float comparisons, string equality, AND composition, BETWEEN, IS
/// NULL / OR (fallback path), and an always-false comparison.
fn predicate(which: usize, cut: i64) -> Expr {
    match which % 7 {
        0 => Expr::col("a").ge(Expr::lit(cut)),
        1 => Expr::col("b").lt(Expr::lit(cut as f64 * 0.25)),
        2 => Expr::col("c").eq(Expr::lit("green")),
        3 => Expr::col("a")
            .lt(Expr::lit(cut))
            .and(Expr::col("c").ne(Expr::lit("blue"))),
        4 => Expr::col("a").between(Expr::lit(cut), Expr::lit(cut + 10)),
        5 => Expr::col("a")
            .is_null()
            .or(Expr::col("b").ge(Expr::lit(cut as f64))),
        _ => Expr::col("b").gt(Expr::lit(1e18)),
    }
}

/// Row-at-a-time filter oracle: `eval_bool` per row, order preserved.
fn oracle_filter(batch: &Batch, bound: &Expr) -> Vec<Vec<Value>> {
    batch
        .rows
        .iter()
        .filter(|row| rqo_expr::eval_bool(bound, row))
        .cloned()
        .collect()
}

/// Row-at-a-time projection oracle.
fn oracle_project(batch: &Batch, ordinals: &[usize]) -> Vec<Vec<Value>> {
    batch
        .rows
        .iter()
        .map(|row| ordinals.iter().map(|&i| row[i].clone()).collect())
        .collect()
}

/// Nested-loops hash-join oracle: for each probe row in order, emit
/// `build ++ probe` for every matching build row in build order.  Key
/// equality is the storage equality the row path's `HashMap<Value, _>`
/// uses — NULL keys match NULL keys.
fn oracle_join(build: &Batch, probe: &Batch, bk: usize, pk: usize) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    for prow in &probe.rows {
        for brow in &build.rows {
            if brow[bk] == prow[pk] {
                let mut row = brow.clone();
                row.extend(prow.iter().cloned());
                out.push(row);
            }
        }
    }
    out
}

/// Row-at-a-time aggregation oracle: accumulators updated in row order
/// (same float-addition sequence as the serial engine), groups emitted
/// sorted by key — the engine's deterministic output order.
fn oracle_aggregate(batch: &Batch, group: usize, aggs: &[AggExpr]) -> Vec<Vec<Value>> {
    struct Acc {
        key: Value,
        sum_b: f64,
        n_star: i64,
        n_a: i64,
        avg_sum: f64,
        avg_n: i64,
        min_a: Option<Value>,
        max_b: Option<Value>,
    }
    let mut accs: Vec<Acc> = Vec::new();
    for row in &batch.rows {
        let key = &row[group];
        let acc = match accs.iter_mut().find(|a| &a.key == key) {
            Some(a) => a,
            None => {
                accs.push(Acc {
                    key: key.clone(),
                    sum_b: 0.0,
                    n_star: 0,
                    n_a: 0,
                    avg_sum: 0.0,
                    avg_n: 0,
                    min_a: None,
                    max_b: None,
                });
                accs.last_mut().unwrap()
            }
        };
        acc.n_star += 1;
        if !row[0].is_null() {
            acc.n_a += 1;
            if acc
                .min_a
                .as_ref()
                .is_none_or(|c| row[0].total_cmp(c) == std::cmp::Ordering::Less)
            {
                acc.min_a = Some(row[0].clone());
            }
        }
        if !row[1].is_null() {
            acc.sum_b += row[1].as_f64();
            acc.avg_sum += row[1].as_f64();
            acc.avg_n += 1;
            if acc
                .max_b
                .as_ref()
                .is_none_or(|c| row[1].total_cmp(c) == std::cmp::Ordering::Greater)
            {
                acc.max_b = Some(row[1].clone());
            }
        }
    }
    assert_eq!(aggs.len(), 6, "oracle hard-codes the six-aggregate menu");
    let mut rows: Vec<Vec<Value>> = accs
        .into_iter()
        .map(|a| {
            vec![
                a.key,
                Value::Float(a.sum_b),
                Value::Int(a.n_star),
                Value::Int(a.n_a),
                if a.avg_n == 0 {
                    Value::Null
                } else {
                    Value::Float(a.avg_sum / a.avg_n as f64)
                },
                a.min_a.unwrap_or(Value::Null),
                a.max_b.unwrap_or(Value::Null),
            ]
        })
        .collect();
    rows.sort_by(|x, y| x[0].total_cmp(&y[0]));
    rows
}

/// The six-aggregate menu matching [`oracle_aggregate`]'s output layout.
fn agg_menu() -> Vec<AggExpr> {
    vec![
        AggExpr::sum("b", "s"),
        AggExpr::count_star("n"),
        AggExpr {
            func: AggFunc::Count,
            column: Some("a".into()),
            alias: "na".into(),
        },
        AggExpr::avg("b", "m"),
        AggExpr::min("a", "lo"),
        AggExpr::max("b", "hi"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The vectorized filter kernel reproduces the row oracle exactly —
    /// rows, order — serially and at every thread count.
    #[test]
    fn filter_kernel_matches_oracle(
        rows in prop::collection::vec((-40i64..40, -40i64..40, 0u8..=255), 0..120),
        which in 0usize..7,
        cut in -30i64..30,
    ) {
        let batch = make_batch(&rows);
        let bound = predicate(which, cut).bind(&batch.schema).unwrap();
        let expect = oracle_filter(&batch, &bound);
        let serial = filter_batch(batch.clone(), &bound, None).unwrap();
        prop_assert_eq!(&serial.rows, &expect);
        for threads in [2usize, 8] {
            let opts = ExecOptions::with_threads(threads).with_morsel_size(16);
            let par = filter_batch(batch.clone(), &bound, Some(&opts)).unwrap();
            prop_assert_eq!(&par.rows, &expect, "threads={}", threads);
        }
    }

    /// The column-at-a-time projection kernel reproduces the row oracle,
    /// including duplicated and reordered output columns.
    #[test]
    fn project_kernel_matches_oracle(
        rows in prop::collection::vec((-40i64..40, -40i64..40, 0u8..=255), 0..120),
        perm in 0usize..6,
    ) {
        let batch = make_batch(&rows);
        let ordinals: Vec<usize> = match perm {
            0 => vec![0, 1, 2],
            1 => vec![2, 0],
            2 => vec![1],
            3 => vec![1, 1, 0],
            4 => vec![2, 2],
            _ => vec![0, 2, 1, 0],
        };
        let schema = batch.schema.project(&ordinals);
        let expect = oracle_project(&batch, &ordinals);
        let serial = project_batch(batch.clone(), &ordinals, schema.clone(), None).unwrap();
        prop_assert_eq!(&serial.rows, &expect);
        for threads in [2usize, 8] {
            let opts = ExecOptions::with_threads(threads).with_morsel_size(16);
            let par = project_batch(batch.clone(), &ordinals, schema.clone(), Some(&opts)).unwrap();
            prop_assert_eq!(&par.rows, &expect, "threads={}", threads);
        }
    }

    /// The typed-key hash-join kernel reproduces the nested-loops oracle
    /// (probe-major order, build order within a key, NULL keys matching
    /// NULL keys) and charges identically to the row join.
    #[test]
    fn join_kernel_matches_oracle(
        build in prop::collection::vec((-6i64..6, -100i64..100, 0u8..=255), 0..60),
        probe in prop::collection::vec((-6i64..6, -100i64..100, 0u8..=255), 0..60),
    ) {
        let b = make_batch(&build);
        let p = make_batch(&probe);
        let expect = oracle_join(&b, &p, 0, 0);

        let mut t_row = CostTracker::new();
        let row = rqo_exec::join::hash_join(&mut t_row, b.clone(), p.clone(), "a", "a");
        prop_assert_eq!(&row.rows, &expect);

        let mut t_col = CostTracker::new();
        let col = rqo_exec::join::hash_join_columnar(&mut t_col, b.clone(), p.clone(), "a", "a");
        prop_assert_eq!(&col.rows, &expect);
        prop_assert_eq!(t_col, t_row);

        for threads in [2usize, 8] {
            let opts = ExecOptions::with_threads(threads).with_morsel_size(16);
            let mut t_par = CostTracker::new();
            let par = rqo_exec::join::hash_join_columnar_par(
                &mut t_par, b.clone(), p.clone(), "a", "a", &opts,
            )
            .unwrap();
            prop_assert_eq!(&par.rows, &expect, "threads={}", threads);
            prop_assert_eq!(t_par, t_row, "threads={}", threads);
        }
    }

    /// The columnar aggregation kernel reproduces the row-order oracle
    /// bit-for-bit (float sums accumulate in the same sequence) over
    /// NULL-heavy inputs, and the morsel-parallel variant matches the
    /// row engine's morsel-parallel variant at the same granularity.
    #[test]
    fn agg_kernel_matches_oracle(
        rows in prop::collection::vec((-40i64..40, -40i64..40, 0u8..=255), 0..120),
    ) {
        let batch = make_batch(&rows);
        let aggs = agg_menu();
        let expect = oracle_aggregate(&batch, 2, &aggs);

        let mut t_col = CostTracker::new();
        let col = rqo_exec::agg::hash_aggregate_columnar(
            &mut t_col, batch.clone(), &["c".to_string()], &aggs,
        );
        prop_assert_eq!(&col.rows, &expect);

        let mut t_row = CostTracker::new();
        let row = rqo_exec::agg::hash_aggregate(
            &mut t_row, batch.clone(), &["c".to_string()], &aggs,
        );
        prop_assert_eq!(&row.rows, &expect);
        prop_assert_eq!(t_col, t_row);

        // Parallel merges float partials morsel-order, so compare the
        // columnar-parallel engine against the row-parallel engine.
        for threads in [2usize, 8] {
            let opts = ExecOptions::with_threads(threads).with_morsel_size(16);
            let mut t_rp = CostTracker::new();
            let row_par = rqo_exec::agg::hash_aggregate_par(
                &mut t_rp, batch.clone(), &["c".to_string()], &aggs, &opts,
            )
            .unwrap();
            let mut t_cp = CostTracker::new();
            let col_par = rqo_exec::agg::hash_aggregate_columnar_par(
                &mut t_cp, batch.clone(), &["c".to_string()], &aggs, &opts,
            )
            .unwrap();
            prop_assert_eq!(&col_par.rows, &row_par.rows, "threads={}", threads);
            prop_assert_eq!(t_cp, t_rp, "threads={}", threads);
        }
    }

    /// Executor-level differential: the default columnar path and the
    /// row-fallback path produce bit-identical rows, costs, AND
    /// `OpMetrics` trees for a scan→join→filter→project→aggregate plan.
    #[test]
    fn executor_paths_bit_identical(
        rows in prop::collection::vec((-10i64..10, -50i64..50), 1..80),
        cut in -40i64..40,
    ) {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let mut tb = TableBuilder::new("t", schema, rows.len());
        for &(k, v) in &rows {
            tb.push_row(&[Value::Int(k), Value::Int(v)]);
        }
        let mut cat = Catalog::new();
        cat.add_table(tb.finish()).unwrap();
        let params = CostParams::default();
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::HashJoin {
                        build: Box::new(PhysicalPlan::SeqScan {
                            table: "t".into(),
                            predicate: Some(Expr::col("v").ge(Expr::lit(cut))),
                        }),
                        probe: Box::new(PhysicalPlan::SeqScan {
                            table: "t".into(),
                            predicate: None,
                        }),
                        build_key: "k".into(),
                        probe_key: "k".into(),
                    }),
                    predicate: Expr::col("r.v").lt(Expr::lit(cut + 40)),
                }),
                columns: vec!["l.k".into(), "r.v".into()],
            }),
            group_by: vec!["l.k".into()],
            aggregates: vec![AggExpr::sum("r.v", "s"), AggExpr::count_star("n")],
        };
        let base_opts = ExecOptions::serial().with_morsel_size(16).with_row_fallback(true);
        let (rb, rc, rm) = execute_analyze(&plan, &cat, &params, &base_opts);
        for threads in [1usize, 2, 8] {
            let opts = ExecOptions::with_threads(threads).with_morsel_size(16);
            let (cb, cc, cm) = execute_analyze(&plan, &cat, &params, &opts);
            prop_assert_eq!(&cb.rows, &rb.rows, "threads={}", threads);
            prop_assert_eq!(cc, rc, "threads={}", threads);
            prop_assert_eq!(&cm, &rm, "threads={}", threads);
        }
    }
}

/// Empty input through every kernel: no rows out, schemas intact.
#[test]
fn kernels_on_empty_batch() {
    let empty = make_batch(&[]);
    let bound = predicate(0, 0).bind(&empty.schema).unwrap();
    assert!(filter_batch(empty.clone(), &bound, None)
        .unwrap()
        .rows
        .is_empty());

    let ordinals = [2usize, 0];
    let schema = empty.schema.project(&ordinals);
    let projected = project_batch(empty.clone(), &ordinals, schema, None).unwrap();
    assert!(projected.rows.is_empty());
    assert_eq!(projected.schema.names(), vec!["c", "a"]);

    let mut t = CostTracker::new();
    let joined = rqo_exec::join::hash_join_columnar(&mut t, empty.clone(), empty.clone(), "a", "a");
    assert!(joined.rows.is_empty());

    // Scalar aggregate over empty input still yields its identity row.
    let mut t = CostTracker::new();
    let aggd = rqo_exec::agg::hash_aggregate_columnar(&mut t, empty.clone(), &[], &agg_menu());
    let mut t2 = CostTracker::new();
    let row = rqo_exec::agg::hash_aggregate(&mut t2, empty, &[], &agg_menu());
    assert_eq!(aggd.rows, row.rows);
    assert_eq!(aggd.len(), 1);
}

/// All-selected and none-selected filters are exact (and exactly empty).
#[test]
fn filter_kernel_all_and_none_selected() {
    let batch = make_batch(&(0..200).map(|i| (i, i, i as u8)).collect::<Vec<_>>());
    // a IS NULL OR a >= i64::MIN covers every row, NULL or not.
    let all = Expr::col("a")
        .is_null()
        .or(Expr::col("a").ge(Expr::lit(i64::MIN)))
        .bind(&batch.schema)
        .unwrap();
    let out = filter_batch(batch.clone(), &all, None).unwrap();
    assert_eq!(out.rows, batch.rows);

    let none = Expr::col("b")
        .gt(Expr::lit(1e18))
        .bind(&batch.schema)
        .unwrap();
    for opts in [
        None,
        Some(ExecOptions::with_threads(4).with_morsel_size(16)),
    ] {
        let out = filter_batch(batch.clone(), &none, opts.as_ref()).unwrap();
        assert!(out.rows.is_empty());
    }
}
