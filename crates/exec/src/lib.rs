//! Physical query execution over the simulated storage substrate.
//!
//! The paper measured real executions on a commercial DBMS; this crate is
//! the reproduction's executor.  Every operator *actually computes* its
//! result over the in-memory columnar tables while charging its simulated
//! work (sequential pages, random I/Os, CPU operations) to a
//! [`rqo_storage::CostTracker`], so "execution time" is deterministic,
//! noise-free, and faithful to the access-pattern asymmetries that create
//! the paper's plan crossovers:
//!
//! * a **sequential scan** pays one sequential page read per page,
//!   regardless of selectivity;
//! * an **index intersection** pays cheap index-leaf scans plus one random
//!   I/O per qualifying row fetched — catastrophic at high selectivity,
//!   unbeatable at low selectivity (Figure 1's Plan 1 / Plan 2);
//! * **indexed nested loops**, **hash**, and **merge** joins reproduce the
//!   three plan regimes of Experiment 2, and the **star semijoin**
//!   strategy the index-driven plan of Experiment 3.
//!
//! Operators materialize their results ([`Batch`]), which keeps the
//! executor simple and deterministic; the experiments run at scale factors
//! where full materialization is comfortably in-memory.
//!
//! # Parallel execution
//!
//! [`execute_with`] accepts [`ExecOptions`] and, for `threads > 1`, runs
//! scans, RID fetches, hash-join build/probe, hash aggregation, filters,
//! and projections **morsel-parallel** on a pool of scoped worker threads
//! (see [`morsel`]).  Results and simulated costs are bit-identical to
//! serial execution by construction — parallelism changes wall-clock
//! time, never answers or charged cost.
//!
//! # Cooperative cancellation
//!
//! An [`ExecOptions`] can carry a [`rqo_core::QueryToken`]; the executor
//! polls it at every operator entry and every morsel boundary, so a
//! cancelled or past-deadline query stops within one morsel of work.
//! [`try_execute_with`] / [`try_execute_analyze`] surface the stop as an
//! `Err(StopReason)` instead of panicking.  An options value carrying a
//! token also routes single-threaded execution through the morselized
//! operator paths (bit-identical to serial by the equivalence suite), so
//! polls happen per-morsel even at `threads = 1`.

#![warn(missing_docs)]

pub mod adaptive;
pub mod agg;
pub mod batch;
pub mod columnar;
pub mod executor;
pub mod join;
pub mod kernels;
pub mod metrics;
pub mod morsel;
pub mod plan;
pub mod scan;

pub use adaptive::{execute_guarded, guard_points, q_error, ExecStatus, GuardTrip, RowGuard};
pub use batch::Batch;
pub use columnar::{column_refs, columnarize, gather_rows, SelVec};
pub use executor::{execute, execute_analyze, execute_with, try_execute_analyze, try_execute_with};
pub use metrics::OpMetrics;
pub use morsel::{ExecOptions, MorselScheduler, StopReason};
pub use plan::{AggExpr, AggFunc, IndexRange, PhysicalPlan, PreorderNode, SemiJoinLeg};
pub use scan::surviving_spans;
