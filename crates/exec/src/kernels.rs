//! Vectorized mid-pipeline kernels: batch filter and projection.
//!
//! These back the executor's `Filter` and `Project` nodes on the default
//! columnar path.  Both take the input [`Batch`] by value, do their work
//! over typed columns (filter) or column-at-a-time loops (project), and
//! hand back a row-major [`Batch`] — bit-identical rows, order, and cost
//! to the row-at-a-time path they replace.  CPU charges stay in the
//! executor (they are input-size-based and path-independent).

use rqo_expr::columnar::{select, Candidates};
use rqo_expr::Expr;
use rqo_storage::Schema;

use crate::batch::Batch;
use crate::columnar::{column_refs, columnarize, SelVec};
use crate::morsel::{run_morsels, ExecOptions};

/// Vectorized filter: evaluates the bound predicate over typed column
/// vectors (transposed once per batch, only the referenced columns) and
/// materializes surviving rows from the selection vector.
///
/// Pass `Some(opts)` to run morsel-parallel; `None` runs serially over
/// the whole batch.  Returns `None` only when the query's token fired
/// mid-batch (impossible with `opts == None`).
pub fn filter_batch(batch: Batch, bound: &Expr, opts: Option<&ExecOptions>) -> Option<Batch> {
    let ords: Vec<usize> = bound
        .referenced_columns()
        .iter()
        .map(|c| batch.schema.expect_index(c))
        .collect();
    let cols = columnarize(&batch.rows, &batch.schema, &ords);
    let refs = column_refs(&cols);
    let n = batch.rows.len();
    let filter_morsel = |morsel: std::ops::Range<usize>| -> Vec<Vec<rqo_storage::Value>> {
        let sel = SelVec::new(select(bound, &refs, Candidates::Range(morsel)), n);
        sel.ids()
            .iter()
            .map(|&i| batch.rows[i as usize].clone())
            .collect()
    };
    match opts {
        None => {
            let rows = filter_morsel(0..n);
            Some(Batch::new(batch.schema.clone(), rows))
        }
        Some(o) => {
            let parts = run_morsels(o, n, filter_morsel)?;
            Some(Batch::from_parts(batch.schema.clone(), parts))
        }
    }
}

/// Morselized projection kernel.
///
/// The output is row-major (the executor's unit of exchange), so each
/// output row is assembled in one pass while its buffer is cache-hot; a
/// per-column pass would stride one `Value` write across every row
/// allocation per column and measurably lose (the kernels bench keeps a
/// `project` entry pinning that this kernel does not regress the row
/// baseline).  `schema` is the projected output schema
/// (`batch.schema.project(..)`), computed by the caller alongside the
/// ordinals.  Pass `Some(opts)` to run morsel-parallel.  Returns `None`
/// only when the query's token fired mid-batch.
pub fn project_batch(
    batch: Batch,
    ordinals: &[usize],
    schema: Schema,
    opts: Option<&ExecOptions>,
) -> Option<Batch> {
    let project_morsel = |morsel: std::ops::Range<usize>| -> Vec<Vec<rqo_storage::Value>> {
        batch.rows[morsel]
            .iter()
            .map(|row| ordinals.iter().map(|&i| row[i].clone()).collect())
            .collect()
    };
    match opts {
        None => {
            let rows = project_morsel(0..batch.rows.len());
            Some(Batch::new(schema, rows))
        }
        Some(o) => {
            let parts = run_morsels(o, batch.rows.len(), project_morsel)?;
            Some(Batch::from_parts(schema, parts))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_storage::{DataType, Value};

    /// Mixed-type batch with NULLs sprinkled in.
    fn batch() -> Batch {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("c", DataType::Str),
        ]);
        let rows: Vec<Vec<Value>> = (0..300i64)
            .map(|i| {
                vec![
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                    Value::Float(i as f64 * 0.5),
                    Value::str(if i % 2 == 0 { "even" } else { "odd" }),
                ]
            })
            .collect();
        Batch::new(schema, rows)
    }

    fn row_filter(b: &Batch, bound: &Expr) -> Vec<Vec<Value>> {
        b.rows
            .iter()
            .filter(|row| rqo_expr::eval_bool(bound, row))
            .cloned()
            .collect()
    }

    #[test]
    fn filter_matches_row_path() {
        let b = batch();
        let preds = [
            Expr::col("a").ge(Expr::lit(100i64)),
            Expr::col("a")
                .lt(Expr::lit(50i64))
                .and(Expr::col("c").eq(Expr::lit("even"))),
            Expr::col("b").ge(Expr::lit(1e9)),      // none selected
            Expr::col("a").ge(Expr::lit(i64::MIN)), // NULLs still dropped
        ];
        for pred in &preds {
            let bound = pred.bind(&b.schema).unwrap();
            let expect = row_filter(&b, &bound);
            let serial = filter_batch(b.clone(), &bound, None).unwrap();
            assert_eq!(serial.rows, expect, "pred={pred:?}");
            for threads in [1, 2, 8] {
                let opts = ExecOptions::with_threads(threads).with_morsel_size(32);
                let par = filter_batch(b.clone(), &bound, Some(&opts)).unwrap();
                assert_eq!(par.rows, expect, "pred={pred:?} threads={threads}");
            }
        }
    }

    #[test]
    fn filter_empty_batch() {
        let b = Batch::new(batch().schema, Vec::new());
        let bound = Expr::col("a").ge(Expr::lit(0i64)).bind(&b.schema).unwrap();
        let out = filter_batch(b, &bound, None).unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn project_matches_row_path() {
        let b = batch();
        let ordinals = [2usize, 0];
        let schema = b.schema.project(&ordinals);
        let expect: Vec<Vec<Value>> = b
            .rows
            .iter()
            .map(|row| ordinals.iter().map(|&i| row[i].clone()).collect())
            .collect();
        let serial = project_batch(b.clone(), &ordinals, schema.clone(), None).unwrap();
        assert_eq!(serial.rows, expect);
        assert_eq!(serial.schema.names(), vec!["c", "a"]);
        for threads in [2, 8] {
            let opts = ExecOptions::with_threads(threads).with_morsel_size(32);
            let par = project_batch(b.clone(), &ordinals, schema.clone(), Some(&opts)).unwrap();
            assert_eq!(par.rows, expect, "threads={threads}");
        }
    }
}
