//! Physical plan trees.
//!
//! The optimizer emits these; the executor interprets them.  The node set
//! is exactly what the paper's three experimental scenarios require: two
//! access paths (sequential scan, index seek / index intersection plus RID
//! fetch), three join algorithms (hash, merge, indexed nested loops), the
//! star-join semijoin strategy, and hash aggregation.

use std::fmt;
use std::ops::Bound;

use rqo_expr::Expr;
use rqo_storage::Value;

/// A key range over a single indexed column.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRange {
    /// Indexed column.
    pub column: String,
    /// Lower bound.
    pub lo: Bound<Value>,
    /// Upper bound.
    pub hi: Bound<Value>,
}

impl IndexRange {
    /// An equality range.
    pub fn eq(column: impl Into<String>, v: Value) -> Self {
        Self {
            column: column.into(),
            lo: Bound::Included(v.clone()),
            hi: Bound::Included(v),
        }
    }

    /// A closed range `[lo, hi]`.
    pub fn between(column: impl Into<String>, lo: Value, hi: Value) -> Self {
        Self {
            column: column.into(),
            lo: Bound::Included(lo),
            hi: Bound::Included(hi),
        }
    }
}

/// One leg of a star semijoin: a dimension whose filtered keys drive a
/// fact-side FK index probe.
#[derive(Debug, Clone, PartialEq)]
pub struct SemiJoinLeg {
    /// Dimension table.
    pub dim_table: String,
    /// Dimension key column (the FK target).
    pub dim_key: String,
    /// Filter on the dimension.
    pub dim_predicate: Expr,
    /// Fact-side FK column (must have a secondary index).
    pub fact_fk: String,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `SUM(col)`
    Sum,
    /// `COUNT(*)` (column ignored) or `COUNT(col)`
    Count,
    /// `AVG(col)`
    Avg,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
}

/// One aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// Function.
    pub func: AggFunc,
    /// Input column (`None` only for `COUNT(*)`).
    pub column: Option<String>,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// `SUM(column) AS alias`
    pub fn sum(column: impl Into<String>, alias: impl Into<String>) -> Self {
        Self {
            func: AggFunc::Sum,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// `COUNT(*) AS alias`
    pub fn count_star(alias: impl Into<String>) -> Self {
        Self {
            func: AggFunc::Count,
            column: None,
            alias: alias.into(),
        }
    }

    /// `AVG(column) AS alias`
    pub fn avg(column: impl Into<String>, alias: impl Into<String>) -> Self {
        Self {
            func: AggFunc::Avg,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// `MIN(column) AS alias`
    pub fn min(column: impl Into<String>, alias: impl Into<String>) -> Self {
        Self {
            func: AggFunc::Min,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// `MAX(column) AS alias`
    pub fn max(column: impl Into<String>, alias: impl Into<String>) -> Self {
        Self {
            func: AggFunc::Max,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }
}

/// One entry of the canonical pre-order flattening produced by
/// [`PhysicalPlan::preorder`]: the node, its pre-order index, and its
/// children's pre-order indices.
///
/// This numbering — node before children, children in execution order
/// ([`PhysicalPlan::children`]) — is the *single* coordinate system
/// shared by `explain()`, `OpMetrics`, the optimizer's `NodeAnnotations`,
/// guard indices, and `replace_subtree`.  Anything that needs "node
/// number ↔ plan node" should walk this flattening rather than keeping
/// its own counter.
#[derive(Debug, Clone, PartialEq)]
pub struct PreorderNode<'a> {
    /// Pre-order index of this node.
    pub index: usize,
    /// The plan node itself.
    pub plan: &'a PhysicalPlan,
    /// Pre-order indices of this node's children, in execution order.
    pub children: Vec<usize>,
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Full sequential scan with an optional pushed-down predicate.
    SeqScan {
        /// Table to scan.
        table: String,
        /// Predicate applied during the scan.
        predicate: Option<Expr>,
    },
    /// Sequential scan of a partitioned table restricted to the surviving
    /// partitions (partition pruning).  Each partition is a contiguous RID
    /// span of the canonical concatenated table, so with every partition
    /// surviving this is bit-identical to [`PhysicalPlan::SeqScan`]: same
    /// rows in the same order, same morsel boundaries, same cost charges.
    PartitionedScan {
        /// Table to scan (must be registered with a partition layout).
        table: String,
        /// Predicate applied during the scan.
        predicate: Option<Expr>,
        /// Surviving partition indices, ascending.  Partitions not listed
        /// were proven by the optimizer to contain no matching rows.
        partitions: Vec<usize>,
        /// Total partitions of the table (for `EXPLAIN` output).
        total_partitions: usize,
    },
    /// Single-index seek: scan one key range's leaf entries, fetch the
    /// rows, apply the residual predicate.
    IndexSeek {
        /// Table.
        table: String,
        /// Key range (the index on `range.column` must exist).
        range: IndexRange,
        /// Residual predicate applied after fetching.
        residual: Option<Expr>,
    },
    /// Index intersection: seek several ranges, intersect the RID lists,
    /// fetch only rows matching all ranges, apply the residual.
    IndexIntersection {
        /// Table.
        table: String,
        /// Ranges (each column's index must exist; two or more).
        ranges: Vec<IndexRange>,
        /// Residual predicate applied after fetching.
        residual: Option<Expr>,
    },
    /// Filter on an intermediate result.
    Filter {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Column projection (by name).
    Project {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Columns to keep, in order.
        columns: Vec<String>,
    },
    /// Hash join: build a table on `build`, probe with `probe`.
    HashJoin {
        /// Build side (should be the smaller input).
        build: Box<PhysicalPlan>,
        /// Probe side.
        probe: Box<PhysicalPlan>,
        /// Join key in the build schema.
        build_key: String,
        /// Join key in the probe schema.
        probe_key: String,
    },
    /// Merge join; sorts inputs that are not already sorted on their key
    /// (charging the sort).
    MergeJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join key in the left schema.
        left_key: String,
        /// Join key in the right schema.
        right_key: String,
    },
    /// Indexed nested-loops join: for each outer row, probe the inner
    /// table's secondary index on `inner_index_column` with the outer
    /// row's `outer_key` and fetch matches.
    IndexedNlJoin {
        /// Outer input.
        outer: Box<PhysicalPlan>,
        /// Inner (indexed) table.
        inner_table: String,
        /// Inner indexed column.
        inner_index_column: String,
        /// Key column in the outer schema.
        outer_key: String,
    },
    /// Star semijoin: filter each dimension, probe the fact FK indexes for
    /// matching RIDs, intersect across legs, fetch the fact rows.  Output
    /// schema is the fact schema (dimensions act purely as filters).
    StarSemiJoin {
        /// Fact table.
        fact_table: String,
        /// Semijoin legs (one or more).
        legs: Vec<SemiJoinLeg>,
    },
    /// Hash aggregation (empty `group_by` = scalar aggregate over all
    /// rows, yielding exactly one row even for empty input).
    HashAggregate {
        /// Input.
        input: Box<PhysicalPlan>,
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregates.
        aggregates: Vec<AggExpr>,
    },
    /// An already-materialized intermediate, bound at execution time to a
    /// batch produced *before* an adaptive re-plan paused the pipeline.
    /// The executor serves the batch from its slot table without
    /// re-charging the work that produced it; `tables`/`predicates`
    /// record what the replaced subtree covered so the optimizer can
    /// still annotate the node and its ancestors.
    Materialized {
        /// Index into the executor's bound-intermediates table.
        slot: usize,
        /// Tables the materialized subtree covered.
        tables: Vec<String>,
        /// Query predicates the materialized subtree applied, as
        /// `(table, expr)` pairs.
        predicates: Vec<(String, Expr)>,
    },
}

impl PhysicalPlan {
    /// Renders an `EXPLAIN`-style indented tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let _ = writeln!(out, "{pad}{}", self.node_label());
        for child in self.children() {
            child.explain_into(out, depth + 1);
        }
    }

    /// The one-line `EXPLAIN` label for this node alone (no children).
    /// `EXPLAIN ANALYZE` output reuses the same labels so annotated trees
    /// line up with plain `explain()` output.
    pub fn node_label(&self) -> String {
        match self {
            PhysicalPlan::SeqScan { table, predicate } => match predicate {
                Some(p) => format!("SeqScan {table} filter={p}"),
                None => format!("SeqScan {table}"),
            },
            PhysicalPlan::PartitionedScan {
                table,
                predicate,
                partitions,
                total_partitions,
            } => {
                let parts = format!("[{}/{total_partitions} parts]", partitions.len());
                match predicate {
                    Some(p) => format!("PartitionedScan {table} {parts} filter={p}"),
                    None => format!("PartitionedScan {table} {parts}"),
                }
            }
            PhysicalPlan::IndexSeek { table, range, .. } => {
                format!("IndexSeek {table}.{}", range.column)
            }
            PhysicalPlan::IndexIntersection { table, ranges, .. } => {
                let cols: Vec<&str> = ranges.iter().map(|r| r.column.as_str()).collect();
                format!("IndexIntersection {table} [{}]", cols.join(", "))
            }
            PhysicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            PhysicalPlan::Project { columns, .. } => format!("Project [{}]", columns.join(", ")),
            PhysicalPlan::HashJoin {
                build_key,
                probe_key,
                ..
            } => format!("HashJoin {build_key} = {probe_key}"),
            PhysicalPlan::MergeJoin {
                left_key,
                right_key,
                ..
            } => format!("MergeJoin {left_key} = {right_key}"),
            PhysicalPlan::IndexedNlJoin {
                inner_table,
                inner_index_column,
                outer_key,
                ..
            } => format!("IndexedNlJoin {outer_key} -> {inner_table}.{inner_index_column}"),
            PhysicalPlan::StarSemiJoin { fact_table, legs } => {
                let dims: Vec<&str> = legs.iter().map(|l| l.dim_table.as_str()).collect();
                format!("StarSemiJoin {fact_table} [{}]", dims.join(", "))
            }
            PhysicalPlan::HashAggregate {
                group_by,
                aggregates,
                ..
            } => {
                let aggs: Vec<&str> = aggregates.iter().map(|a| a.alias.as_str()).collect();
                format!(
                    "HashAggregate group=[{}] aggs=[{}]",
                    group_by.join(", "),
                    aggs.join(", ")
                )
            }
            PhysicalPlan::Materialized { slot, tables, .. } => {
                format!("Materialized #{slot} [{}]", tables.join(", "))
            }
        }
    }

    /// Child subtrees in execution order (build before probe, left before
    /// right, outer only for indexed nested loops).  The pre-order walk
    /// over this ordering is the canonical node numbering shared by
    /// `explain()`, `OpMetrics`, and the optimizer's per-node estimates.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::PartitionedScan { .. }
            | PhysicalPlan::IndexSeek { .. }
            | PhysicalPlan::IndexIntersection { .. }
            | PhysicalPlan::StarSemiJoin { .. }
            | PhysicalPlan::Materialized { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. } => vec![input],
            PhysicalPlan::HashJoin { build, probe, .. } => vec![build, probe],
            PhysicalPlan::MergeJoin { left, right, .. } => vec![left, right],
            PhysicalPlan::IndexedNlJoin { outer, .. } => vec![outer],
        }
    }

    /// The canonical pre-order flattening of the tree: entry `i` describes
    /// the node with pre-order index `i` and links to its children's
    /// indices.  Guard-point selection ([`crate::guard_points`]) and the
    /// optimizer's per-node annotation walk are both built on this, which
    /// is what keeps their numberings provably aligned.
    pub fn preorder(&self) -> Vec<PreorderNode<'_>> {
        fn walk<'a>(plan: &'a PhysicalPlan, out: &mut Vec<PreorderNode<'a>>) -> usize {
            let my = out.len();
            out.push(PreorderNode {
                index: my,
                plan,
                children: Vec::new(),
            });
            for child in plan.children() {
                let child_index = walk(child, out);
                out[my].children.push(child_index);
            }
            my
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Mutable counterpart of [`children`](Self::children), in the same
    /// execution order — used by [`replace_subtree`](Self::replace_subtree)
    /// so the mutable walk visits nodes under the canonical pre-order
    /// numbering.
    fn children_mut(&mut self) -> Vec<&mut PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::PartitionedScan { .. }
            | PhysicalPlan::IndexSeek { .. }
            | PhysicalPlan::IndexIntersection { .. }
            | PhysicalPlan::StarSemiJoin { .. }
            | PhysicalPlan::Materialized { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. } => vec![input],
            PhysicalPlan::HashJoin { build, probe, .. } => vec![build, probe],
            PhysicalPlan::MergeJoin { left, right, .. } => vec![left, right],
            PhysicalPlan::IndexedNlJoin { outer, .. } => vec![outer],
        }
    }

    /// Returns a copy of the tree with the subtree at pre-order index
    /// `target` (node before children, children in execution order — the
    /// numbering shared with `OpMetrics` and the optimizer's annotations)
    /// replaced by `replacement`, or `None` when `target` is out of
    /// range.  This is the surgery an adaptive re-plan performs to graft
    /// a [`PhysicalPlan::Materialized`] leaf over the already-executed
    /// fragment.
    pub fn replace_subtree(
        &self,
        target: usize,
        replacement: PhysicalPlan,
    ) -> Option<PhysicalPlan> {
        fn walk(
            node: &mut PhysicalPlan,
            counter: &mut usize,
            target: usize,
            r: &mut Option<PhysicalPlan>,
        ) -> bool {
            let my = *counter;
            *counter += 1;
            if my == target {
                *node = r.take().expect("replacement consumed once");
                return true;
            }
            node.children_mut()
                .into_iter()
                .any(|child| walk(child, counter, target, r))
        }
        let mut out = self.clone();
        let mut replacement = Some(replacement);
        walk(&mut out, &mut 0, target, &mut replacement).then_some(out)
    }

    /// A short label identifying the plan's shape (used by the experiment
    /// reports to show which plan family was chosen).
    pub fn shape_label(&self) -> String {
        match self {
            PhysicalPlan::SeqScan { .. } => "seqscan".to_string(),
            PhysicalPlan::PartitionedScan {
                partitions,
                total_partitions,
                ..
            } => format!("partscan[{}/{total_partitions}]", partitions.len()),
            PhysicalPlan::IndexSeek { .. } => "ixseek".to_string(),
            PhysicalPlan::IndexIntersection { .. } => "ixsect".to_string(),
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
                input.shape_label()
            }
            PhysicalPlan::HashJoin { build, probe, .. } => {
                format!("hj({},{})", build.shape_label(), probe.shape_label())
            }
            PhysicalPlan::MergeJoin { left, right, .. } => {
                format!("mj({},{})", left.shape_label(), right.shape_label())
            }
            PhysicalPlan::IndexedNlJoin {
                outer, inner_table, ..
            } => {
                format!("inl({},{inner_table})", outer.shape_label())
            }
            PhysicalPlan::StarSemiJoin { legs, .. } => format!("semijoin[{}]", legs.len()),
            PhysicalPlan::HashAggregate { input, .. } => format!("agg({})", input.shape_label()),
            PhysicalPlan::Materialized { slot, .. } => format!("mat#{slot}"),
        }
    }

    /// Number of operator nodes in the tree (used by test diagnostics and
    /// plan-complexity reports).
    pub fn node_count(&self) -> usize {
        1 + match self {
            PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::PartitionedScan { .. }
            | PhysicalPlan::IndexSeek { .. }
            | PhysicalPlan::IndexIntersection { .. }
            | PhysicalPlan::StarSemiJoin { .. }
            | PhysicalPlan::Materialized { .. } => 0,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. } => input.node_count(),
            PhysicalPlan::HashJoin { build, probe, .. } => build.node_count() + probe.node_count(),
            PhysicalPlan::MergeJoin { left, right, .. } => left.node_count() + right.node_count(),
            PhysicalPlan::IndexedNlJoin { outer, .. } => outer.node_count(),
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.explain().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_renders_tree() {
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                build: Box::new(PhysicalPlan::SeqScan {
                    table: "part".into(),
                    predicate: Some(Expr::col("p_x").lt(Expr::lit(100i64))),
                }),
                probe: Box::new(PhysicalPlan::SeqScan {
                    table: "lineitem".into(),
                    predicate: None,
                }),
                build_key: "p_partkey".into(),
                probe_key: "l_partkey".into(),
            }),
            group_by: vec![],
            aggregates: vec![AggExpr::sum("l_extendedprice", "revenue")],
        };
        let text = plan.explain();
        assert!(text.contains("HashAggregate"));
        assert!(text.contains("HashJoin p_partkey = l_partkey"));
        assert!(text.contains("SeqScan part filter=(p_x < 100)"));
        assert_eq!(plan.shape_label(), "agg(hj(seqscan,seqscan))");
        assert_eq!(plan.to_string(), text.trim_end());
        assert_eq!(plan.node_count(), 4);
    }

    #[test]
    fn preorder_matches_explain_order_and_links_children() {
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                build: Box::new(PhysicalPlan::SeqScan {
                    table: "part".into(),
                    predicate: None,
                }),
                probe: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::SeqScan {
                        table: "lineitem".into(),
                        predicate: None,
                    }),
                    predicate: Expr::col("l_qty").lt(Expr::lit(5i64)),
                }),
                build_key: "p_partkey".into(),
                probe_key: "l_partkey".into(),
            }),
            group_by: vec![],
            aggregates: vec![],
        };
        let nodes = plan.preorder();
        assert_eq!(nodes.len(), plan.node_count());
        // Indices are dense and self-describing.
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.index, i);
        }
        // Labels line up with explain() line for line.
        let labels: Vec<String> = nodes.iter().map(|n| n.plan.node_label()).collect();
        let explain_labels: Vec<String> = plan
            .explain()
            .lines()
            .map(|l| l.trim_start().to_string())
            .collect();
        assert_eq!(labels, explain_labels);
        // 0 agg -> [1 hj]; 1 hj -> [2 scan part, 3 filter]; 3 -> [4 scan].
        assert_eq!(nodes[0].children, vec![1]);
        assert_eq!(nodes[1].children, vec![2, 3]);
        assert_eq!(nodes[2].children, Vec::<usize>::new());
        assert_eq!(nodes[3].children, vec![4]);
    }

    #[test]
    fn index_range_builders() {
        let r = IndexRange::eq("c", Value::Int(5));
        assert_eq!(r.lo, Bound::Included(Value::Int(5)));
        assert_eq!(r.hi, Bound::Included(Value::Int(5)));
        let r = IndexRange::between("c", Value::Int(1), Value::Int(9));
        assert_eq!(r.lo, Bound::Included(Value::Int(1)));
        assert_eq!(r.hi, Bound::Included(Value::Int(9)));
    }

    #[test]
    fn agg_builders() {
        assert_eq!(AggExpr::count_star("n").column, None);
        assert_eq!(AggExpr::sum("x", "s").func, AggFunc::Sum);
        assert_eq!(AggExpr::avg("x", "a").func, AggFunc::Avg);
        assert_eq!(AggExpr::min("x", "lo").func, AggFunc::Min);
        assert_eq!(AggExpr::max("x", "hi").func, AggFunc::Max);
    }
}
