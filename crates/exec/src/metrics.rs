//! Per-operator execution metrics — the `EXPLAIN ANALYZE` data model.
//!
//! Every execution builds an [`OpMetrics`] tree mirroring the physical
//! plan: one node per operator, carrying rows in/out, the optimizer's
//! estimated cardinality (attached after the fact via [`OpMetrics::annotate`]),
//! the q-error between the two, the morsel count, peak hash-table entries,
//! and the simulated-cost delta attributable to the operator's subtree.
//!
//! Determinism is load-bearing: golden `EXPLAIN ANALYZE` snapshots and the
//! serial-vs-parallel differential tests require the tree to be identical
//! at any worker-thread count.  Everything here is therefore derived from
//! input sizes and simulated cost counters, never from scheduling — the
//! morsel count is computed from `n` and the morsel size exactly as the
//! morsel scheduler would split the input, and partial results merge in
//! morsel index order just like `CostTracker`.  Wall-clock time *is*
//! recorded (`wall_ns`) because it is cheap and occasionally useful, but
//! it is excluded from both [`PartialEq`] and [`OpMetrics::render`], so
//! comparisons and rendered trees stay byte-stable.

use rqo_storage::CostTracker;

/// Execution metrics for one operator node (plus its children).
#[derive(Debug, Clone)]
pub struct OpMetrics {
    /// Operator label, identical to [`crate::PhysicalPlan::node_label`].
    pub label: String,
    /// Rows consumed: the sum of the children's `rows_out`, or for leaf
    /// access paths the rows actually examined (table rows for a
    /// sequential scan, fetched RIDs for index paths).
    pub rows_in: u64,
    /// Rows produced (the operator's actual output cardinality).
    pub rows_out: u64,
    /// The optimizer's estimated output cardinality, if one was attached
    /// via [`OpMetrics::annotate`].
    pub est_rows: Option<f64>,
    /// Number of morsels the operator's parallelizable input splits into
    /// under the active morsel size.  Computed from sizes, so serial and
    /// parallel execution report the same count; operators that never
    /// morselize (merge join, star semijoin) report 0.
    pub morsels: u64,
    /// Peak number of entries resident in the operator's hash table
    /// (hash-join build rows, aggregate groups); 0 for non-hash operators.
    pub peak_hash_entries: u64,
    /// Wall-clock nanoseconds spent in this subtree.  Informational only:
    /// excluded from equality and rendering.
    pub wall_ns: u128,
    /// Simulated cost charged by this subtree (children included).
    pub cost: CostTracker,
    /// Child operators, in the plan's execution order.
    pub children: Vec<OpMetrics>,
}

impl PartialEq for OpMetrics {
    /// Structural equality over every deterministic field; `wall_ns` is
    /// deliberately ignored so metrics trees from different runs (or
    /// thread counts) compare equal when the simulated execution matched.
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label
            && self.rows_in == other.rows_in
            && self.rows_out == other.rows_out
            && self.est_rows == other.est_rows
            && self.morsels == other.morsels
            && self.peak_hash_entries == other.peak_hash_entries
            && self.cost == other.cost
            && self.children == other.children
    }
}

impl OpMetrics {
    /// The q-error between the estimated and actual output cardinality:
    /// `max(est, actual) / min(est, actual)` with both clamped to ≥ 1 (the
    /// standard convention, so empty results do not divide by zero).
    /// `None` until an estimate has been attached.
    pub fn q_error(&self) -> Option<f64> {
        self.est_rows.map(|est| {
            let est = est.max(1.0);
            let actual = (self.rows_out as f64).max(1.0);
            est.max(actual) / est.min(actual)
        })
    }

    /// The cost charged by this operator alone: the subtree delta minus
    /// the children's subtree deltas.
    pub fn self_cost(&self) -> CostTracker {
        let children: CostTracker = self.children.iter().map(|c| c.cost).sum();
        self.cost.diff(&children)
    }

    /// Number of operator nodes in this metrics tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(OpMetrics::node_count)
            .sum::<usize>()
    }

    /// All nodes in pre-order (node before children, children in
    /// execution order) — the numbering shared with
    /// [`crate::PhysicalPlan::explain`] and the optimizer's per-node
    /// estimate vector.
    pub fn preorder(&self) -> Vec<&OpMetrics> {
        let mut out = Vec::with_capacity(self.node_count());
        fn walk<'a>(m: &'a OpMetrics, out: &mut Vec<&'a OpMetrics>) {
            out.push(m);
            for c in &m.children {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Attaches per-node estimated cardinalities, given in the same
    /// pre-order numbering as [`OpMetrics::preorder`].  Entries beyond the
    /// tree (or `None` entries) leave the node unannotated.
    pub fn annotate(&mut self, estimates: &[Option<f64>]) {
        fn walk(m: &mut OpMetrics, estimates: &[Option<f64>], idx: &mut usize) {
            if let Some(est) = estimates.get(*idx).copied().flatten() {
                m.est_rows = Some(est);
            }
            *idx += 1;
            for c in &mut m.children {
                walk(c, estimates, idx);
            }
        }
        let mut idx = 0;
        walk(self, estimates, &mut idx);
    }

    /// Renders the annotated tree, `EXPLAIN ANALYZE`-style: each operator
    /// label followed by an indented metrics line.  Deliberately excludes
    /// wall-clock time so the output is byte-identical across runs and
    /// thread counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let _ = writeln!(out, "{pad}{}", self.label);
        let est = match self.est_rows {
            Some(e) => format!("{e:.1}"),
            None => "?".to_string(),
        };
        let q = match self.q_error() {
            Some(q) => format!("{q:.2}"),
            None => "?".to_string(),
        };
        let _ = write!(
            out,
            "{pad}  (est_rows={est} actual_rows={} q_error={q} rows_in={} morsels={}",
            self.rows_out, self.rows_in, self.morsels
        );
        if self.peak_hash_entries > 0 {
            let _ = write!(out, " peak_hash={}", self.peak_hash_entries);
        }
        out.push_str(")\n");
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(label: &str, rows_out: u64) -> OpMetrics {
        OpMetrics {
            label: label.to_string(),
            rows_in: rows_out,
            rows_out,
            est_rows: None,
            morsels: 1,
            peak_hash_entries: 0,
            wall_ns: 0,
            cost: CostTracker::new(),
            children: vec![],
        }
    }

    fn sample_tree() -> OpMetrics {
        let mut cost = CostTracker::new();
        cost.charge_cpu_ops(10);
        cost.charge_hash_builds(4);
        OpMetrics {
            label: "HashJoin a = b".to_string(),
            rows_in: 7,
            rows_out: 3,
            est_rows: None,
            morsels: 2,
            peak_hash_entries: 4,
            wall_ns: 123,
            cost,
            children: vec![leaf("SeqScan t", 4), leaf("SeqScan u", 3)],
        }
    }

    #[test]
    fn equality_ignores_wall_time() {
        let a = sample_tree();
        let mut b = sample_tree();
        b.wall_ns = 999_999;
        b.children[0].wall_ns = 42;
        assert_eq!(a, b);
        b.children[0].rows_out = 5;
        assert_ne!(a, b);
    }

    #[test]
    fn annotate_walks_preorder() {
        let mut m = sample_tree();
        m.annotate(&[Some(2.5), None, Some(8.0)]);
        assert_eq!(m.est_rows, Some(2.5));
        assert_eq!(m.children[0].est_rows, None);
        assert_eq!(m.children[1].est_rows, Some(8.0));
        let order: Vec<&str> = m.preorder().iter().map(|n| n.label.as_str()).collect();
        assert_eq!(order, vec!["HashJoin a = b", "SeqScan t", "SeqScan u"]);
    }

    #[test]
    fn q_error_clamps_and_is_symmetric() {
        let mut m = leaf("SeqScan t", 10);
        assert_eq!(m.q_error(), None);
        m.est_rows = Some(40.0);
        assert!((m.q_error().unwrap() - 4.0).abs() < 1e-12);
        m.est_rows = Some(2.5);
        assert!((m.q_error().unwrap() - 4.0).abs() < 1e-12);
        // Empty actuals clamp to 1 rather than dividing by zero.
        m.rows_out = 0;
        m.est_rows = Some(0.0);
        assert!((m.q_error().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_cost_subtracts_children() {
        let mut m = sample_tree();
        let mut child_cost = CostTracker::new();
        child_cost.charge_cpu_ops(3);
        m.children[0].cost = child_cost;
        let own = m.self_cost();
        assert_eq!(own.cpu_ops, 7);
        assert_eq!(own.hash_builds, 4);
    }

    #[test]
    fn render_is_wall_time_free_and_indented() {
        let mut m = sample_tree();
        m.annotate(&[Some(3.0), Some(4.0), Some(6.0)]);
        let text = m.render();
        let expected = "HashJoin a = b\n  (est_rows=3.0 actual_rows=3 q_error=1.00 rows_in=7 morsels=2 peak_hash=4)\n  SeqScan t\n    (est_rows=4.0 actual_rows=4 q_error=1.00 rows_in=4 morsels=1)\n  SeqScan u\n    (est_rows=6.0 actual_rows=3 q_error=2.00 rows_in=3 morsels=1)\n";
        assert_eq!(text, expected);
        let mut later = m.clone();
        later.wall_ns = 77;
        assert_eq!(later.render(), text);
    }
}
