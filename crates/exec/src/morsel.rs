//! Morsel-driven parallel scheduling.
//!
//! Leaf operators and pipeline stages split their input into fixed-size
//! **morsels** (contiguous index ranges) that worker threads pull from a
//! shared counter — the scheduling scheme of Leis et al., "Morsel-Driven
//! Parallelism" (SIGMOD 2014), reduced to this executor's
//! materialize-everything model.
//!
//! Determinism is the design constraint, not an afterthought: every
//! parallel operator in this crate produces morsel-local results that the
//! coordinator recombines **in morsel index order**.  Because morsel
//! boundaries depend only on [`ExecOptions::morsel_size`] (never on the
//! thread count, the scheduler, or timing), the recombined rows and the
//! merged [`rqo_storage::CostTracker`] totals are bit-identical across
//! thread counts and across schedulers — the property the
//! `parallel_equivalence` differential suite pins down.
//!
//! Three scheduling modes share one entry point, [`run_morsels`]:
//!
//! * **Inline** (`threads <= 1`, no scheduler): the calling thread runs
//!   every morsel, polling the [`QueryToken`] between morsels.
//! * **Scoped** (`threads > 1`, no scheduler): per-query scoped workers
//!   pull from an atomic counter, polling the token before each claim.
//! * **Pooled** (an external [`MorselScheduler`] is attached): morsels are
//!   handed to a shared, long-lived worker pool that interleaves them
//!   with other queries' morsels.  This is how the multi-session service
//!   runs many queries on one fixed set of threads.
//!
//! In every mode a fired token stops the job **within one morsel**: no new
//! morsel is started after the poll observes the stop, and [`run_morsels`]
//! returns `None` so the operator tree unwinds without fabricating a
//! partial result.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use rqo_core::QueryToken;
pub use rqo_core::StopReason;

/// Default number of rows per morsel.
///
/// Large enough that per-morsel overhead (a hash-map allocation, an atomic
/// increment) is amortized over thousands of rows, small enough that
/// a scan of a bench-scale table still yields tens of morsels to balance.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// An external morsel scheduler — typically the shared worker pool of the
/// multi-session query service.
///
/// The executor calls [`run_job`](Self::run_job) once per parallel
/// operator stage; the scheduler runs `run_one(i)` exactly once for every
/// morsel index `i < n_morsels` (on any threads, in any order, with any
/// interleaving against other queries) and returns `true`, **or** stops
/// early because the token fired and returns `false`, guaranteeing that
/// no invocation of `run_one` is still running or will start after the
/// call returns.
pub trait MorselScheduler: Send + Sync {
    /// Runs one job of `n_morsels` morsels to completion (`true`) or
    /// until the token fires (`false`).
    fn run_job(
        &self,
        token: Option<&QueryToken>,
        n_morsels: usize,
        run_one: &(dyn Fn(usize) + Send + Sync),
    ) -> bool;
}

/// Execution knobs threaded through [`crate::execute_with`].
///
/// The default is serial execution (`threads = 1`, no scheduler, no
/// token), which takes exactly the same code paths as [`crate::execute`]
/// did before parallelism existed.
#[derive(Clone)]
pub struct ExecOptions {
    /// Worker threads for scoped parallel operators.  `0` and `1` both
    /// mean serial execution (unless a [`scheduler`](Self::scheduler) is
    /// attached).
    pub threads: usize,
    /// Rows per morsel (clamped to at least 1).  Affects only how work is
    /// chunked; results and costs are identical for every value.
    pub morsel_size: usize,
    /// Cooperative cancellation/deadline token, polled at operator entry
    /// and at every morsel boundary.
    pub token: Option<QueryToken>,
    /// External morsel scheduler (the service's shared worker pool).
    /// When present it replaces per-query `thread::scope` entirely.
    pub scheduler: Option<Arc<dyn MorselScheduler>>,
    /// Forces the pre-vectorization row-at-a-time kernels for scan,
    /// filter, project, hash join, and hash aggregation.  Results, costs,
    /// and metrics are bit-identical to the columnar default; the flag
    /// exists so differential tests can pin that equivalence.
    pub row_fallback: bool,
}

impl std::fmt::Debug for ExecOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecOptions")
            .field("threads", &self.threads)
            .field("morsel_size", &self.morsel_size)
            .field("token", &self.token.is_some())
            .field("scheduler", &self.scheduler.is_some())
            .field("row_fallback", &self.row_fallback)
            .finish()
    }
}

impl PartialEq for ExecOptions {
    fn eq(&self, other: &Self) -> bool {
        let tokens_match = match (&self.token, &other.token) {
            (None, None) => true,
            (Some(a), Some(b)) => a.same_token(b),
            _ => false,
        };
        let schedulers_match = match (&self.scheduler, &other.scheduler) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        self.threads == other.threads
            && self.morsel_size == other.morsel_size
            && tokens_match
            && schedulers_match
            && self.row_fallback == other.row_fallback
    }
}

impl Eq for ExecOptions {}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            morsel_size: DEFAULT_MORSEL_SIZE,
            token: None,
            scheduler: None,
            row_fallback: false,
        }
    }
}

impl ExecOptions {
    /// Serial execution (the default).
    pub fn serial() -> Self {
        Self::default()
    }

    /// Parallel execution on `threads` scoped workers with the default
    /// morsel size.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Overrides the morsel size.
    pub fn with_morsel_size(mut self, morsel_size: usize) -> Self {
        self.morsel_size = morsel_size;
        self
    }

    /// Attaches a cancellation/deadline token.
    pub fn with_token(mut self, token: QueryToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Attaches an external morsel scheduler (shared worker pool).
    pub fn with_scheduler(mut self, scheduler: Arc<dyn MorselScheduler>) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Forces the row-at-a-time reference kernels (see
    /// [`row_fallback`](Self::row_fallback)).
    pub fn with_row_fallback(mut self, row_fallback: bool) -> Self {
        self.row_fallback = row_fallback;
        self
    }

    /// True when parallel operator variants should run (scoped workers or
    /// an external pool).
    pub fn is_parallel(&self) -> bool {
        self.threads > 1 || self.scheduler.is_some()
    }

    /// Polls the token (if any): `Some(reason)` means the query must stop.
    pub fn check_stop(&self) -> Option<StopReason> {
        self.token.as_ref().and_then(QueryToken::poll)
    }

    /// The stop reason of an already-fired token, without consuming a
    /// poll-countdown tick (used to label an interruption after the
    /// fact).
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.token.as_ref().and_then(QueryToken::stop_reason)
    }

    /// Number of morsels an input of `n` rows splits into under these
    /// options — the same arithmetic [`run_morsels`] uses, so the count
    /// depends only on sizes, never on the thread count or scheduling.
    /// `EXPLAIN ANALYZE` reports this for serial execution too (the count
    /// the morsel scheduler *would* use).
    pub fn morsel_count(&self, n: usize) -> u64 {
        n.div_ceil(self.morsel_size.max(1)) as u64
    }
}

/// Splits `0..n` into morsels and applies `work` to each, returning the
/// per-morsel results **in morsel index order** — or `None` if the
/// query's token fired before every morsel ran (the job stops within one
/// morsel of the poll observing the stop).
///
/// `work` must be pure with respect to ordering: it may read shared state
/// but sees no information about which worker runs it or when.
pub(crate) fn run_morsels<T, F>(opts: &ExecOptions, n: usize, work: F) -> Option<Vec<T>>
where
    T: Send + Sync,
    F: Fn(Range<usize>) -> T + Sync,
{
    let size = opts.morsel_size.max(1);
    let n_morsels = n.div_ceil(size);
    let bounds = |i: usize| i * size..((i + 1) * size).min(n);

    // Pooled: hand the whole job to the shared scheduler.  Result slots
    // are write-once cells filled by whichever pool thread runs each
    // morsel; `run_job` returning guarantees no `run_one` is in flight.
    if let Some(scheduler) = &opts.scheduler {
        if n_morsels == 0 {
            return Some(Vec::new());
        }
        let slots: Vec<OnceLock<T>> = (0..n_morsels).map(|_| OnceLock::new()).collect();
        let run_one = |i: usize| {
            let _ = slots[i].set(work(bounds(i)));
        };
        if !scheduler.run_job(opts.token.as_ref(), n_morsels, &run_one) {
            return None;
        }
        return Some(
            slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .expect("scheduler ran every morsel exactly once")
                })
                .collect(),
        );
    }

    // Inline: the calling thread runs every morsel, polling between them.
    let workers = opts.threads.min(n_morsels);
    if workers <= 1 {
        let mut out = Vec::with_capacity(n_morsels);
        for i in 0..n_morsels {
            if opts.check_stop().is_some() {
                return None;
            }
            out.push(work(bounds(i)));
        }
        return Some(out);
    }

    // Scoped: per-query workers claim from an atomic counter, polling the
    // token before each claim.  A fired token flips the sticky `stopped`
    // flag so every worker quits at its next claim.
    let next = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    let slots: Vec<OnceLock<T>> = (0..n_morsels).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if let Some(token) = &opts.token {
                    if token.poll().is_some() {
                        stopped.store(true, Ordering::SeqCst);
                    }
                }
                if stopped.load(Ordering::SeqCst) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_morsels {
                    break;
                }
                let _ = slots[i].set(work(bounds(i)));
            });
        }
    });
    if stopped.load(Ordering::SeqCst) {
        return None;
    }
    Some(
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("every morsel index was claimed exactly once")
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threads: usize, morsel_size: usize) -> ExecOptions {
        ExecOptions {
            threads,
            morsel_size,
            ..ExecOptions::serial()
        }
    }

    #[test]
    fn defaults_are_serial() {
        let o = ExecOptions::default();
        assert_eq!(o.threads, 1);
        assert!(!o.is_parallel());
        assert!(ExecOptions::with_threads(2).is_parallel());
        assert!(!ExecOptions::with_threads(0).is_parallel());
        assert_eq!(ExecOptions::serial(), ExecOptions::default());
        assert_eq!(
            ExecOptions::with_threads(4).with_morsel_size(7).morsel_size,
            7
        );
    }

    #[test]
    fn covers_every_index_in_order() {
        for threads in [1, 2, 8] {
            for size in [1, 3, 10, 100] {
                let ranges = run_morsels(&opts(threads, size), 23, |r| r).unwrap();
                let flat: Vec<usize> = ranges.into_iter().flatten().collect();
                assert_eq!(flat, (0..23).collect::<Vec<_>>(), "t={threads} s={size}");
            }
        }
    }

    #[test]
    fn empty_input_yields_no_morsels() {
        let parts = run_morsels(&opts(8, 4), 0, |r| r.len()).unwrap();
        assert!(parts.is_empty());
    }

    #[test]
    fn results_independent_of_thread_count() {
        let serial = run_morsels(&opts(1, 5), 57, |r| r.sum::<usize>()).unwrap();
        for threads in [2, 3, 8, 16] {
            let par = run_morsels(&opts(threads, 5), 57, |r| r.sum::<usize>()).unwrap();
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn zero_morsel_size_is_clamped() {
        let parts = run_morsels(&opts(2, 0), 3, |r| r.len()).unwrap();
        assert_eq!(parts, vec![1, 1, 1]);
    }

    #[test]
    fn morsel_count_matches_run_morsels() {
        for (threads, size, n) in [(1, 5, 57), (8, 5, 57), (2, 0, 3), (4, 10, 0), (1, 7, 7)] {
            let o = opts(threads, size);
            let parts = run_morsels(&o, n, |r| r.len()).unwrap();
            assert_eq!(o.morsel_count(n), parts.len() as u64, "size={size} n={n}");
        }
    }

    #[test]
    fn fired_token_stops_inline_within_one_morsel() {
        let ran = AtomicUsize::new(0);
        let o = opts(1, 1).with_token(QueryToken::cancel_after_polls(3));
        let result = run_morsels(&o, 10, |_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert!(result.is_none());
        assert_eq!(
            ran.load(Ordering::SeqCst),
            3,
            "exactly k morsels before stop"
        );
    }

    #[test]
    fn fired_token_stops_scoped_workers() {
        let ran = AtomicUsize::new(0);
        let token = QueryToken::new();
        token.cancel();
        let o = opts(4, 1).with_token(token);
        let result = run_morsels(&o, 100, |_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert!(result.is_none());
        assert_eq!(ran.load(Ordering::SeqCst), 0, "pre-cancelled runs nothing");
    }

    #[test]
    fn unfired_token_changes_nothing() {
        let o = opts(4, 5).with_token(QueryToken::new());
        let plain = run_morsels(&opts(4, 5), 57, |r| r.sum::<usize>()).unwrap();
        let tokened = run_morsels(&o, 57, |r| r.sum::<usize>()).unwrap();
        assert_eq!(plain, tokened);
    }

    #[test]
    fn exec_options_equality_is_token_identity() {
        let token = QueryToken::new();
        let a = ExecOptions::serial().with_token(token.clone());
        let b = ExecOptions::serial().with_token(token);
        let c = ExecOptions::serial().with_token(QueryToken::new());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, ExecOptions::serial());
    }
}
