//! Morsel-driven parallel scheduling.
//!
//! Leaf operators and pipeline stages split their input into fixed-size
//! **morsels** (contiguous index ranges) that a small pool of scoped
//! worker threads pulls from a shared atomic counter — the scheduling
//! scheme of Leis et al., "Morsel-Driven Parallelism" (SIGMOD 2014),
//! reduced to this executor's materialize-everything model.
//!
//! Determinism is the design constraint, not an afterthought: every
//! parallel operator in this crate produces morsel-local results that the
//! coordinator recombines **in morsel index order**.  Because morsel
//! boundaries depend only on [`ExecOptions::morsel_size`] (never on the
//! thread count or on scheduling timing), the recombined rows and the
//! merged [`rqo_storage::CostTracker`] totals are bit-identical across
//! thread counts — the property the `parallel_equivalence` differential
//! suite pins down.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of rows per morsel.
///
/// Large enough that per-morsel overhead (a hash-map allocation, an atomic
/// increment) is amortized over thousands of rows, small enough that
/// a scan of a bench-scale table still yields tens of morsels to balance.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// Execution knobs threaded through [`crate::execute_with`].
///
/// The default is serial execution (`threads = 1`), which takes exactly
/// the same code paths as [`crate::execute`] did before parallelism
/// existed — parallel operators are only entered when `threads > 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for parallel operators.  `0` and `1` both mean
    /// serial execution.
    pub threads: usize,
    /// Rows per morsel (clamped to at least 1).  Affects only how work is
    /// chunked; results and costs are identical for every value.
    pub morsel_size: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            morsel_size: DEFAULT_MORSEL_SIZE,
        }
    }
}

impl ExecOptions {
    /// Serial execution (the default).
    pub fn serial() -> Self {
        Self::default()
    }

    /// Parallel execution on `threads` workers with the default morsel
    /// size.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Overrides the morsel size.
    pub fn with_morsel_size(mut self, morsel_size: usize) -> Self {
        self.morsel_size = morsel_size;
        self
    }

    /// True when parallel operator variants should run.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Number of morsels an input of `n` rows splits into under these
    /// options — the same arithmetic [`run_morsels`] uses, so the count
    /// depends only on sizes, never on the thread count or scheduling.
    /// `EXPLAIN ANALYZE` reports this for serial execution too (the count
    /// the morsel scheduler *would* use).
    pub fn morsel_count(&self, n: usize) -> u64 {
        n.div_ceil(self.morsel_size.max(1)) as u64
    }
}

/// Splits `0..n` into morsels and applies `work` to each, returning the
/// per-morsel results **in morsel index order**.
///
/// With one worker (or one morsel) this runs inline on the calling
/// thread; otherwise `min(threads, morsels)` scoped workers pull morsel
/// indices from an atomic counter.  `work` must be pure with respect to
/// ordering: it may read shared state but sees no information about which
/// worker runs it or when.
pub(crate) fn run_morsels<T, F>(opts: &ExecOptions, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let size = opts.morsel_size.max(1);
    let n_morsels = n.div_ceil(size);
    let bounds = |i: usize| i * size..((i + 1) * size).min(n);
    let workers = opts.threads.min(n_morsels);
    if workers <= 1 {
        return (0..n_morsels).map(|i| work(bounds(i))).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_morsels).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_morsels {
                            break;
                        }
                        done.push((i, work(bounds(i))));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("morsel worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every morsel index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threads: usize, morsel_size: usize) -> ExecOptions {
        ExecOptions {
            threads,
            morsel_size,
        }
    }

    #[test]
    fn defaults_are_serial() {
        let o = ExecOptions::default();
        assert_eq!(o.threads, 1);
        assert!(!o.is_parallel());
        assert!(ExecOptions::with_threads(2).is_parallel());
        assert!(!ExecOptions::with_threads(0).is_parallel());
        assert_eq!(ExecOptions::serial(), ExecOptions::default());
        assert_eq!(
            ExecOptions::with_threads(4).with_morsel_size(7).morsel_size,
            7
        );
    }

    #[test]
    fn covers_every_index_in_order() {
        for threads in [1, 2, 8] {
            for size in [1, 3, 10, 100] {
                let ranges = run_morsels(&opts(threads, size), 23, |r| r);
                let flat: Vec<usize> = ranges.into_iter().flatten().collect();
                assert_eq!(flat, (0..23).collect::<Vec<_>>(), "t={threads} s={size}");
            }
        }
    }

    #[test]
    fn empty_input_yields_no_morsels() {
        let parts = run_morsels(&opts(8, 4), 0, |r| r.len());
        assert!(parts.is_empty());
    }

    #[test]
    fn results_independent_of_thread_count() {
        let serial = run_morsels(&opts(1, 5), 57, |r| r.sum::<usize>());
        for threads in [2, 3, 8, 16] {
            let par = run_morsels(&opts(threads, 5), 57, |r| r.sum::<usize>());
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn zero_morsel_size_is_clamped() {
        let parts = run_morsels(&opts(2, 0), 3, |r| r.len());
        assert_eq!(parts, vec![1, 1, 1]);
    }

    #[test]
    fn morsel_count_matches_run_morsels() {
        for (threads, size, n) in [(1, 5, 57), (8, 5, 57), (2, 0, 3), (4, 10, 0), (1, 7, 7)] {
            let o = opts(threads, size);
            let parts = run_morsels(&o, n, |r| r.len());
            assert_eq!(o.morsel_count(n), parts.len() as u64, "size={size} n={n}");
        }
    }
}
