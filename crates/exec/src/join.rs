//! Join operators: hash join, merge join, indexed nested loops, and the
//! star semijoin strategy.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use rqo_storage::{Catalog, ColumnVec, CostParams, CostTracker, NullMask, Rid, Value};

use crate::batch::Batch;
use crate::morsel::{run_morsels, ExecOptions};
use crate::plan::SemiJoinLeg;
use crate::scan::{fetch_rows, intersect_sorted, rids_for_range};

/// Joins two batches' schemas, qualifying colliding names with the given
/// prefixes.
fn join_schemas(left: &Batch, right: &Batch) -> rqo_storage::Schema {
    left.schema.join(&right.schema, "l", "r")
}

/// Hash join: builds on `build`, probes with `probe`.
///
/// Charges one hash insert per build row, one probe per probe row, and one
/// CPU op per output row.  Output rows are `build ++ probe` columns.
pub fn hash_join(
    tracker: &mut CostTracker,
    build: Batch,
    probe: Batch,
    build_key: &str,
    probe_key: &str,
) -> Batch {
    let schema = join_schemas(&build, &probe);
    let bk = build.schema.expect_index(build_key);
    let pk = probe.schema.expect_index(probe_key);

    tracker.charge_hash_builds(build.len() as u64);
    let mut table: HashMap<Value, Vec<usize>> = HashMap::with_capacity(build.len());
    for (i, row) in build.rows.iter().enumerate() {
        table.entry(row[bk].clone()).or_default().push(i);
    }

    tracker.charge_hash_probes(probe.len() as u64);
    let mut out = Vec::new();
    for prow in &probe.rows {
        if let Some(matches) = table.get(&prow[pk]) {
            for &bi in matches {
                let mut row = build.rows[bi].clone();
                row.extend(prow.iter().cloned());
                out.push(row);
            }
        }
    }
    tracker.charge_cpu_ops(out.len() as u64);
    Batch::new(schema, out)
}

/// Morsel-parallel [`hash_join`]: both the build and probe phases are
/// partitioned into morsels.
///
/// Build morsels produce local `key → row indices` maps that the
/// coordinator merges **in morsel index order**; because morsel `i` only
/// holds indices smaller than morsel `i+1`'s, every key's index list
/// comes out ascending — exactly the serial build order.  Probe morsels
/// emit their matches independently and are concatenated in morsel order,
/// reproducing the serial output row order.  All three charges
/// (`hash_builds`, `hash_probes`, `cpu_ops`) are totals over input/output
/// sizes, so the merged tracker is bit-identical to serial.  Returns
/// `None` when the query's token fired during either phase.
pub fn hash_join_par(
    tracker: &mut CostTracker,
    build: Batch,
    probe: Batch,
    build_key: &str,
    probe_key: &str,
    opts: &ExecOptions,
) -> Option<Batch> {
    let schema = join_schemas(&build, &probe);
    let bk = build.schema.expect_index(build_key);
    let pk = probe.schema.expect_index(probe_key);

    tracker.charge_hash_builds(build.len() as u64);
    let partials = run_morsels(opts, build.len(), |morsel| {
        let mut local: HashMap<Value, Vec<usize>> = HashMap::new();
        for i in morsel {
            local.entry(build.rows[i][bk].clone()).or_default().push(i);
        }
        local
    })?;
    let mut table: HashMap<Value, Vec<usize>> = HashMap::with_capacity(build.len());
    for partial in partials {
        for (key, mut indices) in partial {
            table.entry(key).or_default().append(&mut indices);
        }
    }

    tracker.charge_hash_probes(probe.len() as u64);
    let parts = run_morsels(opts, probe.len(), |morsel| {
        let mut out = Vec::new();
        for prow in &probe.rows[morsel] {
            if let Some(matches) = table.get(&prow[pk]) {
                for &bi in matches {
                    let mut row = build.rows[bi].clone();
                    row.extend(prow.iter().cloned());
                    out.push(row);
                }
            }
        }
        out
    })?;
    let out: Vec<Vec<Value>> = parts.into_iter().flatten().collect();
    tracker.charge_cpu_ops(out.len() as u64);
    Some(Batch::new(schema, out))
}

/// Vectorized [`hash_join`]: extracts both key columns into typed
/// vectors once and, when the two sides are the same type family, builds
/// and probes a *primitive-keyed* hash table (`i64`, `f64` bits,
/// `Arc<str>`, `bool`) instead of hashing `Value`s — no per-row `Value`
/// clone or enum dispatch on the hot path.
///
/// Key semantics replicate the row path exactly:
///
/// - NULL keys map to `None`, matching `Value::total_cmp`'s
///   NULL-equals-NULL storage equality that the row path's
///   `HashMap<Value, _>` uses;
/// - float keys use `f64::to_bits`, the same equivalence the row path
///   gets from `Value`'s `total_cmp`-based `Eq` and `to_bits`-based
///   `Hash`;
/// - mismatched type families (e.g. an `Int` build key probed by a
///   `Date`, where `Value`'s tag-prefixed `Hash` never finds the
///   bucket even though `Eq` would coerce) and `Mixed` columns fall back
///   to the row implementation wholesale, bug-for-bug.
pub fn hash_join_columnar(
    tracker: &mut CostTracker,
    build: Batch,
    probe: Batch,
    build_key: &str,
    probe_key: &str,
) -> Batch {
    hash_join_columnar_inner(tracker, build, probe, build_key, probe_key, None)
        .expect("serial hash join has no token to interrupt it")
}

/// Morsel-parallel [`hash_join_columnar`], bit-identical to
/// [`hash_join_par`].  Returns `None` when the query's token fired.
pub fn hash_join_columnar_par(
    tracker: &mut CostTracker,
    build: Batch,
    probe: Batch,
    build_key: &str,
    probe_key: &str,
    opts: &ExecOptions,
) -> Option<Batch> {
    hash_join_columnar_inner(tracker, build, probe, build_key, probe_key, Some(opts))
}

fn hash_join_columnar_inner(
    tracker: &mut CostTracker,
    build: Batch,
    probe: Batch,
    build_key: &str,
    probe_key: &str,
    opts: Option<&ExecOptions>,
) -> Option<Batch> {
    let bk = build.schema.expect_index(build_key);
    let pk = probe.schema.expect_index(probe_key);
    let bcol = ColumnVec::from_rows(&build.rows, bk, build.schema.column(bk).data_type);
    let pcol = ColumnVec::from_rows(&probe.rows, pk, probe.schema.column(pk).data_type);

    fn key_null(nulls: &Option<NullMask>) -> impl Fn(usize) -> bool + Sync + '_ {
        move |i| nulls.as_ref().is_some_and(|m| m.is_null(i))
    }

    match (&bcol, &pcol) {
        (
            ColumnVec::Int {
                values: bv,
                nulls: bn,
            },
            ColumnVec::Int {
                values: pv,
                nulls: pn,
            },
        ) => {
            let (bnull, pnull) = (key_null(bn), key_null(pn));
            join_typed(
                tracker,
                &build,
                &probe,
                |i| (!bnull(i)).then(|| bv[i]),
                |i| (!pnull(i)).then(|| pv[i]),
                opts,
            )
        }
        (
            ColumnVec::Float {
                values: bv,
                nulls: bn,
            },
            ColumnVec::Float {
                values: pv,
                nulls: pn,
            },
        ) => {
            // total_cmp equality ⟺ identical bit patterns, so the bits are
            // the exact key equivalence the row path uses.
            let (bnull, pnull) = (key_null(bn), key_null(pn));
            join_typed(
                tracker,
                &build,
                &probe,
                |i| (!bnull(i)).then(|| bv[i].to_bits()),
                |i| (!pnull(i)).then(|| pv[i].to_bits()),
                opts,
            )
        }
        (
            ColumnVec::Date {
                values: bv,
                nulls: bn,
            },
            ColumnVec::Date {
                values: pv,
                nulls: pn,
            },
        ) => {
            let (bnull, pnull) = (key_null(bn), key_null(pn));
            join_typed(
                tracker,
                &build,
                &probe,
                |i| (!bnull(i)).then(|| bv[i]),
                |i| (!pnull(i)).then(|| pv[i]),
                opts,
            )
        }
        (
            ColumnVec::Bool {
                values: bv,
                nulls: bn,
            },
            ColumnVec::Bool {
                values: pv,
                nulls: pn,
            },
        ) => {
            let (bnull, pnull) = (key_null(bn), key_null(pn));
            join_typed(
                tracker,
                &build,
                &probe,
                |i| (!bnull(i)).then(|| bv[i]),
                |i| (!pnull(i)).then(|| pv[i]),
                opts,
            )
        }
        (
            ColumnVec::Str {
                codes: bc,
                dict: bd,
                nulls: bn,
            },
            ColumnVec::Str {
                codes: pc,
                dict: pd,
                nulls: pn,
            },
        ) => {
            // Keys are the dictionary strings themselves (`Arc<str>`
            // hashes/compares by content); cloning one is a refcount bump.
            let (bnull, pnull) = (key_null(bn), key_null(pn));
            join_typed(
                tracker,
                &build,
                &probe,
                |i| (!bnull(i)).then(|| Arc::clone(&bd[bc[i] as usize])),
                |i| (!pnull(i)).then(|| Arc::clone(&pd[pc[i] as usize])),
                opts,
            )
        }
        _ => match opts {
            None => Some(hash_join(tracker, build, probe, build_key, probe_key)),
            Some(o) => hash_join_par(tracker, build, probe, build_key, probe_key, o),
        },
    }
}

/// Shared build/probe skeleton over primitive keys.  `None` keys are NULL
/// and join with each other, mirroring `Value::Null`'s storage equality.
/// Structure (build in row order, probe in row order, morsel-index-order
/// merges, identical charges) matches [`hash_join`]/[`hash_join_par`]
/// line for line, so rows, row order, and costs are bit-identical.
fn join_typed<K, FB, FP>(
    tracker: &mut CostTracker,
    build: &Batch,
    probe: &Batch,
    bkey: FB,
    pkey: FP,
    opts: Option<&ExecOptions>,
) -> Option<Batch>
where
    K: Hash + Eq + Send + Sync,
    FB: Fn(usize) -> Option<K> + Sync,
    FP: Fn(usize) -> Option<K> + Sync,
{
    let schema = join_schemas(build, probe);

    tracker.charge_hash_builds(build.len() as u64);
    let mut table: HashMap<Option<K>, Vec<usize>> = HashMap::with_capacity(build.len());
    match opts {
        None => {
            for i in 0..build.len() {
                table.entry(bkey(i)).or_default().push(i);
            }
        }
        Some(o) => {
            let partials = run_morsels(o, build.len(), |morsel| {
                let mut local: HashMap<Option<K>, Vec<usize>> = HashMap::new();
                for i in morsel {
                    local.entry(bkey(i)).or_default().push(i);
                }
                local
            })?;
            for partial in partials {
                for (key, mut indices) in partial {
                    table.entry(key).or_default().append(&mut indices);
                }
            }
        }
    }

    tracker.charge_hash_probes(probe.len() as u64);
    let emit = |range: std::ops::Range<usize>| -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for i in range {
            if let Some(matches) = table.get(&pkey(i)) {
                let prow = &probe.rows[i];
                for &bi in matches {
                    let mut row = build.rows[bi].clone();
                    row.extend(prow.iter().cloned());
                    out.push(row);
                }
            }
        }
        out
    };
    let out: Vec<Vec<Value>> = match opts {
        None => emit(0..probe.len()),
        Some(o) => run_morsels(o, probe.len(), emit)?
            .into_iter()
            .flatten()
            .collect(),
    };
    tracker.charge_cpu_ops(out.len() as u64);
    Some(Batch::new(schema, out))
}

/// Merge join on equality keys.  Inputs not already sorted on their key
/// are sorted here, charging `n·log₂(n)` CPU ops each (an in-memory sort;
/// the experiments' merge joins consume clustered scans, which arrive
/// sorted and pay nothing).
pub fn merge_join(
    tracker: &mut CostTracker,
    mut left: Batch,
    mut right: Batch,
    left_key: &str,
    right_key: &str,
) -> Batch {
    let schema = join_schemas(&left, &right);
    let lk = left.schema.expect_index(left_key);
    let rk = right.schema.expect_index(right_key);

    for (batch, key) in [(&mut left, lk), (&mut right, rk)] {
        let sorted = batch
            .rows
            .windows(2)
            .all(|w| w[0][key].total_cmp(&w[1][key]) != std::cmp::Ordering::Greater);
        if !sorted {
            let n = batch.rows.len() as u64;
            tracker.charge_cpu_ops(n * (n.max(2) as f64).log2().ceil() as u64);
            batch.rows.sort_by(|a, b| a[key].total_cmp(&b[key]));
        }
    }

    tracker.charge_cpu_ops((left.len() + right.len()) as u64);
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        match left.rows[i][lk].total_cmp(&right.rows[j][rk]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the cross product of the equal-key runs.
                let key = left.rows[i][lk].clone();
                let i_end = (i..left.len())
                    .find(|&x| left.rows[x][lk] != key)
                    .unwrap_or(left.len());
                let j_end = (j..right.len())
                    .find(|&x| right.rows[x][rk] != key)
                    .unwrap_or(right.len());
                for li in i..i_end {
                    for rj in j..j_end {
                        let mut row = left.rows[li].clone();
                        row.extend(right.rows[rj].iter().cloned());
                        out.push(row);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    tracker.charge_cpu_ops(out.len() as u64);
    Batch::new(schema, out)
}

/// Indexed nested-loops join: for each outer row, probe the inner table's
/// secondary index on `inner_index_column` with the outer `outer_key`
/// value and fetch the matching inner rows.
///
/// Charges, per outer row, one random I/O for the index descend plus one
/// random I/O per matched (scattered) inner row — the access pattern that
/// makes this plan unbeatable for a handful of outer rows and hopeless for
/// thousands (Experiment 2's low-selectivity regime).
pub fn indexed_nl_join(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    outer: Batch,
    inner_table: &str,
    inner_index_column: &str,
    outer_key: &str,
) -> Batch {
    let inner = catalog.table(inner_table).expect("inner table exists");
    let index = catalog
        .secondary_index(inner_table, inner_index_column)
        .unwrap_or_else(|| panic!("no secondary index on {inner_table}.{inner_index_column}"));
    let ok = outer.schema.expect_index(outer_key);
    let schema = outer.schema.join(inner.schema(), "l", "r");

    let mut out = Vec::new();
    for orow in &outer.rows {
        tracker.charge_random_ios(1); // descend to the leaf for this key
        let matches = index.lookup_eq(&orow[ok]);
        tracker.charge_cpu_ops(matches.len() as u64);
        let rids: Vec<Rid> = matches.iter().map(|(_, rid)| *rid).collect();
        let rows = fetch_rows(inner, params, tracker, rids);
        for irow in rows {
            let mut row = orow.clone();
            row.extend(irow);
            out.push(row);
        }
    }
    tracker.charge_cpu_ops(out.len() as u64);
    Batch::new(schema, out)
}

/// Morsel-parallel [`indexed_nl_join`]: outer rows are morselized; each
/// worker probes the (read-only) index and fetches inner rows, charging a
/// morsel-local tracker.
///
/// Every outer row's charges (descend, per-match CPU, per-call
/// [`fetch_rows`]) are independent of the other rows, so summing the
/// morsel trackers — all-integer counters — reproduces the serial totals
/// exactly, and concatenating morsel outputs in index order reproduces
/// the serial row order.  Returns `None` when the query's token fired.
#[allow(clippy::too_many_arguments)]
pub fn indexed_nl_join_par(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    outer: Batch,
    inner_table: &str,
    inner_index_column: &str,
    outer_key: &str,
    opts: &ExecOptions,
) -> Option<Batch> {
    let inner = catalog.table(inner_table).expect("inner table exists");
    let index = catalog
        .secondary_index(inner_table, inner_index_column)
        .unwrap_or_else(|| panic!("no secondary index on {inner_table}.{inner_index_column}"));
    let ok = outer.schema.expect_index(outer_key);
    let schema = outer.schema.join(inner.schema(), "l", "r");

    let parts = run_morsels(opts, outer.rows.len(), |morsel| {
        let mut local = CostTracker::new();
        let mut out = Vec::new();
        for orow in &outer.rows[morsel] {
            local.charge_random_ios(1); // descend to the leaf for this key
            let matches = index.lookup_eq(&orow[ok]);
            local.charge_cpu_ops(matches.len() as u64);
            let rids: Vec<Rid> = matches.iter().map(|(_, rid)| *rid).collect();
            let rows = fetch_rows(inner, params, &mut local, rids);
            for irow in rows {
                let mut row = orow.clone();
                row.extend(irow);
                out.push(row);
            }
        }
        (out, local)
    })?;
    let mut out = Vec::new();
    for (rows, local) in parts {
        tracker.absorb(&local);
        out.extend(rows);
    }
    tracker.charge_cpu_ops(out.len() as u64);
    Some(Batch::new(schema, out))
}

/// Star semijoin (Experiment 3's index strategy): for each leg, filter the
/// dimension (a tiny scan), collect the selected keys, and probe the fact
/// FK index once per key to assemble the leg's fact-RID list; intersect
/// the legs' RID lists and fetch only the surviving fact rows.
///
/// The per-leg cost depends only on the dimension filter's (constant 10%)
/// marginal selectivity; the fetch cost is one random I/O per *matching*
/// fact row — so this plan wins exactly when few fact rows survive all
/// three filters, which is what the robust estimator can see and the AVI
/// baseline cannot.
///
/// Output schema/rows: the fact table only (the dimensions act as
/// filters).
pub fn star_semijoin(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    fact_table: &str,
    legs: &[SemiJoinLeg],
) -> Batch {
    assert!(!legs.is_empty(), "star semijoin needs at least one leg");
    let fact = catalog.table(fact_table).expect("fact table exists");

    let mut leg_rids: Vec<Vec<Rid>> = Vec::with_capacity(legs.len());
    for leg in legs {
        // Filter the dimension with a (cheap, fully charged) scan.
        let dim = catalog.table(&leg.dim_table).expect("dim exists");
        tracker.charge_seq_pages(params.data_pages(dim.num_rows(), dim.row_width_bytes()));
        tracker.charge_cpu_ops(dim.num_rows() as u64);
        let pred = leg
            .dim_predicate
            .bind(dim.schema())
            .expect("dim predicate binds");
        let key_col = dim.schema().expect_index(&leg.dim_key);
        let mut keys: Vec<Value> = Vec::new();
        for rid in 0..dim.num_rows() as Rid {
            let row = dim.row(rid);
            if rqo_expr::eval_bool(&pred, &row) {
                keys.push(row[key_col].clone());
            }
        }

        // Probe the fact FK index once per selected key.
        let mut rids: Vec<Rid> = Vec::new();
        for key in &keys {
            let range = crate::plan::IndexRange::eq(&leg.fact_fk, key.clone());
            rids.extend(rids_for_range(catalog, params, tracker, fact_table, &range));
        }
        rids.sort_unstable();
        tracker.charge_cpu_ops(rids.len() as u64);
        leg_rids.push(rids);
    }

    // Intersect legs, smallest first.
    leg_rids.sort_by_key(Vec::len);
    let mut acc = leg_rids[0].clone();
    for other in &leg_rids[1..] {
        tracker.charge_cpu_ops(other.len() as u64);
        acc = intersect_sorted(&acc, other);
        if acc.is_empty() {
            break;
        }
    }

    let rows = fetch_rows(fact, params, tracker, acc);
    Batch::new(fact.schema().clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_expr::Expr;
    use rqo_storage::{DataType, Schema, TableBuilder};

    fn batch(name_prefix: &str, keys: &[i64], payload: &[i64]) -> Batch {
        assert_eq!(keys.len(), payload.len());
        Batch::new(
            Schema::from_pairs(&[
                (&format!("{name_prefix}_key"), DataType::Int),
                (&format!("{name_prefix}_val"), DataType::Int),
            ]),
            keys.iter()
                .zip(payload)
                .map(|(&k, &v)| vec![Value::Int(k), Value::Int(v)])
                .collect(),
        )
    }

    #[test]
    fn hash_join_inner_semantics() {
        let mut tracker = CostTracker::new();
        let left = batch("a", &[1, 2, 2, 3], &[10, 20, 21, 30]);
        let right = batch("b", &[2, 3, 3, 4], &[200, 300, 301, 400]);
        let out = hash_join(&mut tracker, left, right, "a_key", "b_key");
        // Matches: a=2 (2 rows) × b=2 (1 row) + a=3 (1) × b=3 (2) = 4 rows.
        assert_eq!(out.len(), 4);
        assert_eq!(out.schema.len(), 4);
        assert_eq!(tracker.hash_builds, 4);
        assert_eq!(tracker.hash_probes, 4);
    }

    #[test]
    fn merge_join_agrees_with_hash_join() {
        let mut t1 = CostTracker::new();
        let mut t2 = CostTracker::new();
        let l = batch("a", &[5, 1, 3, 3, 9], &[0, 1, 2, 3, 4]);
        let r = batch("b", &[3, 3, 5, 7], &[30, 31, 50, 70]);
        let h = hash_join(&mut t1, l.clone(), r.clone(), "a_key", "b_key");
        let m = merge_join(&mut t2, l, r, "a_key", "b_key");
        assert_eq!(h.len(), m.len());
        // Same multiset of (key, lval, rval) triples.
        let canon = |b: &Batch| {
            let mut v: Vec<String> = b
                .rows
                .iter()
                .map(|r| format!("{}|{}|{}", r[0], r[1], r[3]))
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&h), canon(&m));
    }

    #[test]
    fn merge_join_charges_sort_only_when_needed() {
        let sorted_l = batch("a", &[1, 2, 3], &[0, 0, 0]);
        let sorted_r = batch("b", &[1, 2, 3], &[0, 0, 0]);
        let mut t_sorted = CostTracker::new();
        merge_join(
            &mut t_sorted,
            sorted_l.clone(),
            sorted_r.clone(),
            "a_key",
            "b_key",
        );
        let unsorted_l = batch("a", &[3, 1, 2], &[0, 0, 0]);
        let mut t_unsorted = CostTracker::new();
        merge_join(&mut t_unsorted, unsorted_l, sorted_r, "a_key", "b_key");
        assert!(t_unsorted.cpu_ops > t_sorted.cpu_ops);
    }

    #[test]
    fn hash_join_empty_sides() {
        let mut tracker = CostTracker::new();
        let l = batch("a", &[], &[]);
        let r = batch("b", &[1], &[10]);
        assert_eq!(
            hash_join(&mut tracker, l.clone(), r.clone(), "a_key", "b_key").len(),
            0
        );
        assert_eq!(hash_join(&mut tracker, r, l, "b_key", "a_key").len(), 0);
    }

    fn indexed_catalog() -> Catalog {
        // inner: 100 rows, key = i / 4 (4 rows per key).
        let mut b = TableBuilder::new(
            "inner",
            Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
            100,
        );
        for i in 0..100i64 {
            b.push_row(&[Value::Int(i / 4), Value::Int(i)]);
        }
        let mut cat = Catalog::new();
        cat.add_table(b.finish()).unwrap();
        cat.ensure_secondary_index("inner", "k").unwrap();
        cat
    }

    #[test]
    fn indexed_nl_join_fetches_matches() {
        let cat = indexed_catalog();
        let params = CostParams::default();
        let mut tracker = CostTracker::new();
        let outer = batch("o", &[0, 5, 99], &[1, 2, 3]);
        let out = indexed_nl_join(&cat, &params, &mut tracker, outer, "inner", "k", "o_key");
        // Keys 0 and 5 have 4 inner rows each; 99 has none.
        assert_eq!(out.len(), 8);
        assert!(tracker.random_ios >= 3, "at least one descend per probe");
        // Output carries outer columns then inner columns.
        assert_eq!(out.schema.names(), vec!["o_key", "o_val", "k", "v"]);
    }

    #[test]
    fn indexed_nl_join_cost_scales_with_outer() {
        let cat = indexed_catalog();
        let params = CostParams::default();
        let mut small = CostTracker::new();
        let mut large = CostTracker::new();
        indexed_nl_join(
            &cat,
            &params,
            &mut small,
            batch("o", &[1], &[0]),
            "inner",
            "k",
            "o_key",
        );
        indexed_nl_join(
            &cat,
            &params,
            &mut large,
            batch("o", &(0..25).collect::<Vec<i64>>(), &[0; 25]),
            "inner",
            "k",
            "o_key",
        );
        assert!(large.random_ios > 5 * small.random_ios);
    }

    #[test]
    fn parallel_hash_join_is_bit_identical_to_serial() {
        // 200 build rows with repeated keys, 300 probe rows.
        let bkeys: Vec<i64> = (0..200).map(|i| i % 17).collect();
        let bvals: Vec<i64> = (0..200).collect();
        let pkeys: Vec<i64> = (0..300).map(|i| i % 23).collect();
        let pvals: Vec<i64> = (0..300).collect();
        let l = batch("a", &bkeys, &bvals);
        let r = batch("b", &pkeys, &pvals);
        let mut ts = CostTracker::new();
        let serial = hash_join(&mut ts, l.clone(), r.clone(), "a_key", "b_key");
        for threads in [1, 2, 8] {
            let opts = ExecOptions::with_threads(threads).with_morsel_size(16);
            let mut tp = CostTracker::new();
            let par =
                hash_join_par(&mut tp, l.clone(), r.clone(), "a_key", "b_key", &opts).unwrap();
            assert_eq!(par.rows, serial.rows, "threads={threads}");
            assert_eq!(tp, ts, "threads={threads}");
        }
    }

    #[test]
    fn parallel_indexed_nl_join_is_bit_identical_to_serial() {
        let cat = indexed_catalog();
        let params = CostParams::default();
        let okeys: Vec<i64> = (0..60).map(|i| i % 30).collect();
        let ovals: Vec<i64> = (0..60).collect();
        let outer = batch("o", &okeys, &ovals);
        let mut ts = CostTracker::new();
        let serial = indexed_nl_join(&cat, &params, &mut ts, outer.clone(), "inner", "k", "o_key");
        for threads in [1, 2, 8] {
            let opts = ExecOptions::with_threads(threads).with_morsel_size(7);
            let mut tp = CostTracker::new();
            let par = indexed_nl_join_par(
                &cat,
                &params,
                &mut tp,
                outer.clone(),
                "inner",
                "k",
                "o_key",
                &opts,
            )
            .unwrap();
            assert_eq!(par.rows, serial.rows, "threads={threads}");
            assert_eq!(tp, ts, "threads={threads}");
        }
    }

    #[test]
    fn columnar_hash_join_is_bit_identical_to_row_join() {
        let bkeys: Vec<i64> = (0..100).map(|i| i % 13).collect();
        let bvals: Vec<i64> = (0..100).collect();
        let pkeys: Vec<i64> = (0..150).map(|i| i % 19).collect();
        let pvals: Vec<i64> = (0..150).collect();
        let l = batch("a", &bkeys, &bvals);
        let r = batch("b", &pkeys, &pvals);
        let mut ts = CostTracker::new();
        let serial = hash_join(&mut ts, l.clone(), r.clone(), "a_key", "b_key");
        let mut tc = CostTracker::new();
        let columnar = hash_join_columnar(&mut tc, l.clone(), r.clone(), "a_key", "b_key");
        assert_eq!(columnar.rows, serial.rows);
        assert_eq!(tc, ts);
        for threads in [1, 2, 8] {
            let opts = ExecOptions::with_threads(threads).with_morsel_size(16);
            let mut tp = CostTracker::new();
            let par =
                hash_join_columnar_par(&mut tp, l.clone(), r.clone(), "a_key", "b_key", &opts)
                    .unwrap();
            assert_eq!(par.rows, serial.rows, "threads={threads}");
            assert_eq!(tp, ts, "threads={threads}");
        }
    }

    #[test]
    fn columnar_hash_join_typed_and_null_keys() {
        // Str keys, Float keys (incl. -0.0 vs 0.0 distinctness), NULL
        // keys (which join with each other under storage equality), and a
        // cross-type Int-vs-Float pairing that exercises the row
        // fallback.
        let str_batch = |prefix: &str, keys: &[&str]| {
            Batch::new(
                Schema::from_pairs(&[(&format!("{prefix}_key"), DataType::Str)]),
                keys.iter().map(|&k| vec![Value::str(k)]).collect(),
            )
        };
        let cases: Vec<(Batch, Batch)> = vec![
            (
                str_batch("a", &["x", "y", "x", "z"]),
                str_batch("b", &["x", "z", "w", "x"]),
            ),
            (
                Batch::new(
                    Schema::from_pairs(&[("a_key", DataType::Float)]),
                    vec![
                        vec![Value::Float(0.0)],
                        vec![Value::Float(-0.0)],
                        vec![Value::Float(2.5)],
                        vec![Value::Null],
                    ],
                ),
                Batch::new(
                    Schema::from_pairs(&[("b_key", DataType::Float)]),
                    vec![
                        vec![Value::Float(0.0)],
                        vec![Value::Float(2.5)],
                        vec![Value::Null],
                    ],
                ),
            ),
            (
                Batch::new(
                    Schema::from_pairs(&[("a_key", DataType::Int)]),
                    vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(2)]],
                ),
                Batch::new(
                    Schema::from_pairs(&[("b_key", DataType::Float)]),
                    vec![vec![Value::Float(1.0)], vec![Value::Null]],
                ),
            ),
        ];
        for (l, r) in cases {
            let mut ts = CostTracker::new();
            let serial = hash_join(&mut ts, l.clone(), r.clone(), "a_key", "b_key");
            let mut tc = CostTracker::new();
            let columnar = hash_join_columnar(&mut tc, l.clone(), r.clone(), "a_key", "b_key");
            assert_eq!(columnar.rows, serial.rows);
            assert_eq!(tc, ts);
            let opts = ExecOptions::with_threads(2).with_morsel_size(2);
            let mut tp = CostTracker::new();
            let par =
                hash_join_columnar_par(&mut tp, l.clone(), r.clone(), "a_key", "b_key", &opts)
                    .unwrap();
            // Parallel row path is the ground truth for ordering too.
            let mut tr = CostTracker::new();
            let row_par =
                hash_join_par(&mut tr, l.clone(), r.clone(), "a_key", "b_key", &opts).unwrap();
            assert_eq!(par.rows, row_par.rows);
            assert_eq!(par.rows, serial.rows);
            assert_eq!(tp, ts);
        }
    }

    fn star_catalog() -> Catalog {
        // fact: 1000 rows; two dims of 10 keys each.  fact row i joins
        // dim1 key i%10 and dim2 key i%7 (capped at 9).
        let mut fact = TableBuilder::new(
            "fact",
            Schema::from_pairs(&[
                ("f1", DataType::Int),
                ("f2", DataType::Int),
                ("m", DataType::Float),
            ]),
            1000,
        );
        for i in 0..1000i64 {
            fact.push_row(&[
                Value::Int(i % 10),
                Value::Int(i % 7),
                Value::Float(i as f64),
            ]);
        }
        let dim = |name: &str| {
            let mut d = TableBuilder::new(
                name,
                Schema::from_pairs(&[("d_key", DataType::Int), ("d_attr", DataType::Int)]),
                10,
            );
            for k in 0..10i64 {
                d.push_row(&[Value::Int(k), Value::Int(k % 2)]);
            }
            d.finish()
        };
        let mut cat = Catalog::new();
        cat.add_table(fact.finish()).unwrap();
        cat.add_table(dim("dim1")).unwrap();
        cat.add_table(dim("dim2")).unwrap();
        cat.add_foreign_key("fact", "f1", "dim1", "d_key").unwrap();
        cat.add_foreign_key("fact", "f2", "dim2", "d_key").unwrap();
        cat.ensure_secondary_index("fact", "f1").unwrap();
        cat.ensure_secondary_index("fact", "f2").unwrap();
        cat
    }

    #[test]
    fn star_semijoin_matches_filter_semantics() {
        let cat = star_catalog();
        let params = CostParams::default();
        let mut tracker = CostTracker::new();
        let legs = vec![
            SemiJoinLeg {
                dim_table: "dim1".into(),
                dim_key: "d_key".into(),
                dim_predicate: Expr::col("d_key").eq(Expr::lit(3i64)),
                fact_fk: "f1".into(),
            },
            SemiJoinLeg {
                dim_table: "dim2".into(),
                dim_key: "d_key".into(),
                dim_predicate: Expr::col("d_key").eq(Expr::lit(3i64)),
                fact_fk: "f2".into(),
            },
        ];
        let out = star_semijoin(&cat, &params, &mut tracker, "fact", &legs);
        // Truth: i % 10 == 3 and i % 7 == 3 → i ≡ 3 (mod 70) → 15 rows in
        // [0, 1000).
        let expected = (0..1000i64).filter(|i| i % 10 == 3 && i % 7 == 3).count();
        assert_eq!(out.len(), expected);
        assert_eq!(out.schema.names(), vec!["f1", "f2", "m"]);
        assert!(tracker.random_ios > 0);
    }

    #[test]
    fn star_semijoin_single_leg() {
        let cat = star_catalog();
        let params = CostParams::default();
        let mut tracker = CostTracker::new();
        let legs = vec![SemiJoinLeg {
            dim_table: "dim1".into(),
            dim_key: "d_key".into(),
            dim_predicate: Expr::col("d_attr").eq(Expr::lit(0i64)),
            fact_fk: "f1".into(),
        }];
        let out = star_semijoin(&cat, &params, &mut tracker, "fact", &legs);
        // d_attr == 0 selects even keys: f1 even → 500 rows.
        assert_eq!(out.len(), 500);
    }

    #[test]
    #[should_panic(expected = "at least one leg")]
    fn star_semijoin_requires_legs() {
        let cat = star_catalog();
        let params = CostParams::default();
        let mut tracker = CostTracker::new();
        star_semijoin(&cat, &params, &mut tracker, "fact", &[]);
    }
}
