//! Runtime cardinality guards and resumable execution — the executor
//! half of mid-query adaptive re-optimization.
//!
//! Every materializing operator is a natural checkpoint: when its output
//! batch is complete, the *actual* cardinality is known exactly, and the
//! cost of everything downstream is still unspent.  A [`RowGuard`] armed
//! at such a node compares the actual row count against the estimate the
//! plan was priced at; when the q-error exceeds the guard's bound,
//! [`execute_guarded`] stops at that pipeline breaker and returns a
//! [`GuardTrip`] carrying the materialized batch, the completed subtree's
//! metrics (for feedback recording), and the cost charged so far (left in
//! the caller's [`CostTracker`]).  The caller — `RobustDb::run_adaptive`
//! — records the observed selectivities, re-optimizes the remainder of
//! the query at an escalated confidence threshold, grafts a
//! [`PhysicalPlan::Materialized`] leaf over the finished fragment, and
//! resumes by calling [`execute_guarded`] again with the batch bound to
//! its slot.
//!
//! Guard decisions are **deterministic and thread-invariant**: they
//! compare batch lengths (bit-identical at every thread count by the
//! morsel executor's construction) against plan-time estimates, so the
//! same query trips the same guards in the same order at 1, 2, or 8
//! workers.

use rqo_core::StopReason;
use rqo_storage::{Catalog, CostParams, CostTracker};

use crate::batch::Batch;
use crate::executor::{run_guarded, Interrupt};
use crate::metrics::OpMetrics;
use crate::morsel::ExecOptions;
use crate::plan::PhysicalPlan;

/// A runtime cardinality guard armed on one plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct RowGuard {
    /// Pre-order index of the guarded node (node before children,
    /// children in execution order — the numbering shared with
    /// `OpMetrics` and the optimizer's annotations).
    pub node: usize,
    /// Estimated output rows the plan was priced at for this node.
    pub est_rows: f64,
    /// Maximum tolerated q-error between estimate and actual.
    pub bound: f64,
}

impl RowGuard {
    /// Whether an actual row count violates this guard.
    pub fn trips(&self, actual_rows: u64) -> bool {
        q_error(self.est_rows, actual_rows as f64) > self.bound
    }
}

/// The q-error between an estimate and an actual cardinality, both
/// floored at one row (the [`OpMetrics::q_error`] convention): 1.0 is a
/// perfect estimate, 10.0 is an order of magnitude off either way.
pub fn q_error(est_rows: f64, actual_rows: f64) -> f64 {
    let est = est_rows.max(1.0);
    let actual = actual_rows.max(1.0);
    (est / actual).max(actual / est)
}

/// A guard violation: execution stopped at a pipeline breaker with the
/// breaker's output fully materialized.
#[derive(Debug)]
pub struct GuardTrip {
    /// Pre-order index of the tripped node in the executed plan.
    pub node: usize,
    /// The estimate the guard compared against.
    pub est_rows: f64,
    /// Rows actually materialized at the breaker.
    pub actual_rows: u64,
    /// `q_error(est_rows, actual_rows)` — by construction greater than
    /// the guard's bound.
    pub q_error: f64,
    /// The breaker's materialized output, ready to resume against.
    pub batch: Batch,
    /// Metrics of the *completed* subtree rooted at the tripped node, in
    /// the same pre-order as the plan — the observations worth feeding
    /// back before re-planning.
    pub metrics: OpMetrics,
}

/// The outcome of a guarded execution.
#[derive(Debug)]
pub enum ExecStatus {
    /// The plan ran to completion; no guard tripped.
    Complete {
        /// Result rows.
        batch: Batch,
        /// Per-operator metrics for the whole plan.
        metrics: OpMetrics,
    },
    /// A guard tripped; execution paused at the pipeline breaker.
    Tripped(Box<GuardTrip>),
    /// The query's cancellation/deadline token fired; execution stopped
    /// within one morsel, producing nothing.
    Stopped(StopReason),
}

/// Pre-order indices of the plan's **guardable checkpoints**: nodes whose
/// output is fully materialized before any downstream work consumes it,
/// so pausing there wastes nothing.
///
/// * the **build child** of every hash join (the build side is consumed
///   whole before probing starts);
/// * the **input child** of every hash aggregate;
/// * both **inputs of a merge join** (each side is sorted, i.e. blocked,
///   before merging);
/// * the **outer child** of every indexed nested-loops join (the outer
///   is materialized before the probe loop begins);
/// * every **index intersection** and **star semijoin** node itself (RID
///   intersection blocks on all legs before fetching).
///
/// [`PhysicalPlan::Materialized`] leaves are never guard points — their
/// cardinality is already known exactly.
pub fn guard_points(plan: &PhysicalPlan) -> Vec<usize> {
    let mut out = Vec::new();
    for node in plan.preorder() {
        match node.plan {
            PhysicalPlan::IndexIntersection { .. } | PhysicalPlan::StarSemiJoin { .. } => {
                out.push(node.index);
            }
            PhysicalPlan::HashJoin { build, .. } => mark(build, node.children[0], &mut out),
            PhysicalPlan::MergeJoin { left, right, .. } => {
                mark(left, node.children[0], &mut out);
                mark(right, node.children[1], &mut out);
            }
            PhysicalPlan::IndexedNlJoin { outer, .. } => mark(outer, node.children[0], &mut out),
            PhysicalPlan::HashAggregate { input, .. } => mark(input, node.children[0], &mut out),
            _ => {}
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn mark(child: &PhysicalPlan, idx: usize, out: &mut Vec<usize>) {
    if !matches!(child, PhysicalPlan::Materialized { .. }) {
        out.push(idx);
    }
}

/// Executes a plan with runtime cardinality guards and bound
/// intermediates.
///
/// `guards` arm the checkpoints (see [`guard_points`]); an empty slice
/// makes this identical to `execute_analyze`.  `slots` binds
/// [`PhysicalPlan::Materialized`] leaves by index.  Cost accumulates
/// into `tracker` across the call — on a trip, the tracker holds exactly
/// the work performed up to the breaker, and a subsequent resume call
/// with the same tracker yields the query's true total.
///
/// # Panics
///
/// Panics when a `Materialized` leaf references a slot outside `slots`.
pub fn execute_guarded(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    params: &CostParams,
    opts: &ExecOptions,
    guards: &[RowGuard],
    slots: &[Batch],
    tracker: &mut CostTracker,
) -> ExecStatus {
    match run_guarded(plan, catalog, params, tracker, opts, guards, slots) {
        Ok((batch, metrics)) => ExecStatus::Complete { batch, metrics },
        Err(Interrupt::Trip(trip)) => ExecStatus::Tripped(trip),
        Err(Interrupt::Stopped(reason)) => ExecStatus::Stopped(reason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::IndexRange;
    use rqo_expr::Expr;
    use rqo_storage::Value;

    fn scan(table: &str) -> PhysicalPlan {
        PhysicalPlan::SeqScan {
            table: table.into(),
            predicate: None,
        }
    }

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        // Sub-row estimates are floored at one row.
        assert_eq!(q_error(0.001, 0.0), 1.0);
        assert_eq!(q_error(0.5, 8.0), 8.0);
    }

    #[test]
    fn guard_points_cover_blocking_checkpoints() {
        // agg(hj(build=scan, probe=inl(outer=ixsect, inner)))
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                build: Box::new(scan("a")),
                probe: Box::new(PhysicalPlan::IndexedNlJoin {
                    outer: Box::new(PhysicalPlan::IndexIntersection {
                        table: "b".into(),
                        ranges: vec![
                            IndexRange::eq("x", Value::Int(1)),
                            IndexRange::eq("y", Value::Int(2)),
                        ],
                        residual: None,
                    }),
                    inner_table: "c".into(),
                    inner_index_column: "ck".into(),
                    outer_key: "x".into(),
                }),
                build_key: "k".into(),
                probe_key: "k".into(),
            }),
            group_by: vec![],
            aggregates: vec![],
        };
        // Pre-order: 0 agg, 1 hj, 2 scan a (build), 3 inl, 4 ixsect b.
        // Checkpoints: agg input (1), hj build (2), inl outer (4), and
        // the intersection node itself (4, deduped).
        assert_eq!(guard_points(&plan), vec![1, 2, 4]);
    }

    #[test]
    fn materialized_leaves_are_not_guarded() {
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Materialized {
                slot: 0,
                tables: vec!["a".into()],
                predicates: vec![("a".to_string(), Expr::col("x").lt(Expr::lit(1i64)))],
            }),
            group_by: vec![],
            aggregates: vec![],
        };
        assert!(guard_points(&plan).is_empty());
    }

    #[test]
    fn merge_join_inputs_are_checkpoints() {
        let plan = PhysicalPlan::MergeJoin {
            left: Box::new(scan("a")),
            right: Box::new(scan("b")),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        assert_eq!(guard_points(&plan), vec![1, 2]);
    }
}
