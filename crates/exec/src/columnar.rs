//! Columnar batch views and selection vectors.
//!
//! The executor's unit of exchange stays the row-major [`crate::Batch`]
//! (pipeline breakers, the service, golden tests, and adaptive grafts all
//! consume rows), but *inside* the hot operators data is transposed into
//! typed [`ColumnVec`]s once per batch and processed with selection
//! vectors.  This module holds the shared plumbing: [`SelVec`] (a checked
//! ascending row-id list), [`columnarize`] (row-major → typed columns for
//! exactly the ordinals a kernel touches), and [`gather_rows`] (the
//! row-materialization boundary, column-at-a-time).

use rqo_storage::{ColumnRef, ColumnVec, Schema, Value};

/// A selection vector: strictly ascending row ids below a bound.
///
/// Construction always checks the cheap O(1) cardinality invariant and,
/// under debug assertions, the full per-element bounds/sortedness/
/// uniqueness invariants (exercised in CI by the debug-assertions job).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelVec {
    ids: Vec<u32>,
    bound: usize,
}

impl SelVec {
    /// Wraps a selection produced by a kernel.
    ///
    /// # Panics
    ///
    /// Panics when more ids are selected than candidate rows exist; under
    /// debug assertions, also panics unless the ids are strictly
    /// ascending and below `bound`.
    pub fn new(ids: Vec<u32>, bound: usize) -> Self {
        assert!(
            ids.len() <= bound,
            "selection of {} ids exceeds {} candidate rows",
            ids.len(),
            bound
        );
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "selection vector must be strictly ascending"
        );
        debug_assert!(
            ids.last().is_none_or(|&last| (last as usize) < bound),
            "selection id {:?} out of bounds {bound}",
            ids.last()
        );
        Self { ids, bound }
    }

    /// The whole range `0..n` selected.
    pub fn all(n: usize) -> Self {
        Self {
            ids: (0..n as u32).collect(),
            bound: n,
        }
    }

    /// The selected row ids, ascending.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Exclusive upper bound on ids (the candidate row count).
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Transposes the columns named by `ords` out of row-major `rows` into
/// typed vectors, returning a full-arity `Vec` with `Some` exactly at
/// those ordinals — the shape [`rqo_expr::columnar::select`] consumes.
pub fn columnarize(rows: &[Vec<Value>], schema: &Schema, ords: &[usize]) -> Vec<Option<ColumnVec>> {
    let mut out: Vec<Option<ColumnVec>> = (0..schema.len()).map(|_| None).collect();
    for &ord in ords {
        if out[ord].is_none() {
            out[ord] = Some(ColumnVec::from_rows(
                rows,
                ord,
                schema.column(ord).data_type,
            ));
        }
    }
    out
}

/// Borrowed views of a columnarized batch, `None` where not transposed.
pub fn column_refs(cols: &[Option<ColumnVec>]) -> Vec<Option<ColumnRef<'_>>> {
    cols.iter()
        .map(|c| c.as_ref().map(ColumnVec::as_column_ref))
        .collect()
}

/// Materializes the selected rows from typed columns, column-at-a-time —
/// the row-materialization boundary.  Row order follows the selection
/// vector, and each row's values come out in column order, exactly like
/// row-at-a-time materialization.
pub fn gather_rows(cols: &[ColumnRef<'_>], sel: &SelVec) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = sel
        .ids()
        .iter()
        .map(|_| Vec::with_capacity(cols.len()))
        .collect();
    for col in cols {
        for (row, &i) in rows.iter_mut().zip(sel.ids()) {
            row.push(col.value(i as usize));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_storage::DataType;

    #[test]
    fn sel_vec_invariants() {
        let s = SelVec::new(vec![0, 2, 5], 6);
        assert_eq!(s.ids(), &[0, 2, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(SelVec::all(3).ids(), &[0, 1, 2]);
        assert!(SelVec::new(Vec::new(), 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn sel_vec_rejects_overfull_selection() {
        SelVec::new(vec![0, 1, 2], 2);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug-assertions only")]
    #[should_panic(expected = "ascending")]
    fn sel_vec_rejects_unsorted_ids() {
        SelVec::new(vec![2, 1, 0], 9);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug-assertions only")]
    #[should_panic(expected = "out of bounds")]
    fn sel_vec_rejects_out_of_bounds_ids() {
        SelVec::new(vec![0, 7], 7);
    }

    #[test]
    fn columnarize_and_gather_roundtrip() {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Str),
            ("c", DataType::Float),
        ]);
        let rows = vec![
            vec![Value::Int(1), Value::str("x"), Value::Float(0.5)],
            vec![Value::Null, Value::str("y"), Value::Float(1.5)],
            vec![Value::Int(3), Value::str("x"), Value::Null],
        ];
        let cols = columnarize(&rows, &schema, &[0, 1, 2]);
        let refs: Vec<ColumnRef<'_>> = cols
            .iter()
            .map(|c| c.as_ref().unwrap().as_column_ref())
            .collect();
        let sel = SelVec::new(vec![0, 2], rows.len());
        let got = gather_rows(&refs, &sel);
        assert_eq!(got, vec![rows[0].clone(), rows[2].clone()]);
        let all = gather_rows(&refs, &SelVec::all(rows.len()));
        assert_eq!(all, rows);
    }

    #[test]
    fn columnarize_only_requested_ordinals() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let rows = vec![vec![Value::Int(1), Value::Int(2)]];
        let cols = columnarize(&rows, &schema, &[1]);
        assert!(cols[0].is_none());
        assert!(cols[1].is_some());
    }
}
