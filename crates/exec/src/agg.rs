//! Hash aggregation.

use std::collections::HashMap;

use rqo_storage::{ColumnMeta, CostTracker, DataType, Schema, Value};

use crate::batch::Batch;
use crate::plan::{AggExpr, AggFunc};

/// Running state of one aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Sum(f64),
    Count(u64),
    Avg { sum: f64, count: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Sum => AggState::Sum(0.0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Sum(acc) => {
                let v = v.expect("SUM needs a column");
                if !v.is_null() {
                    *acc += v.as_f64();
                }
            }
            AggState::Count(n) => {
                // COUNT(*) counts rows; COUNT(col) skips NULLs.
                if v.is_none() || v.is_some_and(|x| !x.is_null()) {
                    *n += 1;
                }
            }
            AggState::Avg { sum, count } => {
                let v = v.expect("AVG needs a column");
                if !v.is_null() {
                    *sum += v.as_f64();
                    *count += 1;
                }
            }
            AggState::Min(cur) => {
                let v = v.expect("MIN needs a column");
                if !v.is_null()
                    && cur
                        .as_ref()
                        .is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Less)
                {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                let v = v.expect("MAX needs a column");
                if !v.is_null()
                    && cur
                        .as_ref()
                        .is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Greater)
                {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    /// Folds another partial state for the same aggregate into this one
    /// (used when merging per-morsel partial aggregations).
    ///
    /// For SUM/AVG the merge adds partial float sums, which is exact
    /// whenever the addends are exactly representable (e.g. integer-valued
    /// data) and associative-up-to-ulp otherwise; COUNT/MIN/MAX merges are
    /// always exact.
    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (
                AggState::Avg { sum, count },
                AggState::Avg {
                    sum: other_sum,
                    count: other_count,
                },
            ) => {
                *sum += other_sum;
                *count += other_count;
            }
            (AggState::Min(cur), AggState::Min(other)) => {
                if let Some(v) = other {
                    if cur
                        .as_ref()
                        .is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Less)
                    {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(other)) => {
                if let Some(v) = other {
                    if cur
                        .as_ref()
                        .is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Greater)
                    {
                        *cur = Some(v);
                    }
                }
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Sum(acc) => Value::Float(acc),
            AggState::Count(n) => Value::Int(n as i64),
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }

    fn output_type(func: AggFunc) -> DataType {
        match func {
            AggFunc::Sum | AggFunc::Avg => DataType::Float,
            AggFunc::Count => DataType::Int,
            // MIN/MAX inherit their input type; reported as Float for the
            // schema since the engine's numeric Values interconvert.  The
            // actual Value keeps its native type.
            AggFunc::Min | AggFunc::Max => DataType::Float,
        }
    }
}

/// Hash aggregation over `input`.
///
/// With an empty `group_by`, produces exactly one row (SQL scalar
/// aggregate semantics — zero input rows still yield one output row of
/// identity values).  Charges one hash insert per input row (group lookup
/// + state update) and one CPU op per output row.
///
/// # Panics
///
/// Panics when a referenced column is missing, or when a non-COUNT
/// aggregate omits its column.
pub fn hash_aggregate(
    tracker: &mut CostTracker,
    input: Batch,
    group_by: &[String],
    aggregates: &[AggExpr],
) -> Batch {
    let (group_idx, agg_idx) = resolve_indices(&input, group_by, aggregates);
    tracker.charge_hash_builds(input.len() as u64);
    let groups = accumulate(&input.rows, &group_idx, &agg_idx, aggregates);
    finalize(tracker, input, group_by, aggregates, group_idx, groups)
}

/// Morsel-parallel [`hash_aggregate`]: each morsel accumulates a partial
/// `group → states` map; the coordinator merges the partials **in morsel
/// index order** via [`AggState::merge`], then finalizes exactly as the
/// serial operator does.
///
/// Because morsel boundaries depend only on the morsel size, the merge
/// tree — and therefore every float-summation order — is identical for
/// every thread count: 2-thread and 8-thread runs are bit-identical.
/// Against the *serial* operator, COUNT/MIN/MAX and integer-valued
/// SUM/AVG are exact; irrational float sums may differ in the last ulp
/// (row-order vs. morsel-merge-order association).  Returns `None` when
/// the query's token fired mid-accumulation.
pub fn hash_aggregate_par(
    tracker: &mut CostTracker,
    input: Batch,
    group_by: &[String],
    aggregates: &[AggExpr],
    opts: &crate::morsel::ExecOptions,
) -> Option<Batch> {
    let (group_idx, agg_idx) = resolve_indices(&input, group_by, aggregates);
    tracker.charge_hash_builds(input.len() as u64);
    let partials = crate::morsel::run_morsels(opts, input.len(), |morsel| {
        accumulate(&input.rows[morsel], &group_idx, &agg_idx, aggregates)
    })?;
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for partial in partials {
        for (key, states) in partial {
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut existing) => {
                    for (into, from) in existing.get_mut().iter_mut().zip(states) {
                        into.merge(from);
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(states);
                }
            }
        }
    }
    Some(finalize(
        tracker, input, group_by, aggregates, group_idx, groups,
    ))
}

/// Resolves grouping and aggregate-input column ordinals.
fn resolve_indices(
    input: &Batch,
    group_by: &[String],
    aggregates: &[AggExpr],
) -> (Vec<usize>, Vec<Option<usize>>) {
    let group_idx = group_by
        .iter()
        .map(|g| input.schema.expect_index(g))
        .collect();
    let agg_idx = aggregates
        .iter()
        .map(|a| a.column.as_ref().map(|c| input.schema.expect_index(c)))
        .collect();
    (group_idx, agg_idx)
}

/// Accumulates aggregate states over a slice of rows, in row order.
fn accumulate(
    rows: &[Vec<Value>],
    group_idx: &[usize],
    agg_idx: &[Option<usize>],
    aggregates: &[AggExpr],
) -> HashMap<Vec<Value>, Vec<AggState>> {
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| aggregates.iter().map(|a| AggState::new(a.func)).collect());
        for (state, idx) in states.iter_mut().zip(agg_idx) {
            state.update(idx.map(|i| &row[i]));
        }
    }
    groups
}

/// Builds the output schema and the deterministically ordered result rows.
fn finalize(
    tracker: &mut CostTracker,
    input: Batch,
    group_by: &[String],
    aggregates: &[AggExpr],
    group_idx: Vec<usize>,
    mut groups: HashMap<Vec<Value>, Vec<AggState>>,
) -> Batch {
    // Scalar aggregates over empty input still produce one group.
    if group_by.is_empty() && groups.is_empty() {
        groups.insert(
            Vec::new(),
            aggregates.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }

    let mut columns: Vec<ColumnMeta> = group_idx
        .iter()
        .map(|&i| input.schema.column(i).clone())
        .collect();
    for a in aggregates {
        columns.push(ColumnMeta::new(
            a.alias.clone(),
            AggState::output_type(a.func),
        ));
    }
    let schema = Schema::new(columns);

    let mut rows: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(mut key, states)| {
            key.extend(states.into_iter().map(AggState::finish));
            key
        })
        .collect();
    // Deterministic output order for tests and reports.
    rows.sort_by(|a, b| {
        for i in 0..group_idx.len() {
            let ord = a[i].total_cmp(&b[i]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    tracker.charge_cpu_ops(rows.len() as u64);
    Batch::new(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Batch {
        Batch::new(
            Schema::from_pairs(&[("g", DataType::Int), ("x", DataType::Float)]),
            vec![
                vec![Value::Int(1), Value::Float(10.0)],
                vec![Value::Int(2), Value::Float(5.0)],
                vec![Value::Int(1), Value::Float(30.0)],
                vec![Value::Int(2), Value::Float(15.0)],
                vec![Value::Int(1), Value::Float(20.0)],
            ],
        )
    }

    #[test]
    fn scalar_aggregates() {
        let mut tracker = CostTracker::new();
        let out = hash_aggregate(
            &mut tracker,
            input(),
            &[],
            &[
                AggExpr::sum("x", "total"),
                AggExpr::count_star("n"),
                AggExpr::avg("x", "mean"),
                AggExpr::min("x", "lo"),
                AggExpr::max("x", "hi"),
            ],
        );
        assert_eq!(out.len(), 1);
        let row = &out.rows[0];
        assert_eq!(row[0], Value::Float(80.0));
        assert_eq!(row[1], Value::Int(5));
        assert_eq!(row[2], Value::Float(16.0));
        assert_eq!(row[3], Value::Float(5.0));
        assert_eq!(row[4], Value::Float(30.0));
        assert_eq!(tracker.hash_builds, 5);
    }

    #[test]
    fn grouped_aggregates_sorted_output() {
        let mut tracker = CostTracker::new();
        let out = hash_aggregate(
            &mut tracker,
            input(),
            &["g".to_string()],
            &[AggExpr::sum("x", "total"), AggExpr::count_star("n")],
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema.names(), vec!["g", "total", "n"]);
        assert_eq!(
            out.rows[0],
            vec![Value::Int(1), Value::Float(60.0), Value::Int(3)]
        );
        assert_eq!(
            out.rows[1],
            vec![Value::Int(2), Value::Float(20.0), Value::Int(2)]
        );
    }

    #[test]
    fn empty_input_scalar_yields_identity_row() {
        let mut tracker = CostTracker::new();
        let empty = Batch::empty(Schema::from_pairs(&[("x", DataType::Float)]));
        let out = hash_aggregate(
            &mut tracker,
            empty,
            &[],
            &[
                AggExpr::sum("x", "s"),
                AggExpr::count_star("n"),
                AggExpr::avg("x", "a"),
                AggExpr::min("x", "lo"),
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Value::Float(0.0));
        assert_eq!(out.rows[0][1], Value::Int(0));
        assert_eq!(out.rows[0][2], Value::Null);
        assert_eq!(out.rows[0][3], Value::Null);
    }

    #[test]
    fn empty_input_grouped_yields_no_rows() {
        let mut tracker = CostTracker::new();
        let empty = Batch::empty(Schema::from_pairs(&[
            ("g", DataType::Int),
            ("x", DataType::Float),
        ]));
        let out = hash_aggregate(
            &mut tracker,
            empty,
            &["g".to_string()],
            &[AggExpr::sum("x", "s")],
        );
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn parallel_aggregate_matches_serial() {
        use crate::morsel::ExecOptions;
        // Integer-valued floats: partial-sum merges are exact, so the
        // parallel result must be bit-identical to serial.
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| vec![Value::Int(i % 7), Value::Float((i * 3 % 100) as f64)])
            .collect();
        let b = Batch::new(
            Schema::from_pairs(&[("g", DataType::Int), ("x", DataType::Float)]),
            rows,
        );
        let aggs = [
            AggExpr::sum("x", "s"),
            AggExpr::count_star("n"),
            AggExpr::avg("x", "a"),
            AggExpr::min("x", "lo"),
            AggExpr::max("x", "hi"),
        ];
        for group_by in [vec![], vec!["g".to_string()]] {
            let mut ts = CostTracker::new();
            let serial = hash_aggregate(&mut ts, b.clone(), &group_by, &aggs);
            for threads in [1, 2, 8] {
                let opts = ExecOptions::with_threads(threads).with_morsel_size(64);
                let mut tp = CostTracker::new();
                let par = hash_aggregate_par(&mut tp, b.clone(), &group_by, &aggs, &opts).unwrap();
                assert_eq!(par.rows, serial.rows, "threads={threads}");
                assert_eq!(tp, ts, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_aggregate_empty_input_identity_row() {
        use crate::morsel::ExecOptions;
        let empty = Batch::empty(Schema::from_pairs(&[("x", DataType::Float)]));
        let mut tracker = CostTracker::new();
        let out = hash_aggregate_par(
            &mut tracker,
            empty,
            &[],
            &[AggExpr::sum("x", "s"), AggExpr::count_star("n")],
            &ExecOptions::with_threads(4),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Value::Float(0.0));
        assert_eq!(out.rows[0][1], Value::Int(0));
    }

    #[test]
    fn count_column_skips_nulls() {
        let mut tracker = CostTracker::new();
        let b = Batch::new(
            Schema::from_pairs(&[("x", DataType::Int)]),
            vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(3)]],
        );
        let out = hash_aggregate(
            &mut tracker,
            b,
            &[],
            &[
                AggExpr {
                    func: AggFunc::Count,
                    column: Some("x".into()),
                    alias: "c".into(),
                },
                AggExpr::count_star("n"),
            ],
        );
        assert_eq!(out.rows[0][0], Value::Int(2));
        assert_eq!(out.rows[0][1], Value::Int(3));
    }
}
