//! Hash aggregation.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use rqo_storage::{ColumnMeta, ColumnVec, CostTracker, DataType, NullMask, Schema, Value};

use crate::batch::Batch;
use crate::plan::{AggExpr, AggFunc};

/// Running state of one aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Sum(f64),
    Count(u64),
    Avg { sum: f64, count: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Sum => AggState::Sum(0.0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Sum(acc) => {
                let v = v.expect("SUM needs a column");
                if !v.is_null() {
                    *acc += v.as_f64();
                }
            }
            AggState::Count(n) => {
                // COUNT(*) counts rows; COUNT(col) skips NULLs.
                if v.is_none() || v.is_some_and(|x| !x.is_null()) {
                    *n += 1;
                }
            }
            AggState::Avg { sum, count } => {
                let v = v.expect("AVG needs a column");
                if !v.is_null() {
                    *sum += v.as_f64();
                    *count += 1;
                }
            }
            AggState::Min(cur) => {
                let v = v.expect("MIN needs a column");
                if !v.is_null()
                    && cur
                        .as_ref()
                        .is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Less)
                {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                let v = v.expect("MAX needs a column");
                if !v.is_null()
                    && cur
                        .as_ref()
                        .is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Greater)
                {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    /// Folds another partial state for the same aggregate into this one
    /// (used when merging per-morsel partial aggregations).
    ///
    /// For SUM/AVG the merge adds partial float sums, which is exact
    /// whenever the addends are exactly representable (e.g. integer-valued
    /// data) and associative-up-to-ulp otherwise; COUNT/MIN/MAX merges are
    /// always exact.
    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (
                AggState::Avg { sum, count },
                AggState::Avg {
                    sum: other_sum,
                    count: other_count,
                },
            ) => {
                *sum += other_sum;
                *count += other_count;
            }
            (AggState::Min(cur), AggState::Min(other)) => {
                if let Some(v) = other {
                    if cur
                        .as_ref()
                        .is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Less)
                    {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(other)) => {
                if let Some(v) = other {
                    if cur
                        .as_ref()
                        .is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Greater)
                    {
                        *cur = Some(v);
                    }
                }
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Sum(acc) => Value::Float(acc),
            AggState::Count(n) => Value::Int(n as i64),
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }

    fn output_type(func: AggFunc) -> DataType {
        match func {
            AggFunc::Sum | AggFunc::Avg => DataType::Float,
            AggFunc::Count => DataType::Int,
            // MIN/MAX inherit their input type; reported as Float for the
            // schema since the engine's numeric Values interconvert.  The
            // actual Value keeps its native type.
            AggFunc::Min | AggFunc::Max => DataType::Float,
        }
    }
}

/// Hash aggregation over `input`.
///
/// With an empty `group_by`, produces exactly one row (SQL scalar
/// aggregate semantics — zero input rows still yield one output row of
/// identity values).  Charges one hash insert per input row (group lookup
/// + state update) and one CPU op per output row.
///
/// # Panics
///
/// Panics when a referenced column is missing, or when a non-COUNT
/// aggregate omits its column.
pub fn hash_aggregate(
    tracker: &mut CostTracker,
    input: Batch,
    group_by: &[String],
    aggregates: &[AggExpr],
) -> Batch {
    let (group_idx, agg_idx) = resolve_indices(&input, group_by, aggregates);
    tracker.charge_hash_builds(input.len() as u64);
    let groups = accumulate(&input.rows, &group_idx, &agg_idx, aggregates);
    finalize(tracker, input, group_by, aggregates, group_idx, groups)
}

/// Morsel-parallel [`hash_aggregate`]: each morsel accumulates a partial
/// `group → states` map; the coordinator merges the partials **in morsel
/// index order** via [`AggState::merge`], then finalizes exactly as the
/// serial operator does.
///
/// Because morsel boundaries depend only on the morsel size, the merge
/// tree — and therefore every float-summation order — is identical for
/// every thread count: 2-thread and 8-thread runs are bit-identical.
/// Against the *serial* operator, COUNT/MIN/MAX and integer-valued
/// SUM/AVG are exact; irrational float sums may differ in the last ulp
/// (row-order vs. morsel-merge-order association).  Returns `None` when
/// the query's token fired mid-accumulation.
pub fn hash_aggregate_par(
    tracker: &mut CostTracker,
    input: Batch,
    group_by: &[String],
    aggregates: &[AggExpr],
    opts: &crate::morsel::ExecOptions,
) -> Option<Batch> {
    let (group_idx, agg_idx) = resolve_indices(&input, group_by, aggregates);
    tracker.charge_hash_builds(input.len() as u64);
    let partials = crate::morsel::run_morsels(opts, input.len(), |morsel| {
        accumulate(&input.rows[morsel], &group_idx, &agg_idx, aggregates)
    })?;
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for partial in partials {
        for (key, states) in partial {
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut existing) => {
                    for (into, from) in existing.get_mut().iter_mut().zip(states) {
                        into.merge(from);
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(states);
                }
            }
        }
    }
    Some(finalize(
        tracker, input, group_by, aggregates, group_idx, groups,
    ))
}

/// Vectorized [`hash_aggregate`]: aggregate input columns are extracted
/// into typed vectors once, group ids are assigned in a first pass, and
/// each aggregate then updates its states in a tight column-at-a-time
/// loop (`f64`/`i64` adds with a null-mask check) instead of per-row
/// `Value` dispatch.  Updates hit each `AggState` in row order — the
/// same float-addition sequence as the row path — so results are
/// bit-identical, including `AVG` of empty groups and the scalar
/// identity row.
pub fn hash_aggregate_columnar(
    tracker: &mut CostTracker,
    input: Batch,
    group_by: &[String],
    aggregates: &[AggExpr],
) -> Batch {
    let (group_idx, agg_idx) = resolve_indices(&input, group_by, aggregates);
    tracker.charge_hash_builds(input.len() as u64);
    let agg_cols = columnarize_agg_inputs(&input, &agg_idx);
    let int_group = int_group_ordinal(&input, &group_idx);
    let groups = accumulate_columnar(
        &input.rows,
        0..input.len(),
        &group_idx,
        int_group,
        &agg_cols,
        aggregates,
    );
    finalize(tracker, input, group_by, aggregates, group_idx, groups)
}

/// Morsel-parallel [`hash_aggregate_columnar`], bit-identical to
/// [`hash_aggregate_par`]: same morsel boundaries, same per-state update
/// order within a morsel, same morsel-index-order merge.  Returns `None`
/// when the query's token fired.
pub fn hash_aggregate_columnar_par(
    tracker: &mut CostTracker,
    input: Batch,
    group_by: &[String],
    aggregates: &[AggExpr],
    opts: &crate::morsel::ExecOptions,
) -> Option<Batch> {
    let (group_idx, agg_idx) = resolve_indices(&input, group_by, aggregates);
    tracker.charge_hash_builds(input.len() as u64);
    // Columnarize once, outside the morsel loop; morsels index the shared
    // vectors by absolute row id.
    let agg_cols = columnarize_agg_inputs(&input, &agg_idx);
    let int_group = int_group_ordinal(&input, &group_idx);
    let partials = crate::morsel::run_morsels(opts, input.len(), |morsel| {
        accumulate_columnar(
            &input.rows,
            morsel,
            &group_idx,
            int_group,
            &agg_cols,
            aggregates,
        )
    })?;
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for partial in partials {
        for (key, states) in partial {
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut existing) => {
                    for (into, from) in existing.get_mut().iter_mut().zip(states) {
                        into.merge(from);
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(states);
                }
            }
        }
    }
    Some(finalize(
        tracker, input, group_by, aggregates, group_idx, groups,
    ))
}

/// Deterministic multiply-mix hasher for the typed `Option<i64>`
/// group-id map: one multiply and a shift per written word, an order of
/// magnitude cheaper than SipHash on single-integer keys.  Only group-id
/// *assignment* uses it; the `Vec<Value>`-keyed maps the caller sees are
/// untouched, and group ids feed a finalize step that sorts output rows,
/// so hash iteration order never reaches results.
#[derive(Default)]
struct IntKeyHasher(u64);

impl std::hash::Hasher for IntKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        // Golden-ratio multiply with a high-bit fold (the HashMap keeps
        // the low bits, so fold the well-mixed high bits down).
        let mixed = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = mixed ^ (mixed >> 32);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type IntKeyMap<V> = HashMap<Option<i64>, V, std::hash::BuildHasherDefault<IntKeyHasher>>;

/// The ordinal of the single declared-`Int` group-by column, when the
/// primitive-keyed grouping fast path applies; multi-column, non-`Int`,
/// or empty group keys stay on the generic row-major path.
fn int_group_ordinal(input: &Batch, group_idx: &[usize]) -> Option<usize> {
    match group_idx {
        &[g] if input.schema.column(g).data_type == DataType::Int => Some(g),
        _ => None,
    }
}

/// Extracts each aggregate's input column (if any) into a typed vector,
/// transposing each distinct ordinal once and sharing it (`Arc`) when
/// several aggregates read the same column (e.g. `SUM`/`AVG`/`MIN`/`MAX`
/// over one measure).
fn columnarize_agg_inputs(input: &Batch, agg_idx: &[Option<usize>]) -> Vec<Option<Arc<ColumnVec>>> {
    let mut by_ordinal: HashMap<usize, Arc<ColumnVec>> = HashMap::new();
    for i in agg_idx.iter().flatten() {
        by_ordinal.entry(*i).or_insert_with(|| {
            Arc::new(ColumnVec::from_rows(
                &input.rows,
                *i,
                input.schema.column(*i).data_type,
            ))
        });
    }
    agg_idx
        .iter()
        .map(|idx| idx.map(|i| Arc::clone(&by_ordinal[&i])))
        .collect()
}

/// Columnar counterpart of [`accumulate`] for the absolute row range
/// `range`: pass 1 assigns group ids (a primitive-keyed map when the
/// single group column is declared `Int`, otherwise keys cloned
/// row-major exactly like the row path); pass 2 runs one typed loop per
/// aggregate.
fn accumulate_columnar(
    rows: &[Vec<Value>],
    range: Range<usize>,
    group_idx: &[usize],
    int_group: Option<usize>,
    agg_cols: &[Option<Arc<ColumnVec>>],
    aggregates: &[AggExpr],
) -> HashMap<Vec<Value>, Vec<AggState>> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();
    let mut gids: Vec<u32> = Vec::with_capacity(range.len());
    let new_group = |states: &mut Vec<Vec<AggState>>| {
        states.push(aggregates.iter().map(|a| AggState::new(a.func)).collect());
        states.len() - 1
    };
    let mut typed_ok = false;
    if let Some(g) = int_group {
        // Single declared-Int group column: group on `Option<i64>` read
        // straight out of the rows — no transpose, no one-element
        // `Vec<Value>` alloc + hash per row.  NULL keys map to `None`,
        // matching the row path's storage equality (NULL groups with
        // NULL); the `Value` keys the caller's merge/finalize see are
        // reconstructed below and hash identically to the row path's.
        // A declared-Int column can still hold an off-type value (an
        // aggregate output feeding a re-aggregation): bail out and let
        // the generic path redo the morsel.
        let mut typed: IntKeyMap<usize> = IntKeyMap::default();
        typed_ok = true;
        for i in range.clone() {
            let key = match &rows[i][g] {
                Value::Int(v) => Some(*v),
                Value::Null => None,
                _ => {
                    typed_ok = false;
                    break;
                }
            };
            let gid = *typed.entry(key).or_insert_with(|| new_group(&mut states));
            gids.push(gid as u32);
        }
        if typed_ok {
            for (key, gid) in typed {
                index.insert(vec![key.map_or(Value::Null, Value::Int)], gid);
            }
        } else {
            states.clear();
            gids.clear();
        }
    }
    if !typed_ok {
        for i in range.clone() {
            let key: Vec<Value> = group_idx.iter().map(|&g| rows[i][g].clone()).collect();
            let gid = *index.entry(key).or_insert_with(|| new_group(&mut states));
            gids.push(gid as u32);
        }
    }
    for (j, (agg, col)) in aggregates.iter().zip(agg_cols).enumerate() {
        update_states(&mut states, &gids, range.start, j, agg.func, col.as_deref());
    }
    index
        .into_iter()
        .map(|(key, gid)| (key, std::mem::take(&mut states[gid])))
        .collect()
}

fn null_at(nulls: Option<&NullMask>, i: usize) -> bool {
    nulls.is_some_and(|m| m.is_null(i))
}

/// Updates aggregate `j`'s state for every row, in row order.  `SUM`,
/// `AVG`, and `COUNT` over numeric columns run typed loops; everything
/// else goes through [`AggState::update`] with the materialized value —
/// same semantics (including MIN/MAX keeping the input's native type and
/// panics on non-numeric SUM inputs), just without the per-row group
/// lookup.
fn update_states(
    states: &mut [Vec<AggState>],
    gids: &[u32],
    start: usize,
    j: usize,
    func: AggFunc,
    col: Option<&ColumnVec>,
) {
    let add = |state: &mut AggState, v: f64| match state {
        AggState::Sum(acc) => *acc += v,
        AggState::Avg { sum, count } => {
            *sum += v;
            *count += 1;
        }
        _ => unreachable!("typed add on non-SUM/AVG state"),
    };
    match (func, col) {
        (AggFunc::Count, None) => {
            // COUNT(*): every row counts.
            for &g in gids {
                match &mut states[g as usize][j] {
                    AggState::Count(n) => *n += 1,
                    _ => unreachable!("COUNT state"),
                }
            }
        }
        (AggFunc::Count, Some(col)) => {
            // COUNT(col): skip NULLs.
            for (k, &g) in gids.iter().enumerate() {
                if !col.is_null(start + k) {
                    match &mut states[g as usize][j] {
                        AggState::Count(n) => *n += 1,
                        _ => unreachable!("COUNT state"),
                    }
                }
            }
        }
        (AggFunc::Sum | AggFunc::Avg, Some(ColumnVec::Int { values, nulls })) => {
            for (k, &g) in gids.iter().enumerate() {
                let i = start + k;
                if !null_at(nulls.as_ref(), i) {
                    add(&mut states[g as usize][j], values[i] as f64);
                }
            }
        }
        (AggFunc::Sum | AggFunc::Avg, Some(ColumnVec::Float { values, nulls })) => {
            for (k, &g) in gids.iter().enumerate() {
                let i = start + k;
                if !null_at(nulls.as_ref(), i) {
                    add(&mut states[g as usize][j], values[i]);
                }
            }
        }
        (AggFunc::Sum | AggFunc::Avg, Some(ColumnVec::Date { values, nulls })) => {
            // `Value::as_f64` widens dates like any numeric.
            for (k, &g) in gids.iter().enumerate() {
                let i = start + k;
                if !null_at(nulls.as_ref(), i) {
                    add(&mut states[g as usize][j], values[i] as f64);
                }
            }
        }
        (_, Some(col)) => {
            // MIN/MAX (any type), SUM/AVG over Mixed or non-numeric
            // columns: materialize the value and use the row-path update.
            for (k, &g) in gids.iter().enumerate() {
                let v = col.value(start + k);
                states[g as usize][j].update(Some(&v));
            }
        }
        (_, None) => {
            // Non-COUNT aggregate without a column: panics in update,
            // exactly like the row path.
            for &g in gids {
                states[g as usize][j].update(None);
            }
        }
    }
}

/// Resolves grouping and aggregate-input column ordinals.
fn resolve_indices(
    input: &Batch,
    group_by: &[String],
    aggregates: &[AggExpr],
) -> (Vec<usize>, Vec<Option<usize>>) {
    let group_idx = group_by
        .iter()
        .map(|g| input.schema.expect_index(g))
        .collect();
    let agg_idx = aggregates
        .iter()
        .map(|a| a.column.as_ref().map(|c| input.schema.expect_index(c)))
        .collect();
    (group_idx, agg_idx)
}

/// Accumulates aggregate states over a slice of rows, in row order.
fn accumulate(
    rows: &[Vec<Value>],
    group_idx: &[usize],
    agg_idx: &[Option<usize>],
    aggregates: &[AggExpr],
) -> HashMap<Vec<Value>, Vec<AggState>> {
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| aggregates.iter().map(|a| AggState::new(a.func)).collect());
        for (state, idx) in states.iter_mut().zip(agg_idx) {
            state.update(idx.map(|i| &row[i]));
        }
    }
    groups
}

/// Builds the output schema and the deterministically ordered result rows.
fn finalize(
    tracker: &mut CostTracker,
    input: Batch,
    group_by: &[String],
    aggregates: &[AggExpr],
    group_idx: Vec<usize>,
    mut groups: HashMap<Vec<Value>, Vec<AggState>>,
) -> Batch {
    // Scalar aggregates over empty input still produce one group.
    if group_by.is_empty() && groups.is_empty() {
        groups.insert(
            Vec::new(),
            aggregates.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }

    let mut columns: Vec<ColumnMeta> = group_idx
        .iter()
        .map(|&i| input.schema.column(i).clone())
        .collect();
    for a in aggregates {
        columns.push(ColumnMeta::new(
            a.alias.clone(),
            AggState::output_type(a.func),
        ));
    }
    let schema = Schema::new(columns);

    let mut rows: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(mut key, states)| {
            key.extend(states.into_iter().map(AggState::finish));
            key
        })
        .collect();
    // Deterministic output order for tests and reports.
    rows.sort_by(|a, b| {
        for i in 0..group_idx.len() {
            let ord = a[i].total_cmp(&b[i]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    tracker.charge_cpu_ops(rows.len() as u64);
    Batch::new(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Batch {
        Batch::new(
            Schema::from_pairs(&[("g", DataType::Int), ("x", DataType::Float)]),
            vec![
                vec![Value::Int(1), Value::Float(10.0)],
                vec![Value::Int(2), Value::Float(5.0)],
                vec![Value::Int(1), Value::Float(30.0)],
                vec![Value::Int(2), Value::Float(15.0)],
                vec![Value::Int(1), Value::Float(20.0)],
            ],
        )
    }

    #[test]
    fn scalar_aggregates() {
        let mut tracker = CostTracker::new();
        let out = hash_aggregate(
            &mut tracker,
            input(),
            &[],
            &[
                AggExpr::sum("x", "total"),
                AggExpr::count_star("n"),
                AggExpr::avg("x", "mean"),
                AggExpr::min("x", "lo"),
                AggExpr::max("x", "hi"),
            ],
        );
        assert_eq!(out.len(), 1);
        let row = &out.rows[0];
        assert_eq!(row[0], Value::Float(80.0));
        assert_eq!(row[1], Value::Int(5));
        assert_eq!(row[2], Value::Float(16.0));
        assert_eq!(row[3], Value::Float(5.0));
        assert_eq!(row[4], Value::Float(30.0));
        assert_eq!(tracker.hash_builds, 5);
    }

    #[test]
    fn grouped_aggregates_sorted_output() {
        let mut tracker = CostTracker::new();
        let out = hash_aggregate(
            &mut tracker,
            input(),
            &["g".to_string()],
            &[AggExpr::sum("x", "total"), AggExpr::count_star("n")],
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema.names(), vec!["g", "total", "n"]);
        assert_eq!(
            out.rows[0],
            vec![Value::Int(1), Value::Float(60.0), Value::Int(3)]
        );
        assert_eq!(
            out.rows[1],
            vec![Value::Int(2), Value::Float(20.0), Value::Int(2)]
        );
    }

    #[test]
    fn empty_input_scalar_yields_identity_row() {
        let mut tracker = CostTracker::new();
        let empty = Batch::empty(Schema::from_pairs(&[("x", DataType::Float)]));
        let out = hash_aggregate(
            &mut tracker,
            empty,
            &[],
            &[
                AggExpr::sum("x", "s"),
                AggExpr::count_star("n"),
                AggExpr::avg("x", "a"),
                AggExpr::min("x", "lo"),
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Value::Float(0.0));
        assert_eq!(out.rows[0][1], Value::Int(0));
        assert_eq!(out.rows[0][2], Value::Null);
        assert_eq!(out.rows[0][3], Value::Null);
    }

    #[test]
    fn empty_input_grouped_yields_no_rows() {
        let mut tracker = CostTracker::new();
        let empty = Batch::empty(Schema::from_pairs(&[
            ("g", DataType::Int),
            ("x", DataType::Float),
        ]));
        let out = hash_aggregate(
            &mut tracker,
            empty,
            &["g".to_string()],
            &[AggExpr::sum("x", "s")],
        );
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn parallel_aggregate_matches_serial() {
        use crate::morsel::ExecOptions;
        // Integer-valued floats: partial-sum merges are exact, so the
        // parallel result must be bit-identical to serial.
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| vec![Value::Int(i % 7), Value::Float((i * 3 % 100) as f64)])
            .collect();
        let b = Batch::new(
            Schema::from_pairs(&[("g", DataType::Int), ("x", DataType::Float)]),
            rows,
        );
        let aggs = [
            AggExpr::sum("x", "s"),
            AggExpr::count_star("n"),
            AggExpr::avg("x", "a"),
            AggExpr::min("x", "lo"),
            AggExpr::max("x", "hi"),
        ];
        for group_by in [vec![], vec!["g".to_string()]] {
            let mut ts = CostTracker::new();
            let serial = hash_aggregate(&mut ts, b.clone(), &group_by, &aggs);
            for threads in [1, 2, 8] {
                let opts = ExecOptions::with_threads(threads).with_morsel_size(64);
                let mut tp = CostTracker::new();
                let par = hash_aggregate_par(&mut tp, b.clone(), &group_by, &aggs, &opts).unwrap();
                assert_eq!(par.rows, serial.rows, "threads={threads}");
                assert_eq!(tp, ts, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_aggregate_empty_input_identity_row() {
        use crate::morsel::ExecOptions;
        let empty = Batch::empty(Schema::from_pairs(&[("x", DataType::Float)]));
        let mut tracker = CostTracker::new();
        let out = hash_aggregate_par(
            &mut tracker,
            empty,
            &[],
            &[AggExpr::sum("x", "s"), AggExpr::count_star("n")],
            &ExecOptions::with_threads(4),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Value::Float(0.0));
        assert_eq!(out.rows[0][1], Value::Int(0));
    }

    #[test]
    fn columnar_aggregate_is_bit_identical_to_row_aggregate() {
        use crate::morsel::ExecOptions;
        // NULL-heavy float column plus an Int column so MIN/MAX keep the
        // native type and SUM widens; irrational values so float addition
        // order matters and bit-identity is a real claim.
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| {
                let x = if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Float((i as f64).sqrt())
                };
                vec![Value::Int(i % 7), x, Value::Int(i % 11)]
            })
            .collect();
        let b = Batch::new(
            Schema::from_pairs(&[
                ("g", DataType::Int),
                ("x", DataType::Float),
                ("y", DataType::Int),
            ]),
            rows,
        );
        let aggs = [
            AggExpr::sum("x", "s"),
            AggExpr::count_star("n"),
            AggExpr {
                func: AggFunc::Count,
                column: Some("x".into()),
                alias: "cx".into(),
            },
            AggExpr::avg("x", "a"),
            AggExpr::min("y", "lo"),
            AggExpr::max("x", "hi"),
        ];
        for group_by in [vec![], vec!["g".to_string()]] {
            let mut ts = CostTracker::new();
            let serial = hash_aggregate(&mut ts, b.clone(), &group_by, &aggs);
            let mut tc = CostTracker::new();
            let columnar = hash_aggregate_columnar(&mut tc, b.clone(), &group_by, &aggs);
            assert_eq!(columnar.rows, serial.rows);
            assert_eq!(tc, ts);
            // MIN over the Int column keeps its native type.
            let lo_idx = columnar.schema.expect_index("lo");
            assert!(matches!(columnar.rows[0][lo_idx], Value::Int(_)));
            for threads in [1, 2, 8] {
                let opts = ExecOptions::with_threads(threads).with_morsel_size(64);
                let mut tp = CostTracker::new();
                let par = hash_aggregate_columnar_par(&mut tp, b.clone(), &group_by, &aggs, &opts)
                    .unwrap();
                let mut tr = CostTracker::new();
                let row_par =
                    hash_aggregate_par(&mut tr, b.clone(), &group_by, &aggs, &opts).unwrap();
                assert_eq!(par.rows, row_par.rows, "threads={threads}");
                assert_eq!(tp, tr, "threads={threads}");
            }
        }
    }

    #[test]
    fn columnar_aggregate_empty_input_identity_row() {
        let empty = Batch::empty(Schema::from_pairs(&[("x", DataType::Float)]));
        let mut tracker = CostTracker::new();
        let out = hash_aggregate_columnar(
            &mut tracker,
            empty,
            &[],
            &[AggExpr::sum("x", "s"), AggExpr::count_star("n")],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Value::Float(0.0));
        assert_eq!(out.rows[0][1], Value::Int(0));
    }

    #[test]
    fn count_column_skips_nulls() {
        let mut tracker = CostTracker::new();
        let b = Batch::new(
            Schema::from_pairs(&[("x", DataType::Int)]),
            vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(3)]],
        );
        let out = hash_aggregate(
            &mut tracker,
            b,
            &[],
            &[
                AggExpr {
                    func: AggFunc::Count,
                    column: Some("x".into()),
                    alias: "c".into(),
                },
                AggExpr::count_star("n"),
            ],
        );
        assert_eq!(out.rows[0][0], Value::Int(2));
        assert_eq!(out.rows[0][1], Value::Int(3));
    }
}
