//! Materialized intermediate results.

use rqo_storage::{Schema, Value};

/// A fully materialized operator result: a schema plus row-major values.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Column layout of the rows.
    pub schema: Schema,
    /// Row-major data.
    pub rows: Vec<Vec<Value>>,
}

impl Batch {
    /// Creates a batch.
    ///
    /// # Panics
    ///
    /// Panics when any row's arity differs from the schema.  The check is
    /// always on (not `debug_assert!`): it is one `usize` compare per row,
    /// and it guards the storage→exec boundary — a malformed row here would
    /// otherwise make every downstream columnar kernel silently misread
    /// columns.
    pub fn new(schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row arity mismatch: batch schema has {} columns",
            schema.len()
        );
        Self { schema, rows }
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// Concatenates per-morsel row chunks, in order, into one batch.
    ///
    /// Parallel operators produce one chunk per morsel; recombining them
    /// in morsel index order reproduces the serial operator's row order
    /// exactly.
    pub fn from_parts(schema: Schema, parts: Vec<Vec<Vec<Value>>>) -> Self {
        let total = parts.iter().map(Vec::len).sum();
        let mut rows = Vec::with_capacity(total);
        for part in parts {
            rows.extend(part);
        }
        Self::new(schema, rows)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The values in one column, cloned out.
    ///
    /// # Panics
    ///
    /// Panics when the column does not exist.
    pub fn column_values(&self, name: &str) -> Vec<Value> {
        let idx = self.schema.expect_index(name);
        self.rows.iter().map(|r| r[idx].clone()).collect()
    }

    /// True when the rows are non-decreasing in the named column.
    pub fn is_sorted_by(&self, name: &str) -> bool {
        let idx = self.schema.expect_index(name);
        self.rows
            .windows(2)
            .all(|w| w[0][idx].total_cmp(&w[1][idx]) != std::cmp::Ordering::Greater)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_storage::DataType;

    fn batch() -> Batch {
        Batch::new(
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]),
            vec![
                vec![Value::Int(1), Value::Int(9)],
                vec![Value::Int(2), Value::Int(5)],
                vec![Value::Int(3), Value::Int(7)],
            ],
        )
    }

    #[test]
    fn accessors() {
        let b = batch();
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(
            b.column_values("b"),
            vec![Value::Int(9), Value::Int(5), Value::Int(7)]
        );
    }

    #[test]
    fn from_parts_concatenates_in_order() {
        let b = batch();
        let parts = vec![
            vec![b.rows[0].clone()],
            Vec::new(),
            vec![b.rows[1].clone(), b.rows[2].clone()],
        ];
        let joined = Batch::from_parts(b.schema.clone(), parts);
        assert_eq!(joined.rows, b.rows);
        assert!(Batch::from_parts(b.schema.clone(), Vec::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn new_rejects_short_rows_in_all_builds() {
        // Regression: this used to be debug-only, so a release build would
        // silently accept the malformed row and misread columns downstream.
        Batch::new(
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]),
            vec![vec![Value::Int(1)]],
        );
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn from_parts_rejects_malformed_chunks() {
        Batch::from_parts(
            Schema::from_pairs(&[("a", DataType::Int)]),
            vec![vec![vec![Value::Int(1), Value::Int(2)]]],
        );
    }

    #[test]
    fn sortedness() {
        let b = batch();
        assert!(b.is_sorted_by("a"));
        assert!(!b.is_sorted_by("b"));
        let e = Batch::empty(b.schema.clone());
        assert!(e.is_empty());
        assert!(e.is_sorted_by("a"));
    }
}
