//! Plan interpretation.

use rqo_storage::{Catalog, CostParams, CostTracker};

use crate::agg::{hash_aggregate, hash_aggregate_par};
use crate::batch::Batch;
use crate::join::{
    hash_join, hash_join_par, indexed_nl_join, indexed_nl_join_par, merge_join, star_semijoin,
};
use crate::morsel::{run_morsels, ExecOptions};
use crate::plan::PhysicalPlan;
use crate::scan::{
    index_intersection, index_intersection_par, index_seek, index_seek_par, seq_scan, seq_scan_par,
};

/// Executes a physical plan against the catalog, returning the result and
/// the full simulated cost of producing it.
///
/// Execution is deterministic: the same plan over the same catalog always
/// returns the same rows and the same cost.  Equivalent to
/// [`execute_with`] under [`ExecOptions::default`] (serial).
pub fn execute(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    params: &CostParams,
) -> (Batch, CostTracker) {
    execute_with(plan, catalog, params, &ExecOptions::default())
}

/// Executes a physical plan with explicit execution options.
///
/// With `opts.threads > 1` the scan, fetch, hash-join, hash-aggregate,
/// filter, and project operators run morsel-parallel (merge join and the
/// star semijoin stay serial — they are sort- and intersection-bound).
/// The returned [`CostTracker`] is the deterministic merge of per-morsel
/// trackers and is **bit-identical for every thread count**: simulated
/// cost models the plan's work, not the host's parallelism.
pub fn execute_with(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    params: &CostParams,
    opts: &ExecOptions,
) -> (Batch, CostTracker) {
    let mut tracker = CostTracker::new();
    let batch = run(plan, catalog, params, &mut tracker, opts);
    (batch, tracker)
}

fn run(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    opts: &ExecOptions,
) -> Batch {
    let parallel = opts.is_parallel();
    match plan {
        PhysicalPlan::SeqScan { table, predicate } => {
            if parallel {
                seq_scan_par(catalog, params, tracker, table, predicate.as_ref(), opts)
            } else {
                seq_scan(catalog, params, tracker, table, predicate.as_ref())
            }
        }
        PhysicalPlan::IndexSeek {
            table,
            range,
            residual,
        } => {
            if parallel {
                index_seek_par(
                    catalog,
                    params,
                    tracker,
                    table,
                    range,
                    residual.as_ref(),
                    opts,
                )
            } else {
                index_seek(catalog, params, tracker, table, range, residual.as_ref())
            }
        }
        PhysicalPlan::IndexIntersection {
            table,
            ranges,
            residual,
        } => {
            if parallel {
                index_intersection_par(
                    catalog,
                    params,
                    tracker,
                    table,
                    ranges,
                    residual.as_ref(),
                    opts,
                )
            } else {
                index_intersection(catalog, params, tracker, table, ranges, residual.as_ref())
            }
        }
        PhysicalPlan::Filter { input, predicate } => {
            let batch = run(input, catalog, params, tracker, opts);
            let bound = predicate.bind(&batch.schema).expect("filter binds");
            tracker.charge_cpu_ops(batch.len() as u64);
            if parallel {
                let parts = run_morsels(opts, batch.rows.len(), |morsel| -> Vec<_> {
                    batch.rows[morsel]
                        .iter()
                        .filter(|row| rqo_expr::eval_bool(&bound, row))
                        .cloned()
                        .collect()
                });
                Batch::from_parts(batch.schema, parts)
            } else {
                let rows = batch
                    .rows
                    .into_iter()
                    .filter(|row| rqo_expr::eval_bool(&bound, row))
                    .collect();
                Batch::new(batch.schema, rows)
            }
        }
        PhysicalPlan::Project { input, columns } => {
            let batch = run(input, catalog, params, tracker, opts);
            let ordinals: Vec<usize> = columns
                .iter()
                .map(|c| batch.schema.expect_index(c))
                .collect();
            tracker.charge_cpu_ops(batch.len() as u64);
            let schema = batch.schema.project(&ordinals);
            if parallel {
                let parts = run_morsels(opts, batch.rows.len(), |morsel| -> Vec<_> {
                    batch.rows[morsel]
                        .iter()
                        .map(|row| ordinals.iter().map(|&i| row[i].clone()).collect())
                        .collect()
                });
                Batch::from_parts(schema, parts)
            } else {
                let rows = batch
                    .rows
                    .into_iter()
                    .map(|row| ordinals.iter().map(|&i| row[i].clone()).collect())
                    .collect();
                Batch::new(schema, rows)
            }
        }
        PhysicalPlan::HashJoin {
            build,
            probe,
            build_key,
            probe_key,
        } => {
            let b = run(build, catalog, params, tracker, opts);
            let p = run(probe, catalog, params, tracker, opts);
            if parallel {
                hash_join_par(tracker, b, p, build_key, probe_key, opts)
            } else {
                hash_join(tracker, b, p, build_key, probe_key)
            }
        }
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let l = run(left, catalog, params, tracker, opts);
            let r = run(right, catalog, params, tracker, opts);
            merge_join(tracker, l, r, left_key, right_key)
        }
        PhysicalPlan::IndexedNlJoin {
            outer,
            inner_table,
            inner_index_column,
            outer_key,
        } => {
            let o = run(outer, catalog, params, tracker, opts);
            if parallel {
                indexed_nl_join_par(
                    catalog,
                    params,
                    tracker,
                    o,
                    inner_table,
                    inner_index_column,
                    outer_key,
                    opts,
                )
            } else {
                indexed_nl_join(
                    catalog,
                    params,
                    tracker,
                    o,
                    inner_table,
                    inner_index_column,
                    outer_key,
                )
            }
        }
        PhysicalPlan::StarSemiJoin { fact_table, legs } => {
            star_semijoin(catalog, params, tracker, fact_table, legs)
        }
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggregates,
        } => {
            let batch = run(input, catalog, params, tracker, opts);
            if parallel {
                hash_aggregate_par(tracker, batch, group_by, aggregates, opts)
            } else {
                hash_aggregate(tracker, batch, group_by, aggregates)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggExpr, IndexRange};
    use rqo_expr::Expr;
    use rqo_storage::{DataType, Schema, TableBuilder, Value};

    /// orders(o_id, o_cust) and items(i_order, i_price): 50 orders with 2
    /// items each.
    fn catalog() -> Catalog {
        let mut orders = TableBuilder::new(
            "orders",
            Schema::from_pairs(&[("o_id", DataType::Int), ("o_cust", DataType::Int)]),
            50,
        );
        for i in 0..50i64 {
            orders.push_row(&[Value::Int(i), Value::Int(i % 5)]);
        }
        let mut items = TableBuilder::new(
            "items",
            Schema::from_pairs(&[("i_order", DataType::Int), ("i_price", DataType::Float)]),
            100,
        );
        for i in 0..100i64 {
            items.push_row(&[Value::Int(i / 2), Value::Float(i as f64)]);
        }
        let mut cat = Catalog::new();
        cat.add_table(orders.finish()).unwrap();
        cat.add_table(items.finish()).unwrap();
        cat.add_foreign_key("items", "i_order", "orders", "o_id")
            .unwrap();
        cat.ensure_secondary_index("items", "i_order").unwrap();
        cat.ensure_secondary_index("items", "i_price").unwrap();
        cat.ensure_secondary_index("orders", "o_cust").unwrap();
        cat
    }

    #[test]
    fn end_to_end_join_aggregate() {
        let cat = catalog();
        let params = CostParams::default();
        // SELECT SUM(i_price) FROM items JOIN orders ON i_order = o_id
        // WHERE o_cust = 0
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                build: Box::new(PhysicalPlan::SeqScan {
                    table: "orders".into(),
                    predicate: Some(Expr::col("o_cust").eq(Expr::lit(0i64))),
                }),
                probe: Box::new(PhysicalPlan::SeqScan {
                    table: "items".into(),
                    predicate: None,
                }),
                build_key: "o_id".into(),
                probe_key: "i_order".into(),
            }),
            group_by: vec![],
            aggregates: vec![AggExpr::sum("i_price", "total"), AggExpr::count_star("n")],
        };
        let (batch, cost) = execute(&plan, &cat, &params);
        assert_eq!(batch.len(), 1);
        // Orders with cust 0: ids 0,5,...,45; items 2k,2k+1 per order id k.
        let expected: f64 = (0..50i64)
            .filter(|o| o % 5 == 0)
            .flat_map(|o| [2 * o, 2 * o + 1])
            .map(|i| i as f64)
            .sum();
        assert_eq!(batch.rows[0][0], Value::Float(expected));
        assert_eq!(batch.rows[0][1], Value::Int(20));
        assert!(cost.seconds(&params) > 0.0);
    }

    #[test]
    fn filter_and_project_nodes() {
        let cat = catalog();
        let params = CostParams::default();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::SeqScan {
                    table: "items".into(),
                    predicate: None,
                }),
                predicate: Expr::col("i_price").ge(Expr::lit(90.0)),
            }),
            columns: vec!["i_price".into()],
        };
        let (batch, _) = execute(&plan, &cat, &params);
        assert_eq!(batch.len(), 10);
        assert_eq!(batch.schema.names(), vec!["i_price"]);
    }

    #[test]
    fn equivalent_plans_same_rows_different_costs() {
        let cat = catalog();
        let params = CostParams::default();
        // Same logical query via seq scan vs index seek.
        let pred = Expr::col("i_price").between(Expr::lit(10.0), Expr::lit(19.0));
        let scan = PhysicalPlan::SeqScan {
            table: "items".into(),
            predicate: Some(pred),
        };
        let seek = PhysicalPlan::IndexSeek {
            table: "items".into(),
            range: IndexRange::between("i_price", Value::Float(10.0), Value::Float(19.0)),
            residual: None,
        };
        let (b1, c1) = execute(&scan, &cat, &params);
        let (b2, c2) = execute(&seek, &cat, &params);
        assert_eq!(b1.len(), b2.len());
        assert_eq!(b1.len(), 10);
        assert_ne!(c1, c2);
    }

    #[test]
    fn determinism() {
        let cat = catalog();
        let params = CostParams::default();
        let plan = PhysicalPlan::IndexedNlJoin {
            outer: Box::new(PhysicalPlan::SeqScan {
                table: "orders".into(),
                predicate: Some(Expr::col("o_cust").eq(Expr::lit(2i64))),
            }),
            inner_table: "items".into(),
            inner_index_column: "i_order".into(),
            outer_key: "o_id".into(),
        };
        let (b1, c1) = execute(&plan, &cat, &params);
        let (b2, c2) = execute(&plan, &cat, &params);
        assert_eq!(b1.rows, b2.rows);
        assert_eq!(c1, c2);
        assert_eq!(b1.len(), 20);
    }

    #[test]
    fn execute_with_parallel_is_bit_identical_to_serial() {
        let cat = catalog();
        let params = CostParams::default();
        // A plan exercising scan, filter, project, hash join, and
        // aggregate in one tree.
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::HashJoin {
                        build: Box::new(PhysicalPlan::SeqScan {
                            table: "orders".into(),
                            predicate: None,
                        }),
                        probe: Box::new(PhysicalPlan::SeqScan {
                            table: "items".into(),
                            predicate: None,
                        }),
                        build_key: "o_id".into(),
                        probe_key: "i_order".into(),
                    }),
                    predicate: Expr::col("i_price").lt(Expr::lit(80.0)),
                }),
                columns: vec!["o_cust".into(), "i_price".into()],
            }),
            group_by: vec!["o_cust".into()],
            aggregates: vec![AggExpr::sum("i_price", "total"), AggExpr::count_star("n")],
        };
        let (serial, serial_cost) = execute(&plan, &cat, &params);
        for threads in [1, 2, 8] {
            let opts = crate::morsel::ExecOptions::with_threads(threads).with_morsel_size(16);
            let (par, par_cost) = execute_with(&plan, &cat, &params, &opts);
            assert_eq!(par.rows, serial.rows, "threads={threads}");
            assert_eq!(par_cost, serial_cost, "threads={threads}");
        }
    }

    #[test]
    fn grouped_aggregate_over_join() {
        let cat = catalog();
        let params = CostParams::default();
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::MergeJoin {
                left: Box::new(PhysicalPlan::SeqScan {
                    table: "orders".into(),
                    predicate: None,
                }),
                right: Box::new(PhysicalPlan::SeqScan {
                    table: "items".into(),
                    predicate: None,
                }),
                left_key: "o_id".into(),
                right_key: "i_order".into(),
            }),
            group_by: vec!["o_cust".into()],
            aggregates: vec![AggExpr::count_star("n")],
        };
        let (batch, _) = execute(&plan, &cat, &params);
        assert_eq!(batch.len(), 5);
        for row in &batch.rows {
            assert_eq!(row[1], Value::Int(20)); // 10 orders × 2 items
        }
    }
}
