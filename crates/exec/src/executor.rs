//! Plan interpretation.

use std::time::Instant;

use rqo_core::StopReason;
use rqo_storage::{Catalog, CostParams, CostTracker};

use crate::adaptive::{GuardTrip, RowGuard};
use crate::agg::{
    hash_aggregate, hash_aggregate_columnar, hash_aggregate_columnar_par, hash_aggregate_par,
};
use crate::batch::Batch;
use crate::join::{
    hash_join, hash_join_columnar, hash_join_columnar_par, hash_join_par, indexed_nl_join,
    indexed_nl_join_par, merge_join, star_semijoin,
};
use crate::kernels::{filter_batch, project_batch};
use crate::metrics::OpMetrics;
use crate::morsel::{run_morsels, ExecOptions};
use crate::plan::PhysicalPlan;
use crate::scan::{
    index_intersection_counted, index_seek_counted, partitioned_scan, partitioned_scan_columnar,
    partitioned_scan_columnar_par, partitioned_scan_par, seq_scan, seq_scan_columnar,
    seq_scan_columnar_par, seq_scan_par, surviving_spans,
};

/// Why the interpreter unwound before producing the root's result:
/// either a cardinality guard tripped (adaptive re-planning takes over)
/// or the query's token fired (cancellation/deadline).
pub(crate) enum Interrupt {
    /// A [`RowGuard`] bound was violated at a pipeline breaker.
    Trip(Box<GuardTrip>),
    /// The query's [`rqo_core::QueryToken`] fired.
    Stopped(StopReason),
}

/// Executes a physical plan against the catalog, returning the result and
/// the full simulated cost of producing it.
///
/// Execution is deterministic: the same plan over the same catalog always
/// returns the same rows and the same cost.  Equivalent to
/// [`execute_with`] under [`ExecOptions::default`] (serial).
pub fn execute(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    params: &CostParams,
) -> (Batch, CostTracker) {
    execute_with(plan, catalog, params, &ExecOptions::default())
}

/// Executes a physical plan with explicit execution options.
///
/// With `opts.threads > 1` the scan, fetch, hash-join, hash-aggregate,
/// filter, and project operators run morsel-parallel (merge join and the
/// star semijoin stay serial — they are sort- and intersection-bound).
/// The returned [`CostTracker`] is the deterministic merge of per-morsel
/// trackers and is **bit-identical for every thread count**: simulated
/// cost models the plan's work, not the host's parallelism.
///
/// Sequential scans, filters, projections, hash joins, and hash
/// aggregates run on **vectorized columnar kernels** by default
/// (see [`crate::columnar`] and [`crate::kernels`]); setting
/// `opts.row_fallback` routes them through the original row-at-a-time
/// code instead.  The two paths are bit-identical — rows, order, costs,
/// metrics, and guard trips — pinned by the equivalence suites.
pub fn execute_with(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    params: &CostParams,
    opts: &ExecOptions,
) -> (Batch, CostTracker) {
    let (batch, tracker, _) = execute_analyze(plan, catalog, params, opts);
    (batch, tracker)
}

/// Token-aware [`execute_with`]: returns `Err(StopReason)` when the
/// query's [`rqo_core::QueryToken`] fires mid-execution (within one
/// morsel of the cancellation or deadline).  The partial work's cost is
/// discarded along with the partial rows — an interrupted query reports
/// nothing.
pub fn try_execute_with(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    params: &CostParams,
    opts: &ExecOptions,
) -> Result<(Batch, CostTracker), StopReason> {
    let (batch, tracker, _) = try_execute_analyze(plan, catalog, params, opts)?;
    Ok((batch, tracker))
}

/// [`execute_with`] plus the per-operator [`OpMetrics`] tree — the
/// `EXPLAIN ANALYZE` entry point.
///
/// The metrics tree mirrors the plan tree node for node (same labels as
/// [`PhysicalPlan::explain`], children in execution order) and every
/// deterministic field — rows in/out, morsel counts, peak hash entries,
/// per-subtree cost deltas — is identical at any thread count: morsel
/// counts come from input sizes, partial results merge in morsel index
/// order, and only the informational `wall_ns` (excluded from equality
/// and rendering) reflects the host's actual parallelism.
pub fn execute_analyze(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    params: &CostParams,
    opts: &ExecOptions,
) -> (Batch, CostTracker, OpMetrics) {
    try_execute_analyze(plan, catalog, params, opts)
        .expect("query was stopped; use try_execute_analyze with a token")
}

/// Token-aware [`execute_analyze`]: `Err(StopReason)` when the query's
/// token fires mid-execution.
pub fn try_execute_analyze(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    params: &CostParams,
    opts: &ExecOptions,
) -> Result<(Batch, CostTracker, OpMetrics), StopReason> {
    let mut tracker = CostTracker::new();
    match run_guarded(plan, catalog, params, &mut tracker, opts, &[], &[]) {
        Ok((batch, metrics)) => Ok((batch, tracker, metrics)),
        Err(Interrupt::Stopped(reason)) => Err(reason),
        Err(Interrupt::Trip(_)) => unreachable!("no guards armed"),
    }
}

/// Everything the recursive interpreter reads but never mutates.
struct Env<'a> {
    catalog: &'a Catalog,
    params: &'a CostParams,
    opts: &'a ExecOptions,
    /// Armed cardinality guards, looked up by pre-order node index.
    guards: &'a [RowGuard],
    /// Bound intermediates for `Materialized` leaves, by slot.
    slots: &'a [Batch],
}

/// The guarded interpreter entry point (used by
/// [`crate::adaptive::execute_guarded`]): runs the plan, accumulating
/// cost into `tracker`, and stops with a [`GuardTrip`] at the first
/// guard whose actual output cardinality violates its bound — or with a
/// [`StopReason`] when the query's token fires.  Guard checks happen in
/// execution order, so the first trip is deterministic at every thread
/// count.
pub(crate) fn run_guarded(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    opts: &ExecOptions,
    guards: &[RowGuard],
    slots: &[Batch],
) -> Result<(Batch, OpMetrics), Interrupt> {
    let env = Env {
        catalog,
        params,
        opts,
        guards,
        slots,
    };
    run(plan, &env, tracker, &mut 0)
}

fn run(
    plan: &PhysicalPlan,
    env: &Env<'_>,
    tracker: &mut CostTracker,
    counter: &mut usize,
) -> Result<(Batch, OpMetrics), Interrupt> {
    let my_idx = *counter;
    *counter += 1;
    let start = Instant::now();
    let before = *tracker;
    let (catalog, params, opts) = (env.catalog, env.params, env.opts);
    // Cooperative cancellation at operator entry: together with the
    // per-morsel polls inside `run_morsels`, a fired token unwinds the
    // whole tree within one morsel of work.
    if let Some(reason) = opts.check_stop() {
        return Err(Interrupt::Stopped(reason));
    }
    // A token forces the morselized code paths even at one thread, so
    // cancellation is checked per morsel rather than per operator.  The
    // morselized operators are bit-identical to the serial ones (pinned
    // by the parallel_equivalence suite), so this changes no result.
    let parallel = opts.is_parallel() || opts.token.is_some();
    // An operator that came back empty-handed was stopped by the token.
    let stopped = || Interrupt::Stopped(opts.stop_reason().unwrap_or(StopReason::Cancelled));
    // Each arm yields the output batch plus the metric ingredients that
    // are only visible here: rows consumed, morsel count (computed from
    // sizes, identical serial or parallel), peak hash entries, children.
    let (batch, rows_in, morsels, peak_hash_entries, children) = match plan {
        PhysicalPlan::SeqScan { table, predicate } => {
            let n = catalog.table(table).expect("table exists").num_rows();
            let batch = match (opts.row_fallback, parallel) {
                (false, false) => {
                    seq_scan_columnar(catalog, params, tracker, table, predicate.as_ref())
                }
                (false, true) => {
                    seq_scan_columnar_par(catalog, params, tracker, table, predicate.as_ref(), opts)
                        .ok_or_else(stopped)?
                }
                (true, false) => seq_scan(catalog, params, tracker, table, predicate.as_ref()),
                (true, true) => {
                    seq_scan_par(catalog, params, tracker, table, predicate.as_ref(), opts)
                        .ok_or_else(stopped)?
                }
            };
            (batch, n as u64, opts.morsel_count(n), 0, vec![])
        }
        PhysicalPlan::PartitionedScan {
            table,
            predicate,
            partitions,
            ..
        } => {
            // Rows consumed are only those in surviving partitions: pruned
            // partitions are never read, so they appear in neither the cost
            // charges nor the metrics.
            let n: usize = surviving_spans(catalog, table, partitions)
                .iter()
                .map(|s| s.len())
                .sum();
            let batch = match (opts.row_fallback, parallel) {
                (false, false) => partitioned_scan_columnar(
                    catalog,
                    params,
                    tracker,
                    table,
                    predicate.as_ref(),
                    partitions,
                ),
                (false, true) => partitioned_scan_columnar_par(
                    catalog,
                    params,
                    tracker,
                    table,
                    predicate.as_ref(),
                    partitions,
                    opts,
                )
                .ok_or_else(stopped)?,
                (true, false) => partitioned_scan(
                    catalog,
                    params,
                    tracker,
                    table,
                    predicate.as_ref(),
                    partitions,
                ),
                (true, true) => partitioned_scan_par(
                    catalog,
                    params,
                    tracker,
                    table,
                    predicate.as_ref(),
                    partitions,
                    opts,
                )
                .ok_or_else(stopped)?,
            };
            (batch, n as u64, opts.morsel_count(n), 0, vec![])
        }
        PhysicalPlan::IndexSeek {
            table,
            range,
            residual,
        } => {
            let (batch, fetched) = index_seek_counted(
                catalog,
                params,
                tracker,
                table,
                range,
                residual.as_ref(),
                parallel.then_some(opts),
            )
            .ok_or_else(stopped)?;
            (batch, fetched as u64, opts.morsel_count(fetched), 0, vec![])
        }
        PhysicalPlan::IndexIntersection {
            table,
            ranges,
            residual,
        } => {
            let (batch, fetched) = index_intersection_counted(
                catalog,
                params,
                tracker,
                table,
                ranges,
                residual.as_ref(),
                parallel.then_some(opts),
            )
            .ok_or_else(stopped)?;
            (batch, fetched as u64, opts.morsel_count(fetched), 0, vec![])
        }
        PhysicalPlan::Filter { input, predicate } => {
            let (batch, child) = run(input, env, tracker, counter)?;
            let n = batch.len();
            let bound = predicate.bind(&batch.schema).expect("filter binds");
            tracker.charge_cpu_ops(n as u64);
            let out = if !opts.row_fallback {
                filter_batch(batch, &bound, parallel.then_some(opts)).ok_or_else(stopped)?
            } else if parallel {
                let parts = run_morsels(opts, batch.rows.len(), |morsel| -> Vec<_> {
                    batch.rows[morsel]
                        .iter()
                        .filter(|row| rqo_expr::eval_bool(&bound, row))
                        .cloned()
                        .collect()
                })
                .ok_or_else(stopped)?;
                Batch::from_parts(batch.schema, parts)
            } else {
                let rows = batch
                    .rows
                    .into_iter()
                    .filter(|row| rqo_expr::eval_bool(&bound, row))
                    .collect();
                Batch::new(batch.schema, rows)
            };
            (out, n as u64, opts.morsel_count(n), 0, vec![child])
        }
        PhysicalPlan::Project { input, columns } => {
            let (batch, child) = run(input, env, tracker, counter)?;
            let n = batch.len();
            let ordinals: Vec<usize> = columns
                .iter()
                .map(|c| batch.schema.expect_index(c))
                .collect();
            tracker.charge_cpu_ops(n as u64);
            let schema = batch.schema.project(&ordinals);
            let out = if !opts.row_fallback {
                project_batch(batch, &ordinals, schema, parallel.then_some(opts))
                    .ok_or_else(stopped)?
            } else if parallel {
                let parts = run_morsels(opts, batch.rows.len(), |morsel| -> Vec<_> {
                    batch.rows[morsel]
                        .iter()
                        .map(|row| ordinals.iter().map(|&i| row[i].clone()).collect())
                        .collect()
                })
                .ok_or_else(stopped)?;
                Batch::from_parts(schema, parts)
            } else {
                let rows = batch
                    .rows
                    .into_iter()
                    .map(|row| ordinals.iter().map(|&i| row[i].clone()).collect())
                    .collect();
                Batch::new(schema, rows)
            };
            (out, n as u64, opts.morsel_count(n), 0, vec![child])
        }
        PhysicalPlan::HashJoin {
            build,
            probe,
            build_key,
            probe_key,
        } => {
            let (b, mb) = run(build, env, tracker, counter)?;
            let (p, mp) = run(probe, env, tracker, counter)?;
            let (build_len, probe_len) = (b.len(), p.len());
            let out = match (opts.row_fallback, parallel) {
                (false, false) => hash_join_columnar(tracker, b, p, build_key, probe_key),
                (false, true) => hash_join_columnar_par(tracker, b, p, build_key, probe_key, opts)
                    .ok_or_else(stopped)?,
                (true, false) => hash_join(tracker, b, p, build_key, probe_key),
                (true, true) => {
                    hash_join_par(tracker, b, p, build_key, probe_key, opts).ok_or_else(stopped)?
                }
            };
            (
                out,
                (build_len + probe_len) as u64,
                opts.morsel_count(build_len) + opts.morsel_count(probe_len),
                build_len as u64,
                vec![mb, mp],
            )
        }
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let (l, ml) = run(left, env, tracker, counter)?;
            let (r, mr) = run(right, env, tracker, counter)?;
            let rows_in = (l.len() + r.len()) as u64;
            let out = merge_join(tracker, l, r, left_key, right_key);
            (out, rows_in, 0, 0, vec![ml, mr])
        }
        PhysicalPlan::IndexedNlJoin {
            outer,
            inner_table,
            inner_index_column,
            outer_key,
        } => {
            let (o, mo) = run(outer, env, tracker, counter)?;
            let outer_len = o.len();
            let out = if parallel {
                indexed_nl_join_par(
                    catalog,
                    params,
                    tracker,
                    o,
                    inner_table,
                    inner_index_column,
                    outer_key,
                    opts,
                )
                .ok_or_else(stopped)?
            } else {
                indexed_nl_join(
                    catalog,
                    params,
                    tracker,
                    o,
                    inner_table,
                    inner_index_column,
                    outer_key,
                )
            };
            (
                out,
                outer_len as u64,
                opts.morsel_count(outer_len),
                0,
                vec![mo],
            )
        }
        PhysicalPlan::StarSemiJoin { fact_table, legs } => {
            let out = star_semijoin(catalog, params, tracker, fact_table, legs);
            let rows_in = out.len() as u64;
            (out, rows_in, 0, 0, vec![])
        }
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggregates,
        } => {
            let (batch, child) = run(input, env, tracker, counter)?;
            let n = batch.len();
            let out = match (opts.row_fallback, parallel) {
                (false, false) => hash_aggregate_columnar(tracker, batch, group_by, aggregates),
                (false, true) => {
                    hash_aggregate_columnar_par(tracker, batch, group_by, aggregates, opts)
                        .ok_or_else(stopped)?
                }
                (true, false) => hash_aggregate(tracker, batch, group_by, aggregates),
                (true, true) => hash_aggregate_par(tracker, batch, group_by, aggregates, opts)
                    .ok_or_else(stopped)?,
            };
            // Groups resident in the hash table; the scalar aggregate over
            // empty input synthesizes its identity row without one.
            let peak = if n == 0 && group_by.is_empty() {
                0
            } else {
                out.len() as u64
            };
            (out, n as u64, opts.morsel_count(n), peak, vec![child])
        }
        PhysicalPlan::Materialized { slot, .. } => {
            // The work that produced this batch was charged when it
            // originally ran (before the re-plan); serving it again from
            // memory is free, so the adaptive total never double-counts.
            let batch = env
                .slots
                .get(*slot)
                .unwrap_or_else(|| panic!("Materialized slot {slot} is not bound"))
                .clone();
            let n = batch.len();
            (batch, n as u64, opts.morsel_count(n), 0, vec![])
        }
    };
    let metrics = OpMetrics {
        label: plan.node_label(),
        rows_in,
        rows_out: batch.len() as u64,
        est_rows: None,
        morsels,
        peak_hash_entries,
        wall_ns: start.elapsed().as_nanos(),
        cost: tracker.diff(&before),
        children,
    };
    // Guard check at the pipeline breaker: the node's output is fully
    // materialized, so `rows_out` is exact and identical at every thread
    // count.
    if let Some(guard) = env.guards.iter().find(|g| g.node == my_idx) {
        if guard.trips(metrics.rows_out) {
            return Err(Interrupt::Trip(Box::new(GuardTrip {
                node: my_idx,
                est_rows: guard.est_rows,
                actual_rows: metrics.rows_out,
                q_error: crate::adaptive::q_error(guard.est_rows, metrics.rows_out as f64),
                batch,
                metrics,
            })));
        }
    }
    Ok((batch, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggExpr, IndexRange};
    use rqo_expr::Expr;
    use rqo_storage::{DataType, Schema, TableBuilder, Value};

    /// orders(o_id, o_cust) and items(i_order, i_price): 50 orders with 2
    /// items each.
    fn catalog() -> Catalog {
        let mut orders = TableBuilder::new(
            "orders",
            Schema::from_pairs(&[("o_id", DataType::Int), ("o_cust", DataType::Int)]),
            50,
        );
        for i in 0..50i64 {
            orders.push_row(&[Value::Int(i), Value::Int(i % 5)]);
        }
        let mut items = TableBuilder::new(
            "items",
            Schema::from_pairs(&[("i_order", DataType::Int), ("i_price", DataType::Float)]),
            100,
        );
        for i in 0..100i64 {
            items.push_row(&[Value::Int(i / 2), Value::Float(i as f64)]);
        }
        let mut cat = Catalog::new();
        cat.add_table(orders.finish()).unwrap();
        cat.add_table(items.finish()).unwrap();
        cat.add_foreign_key("items", "i_order", "orders", "o_id")
            .unwrap();
        cat.ensure_secondary_index("items", "i_order").unwrap();
        cat.ensure_secondary_index("items", "i_price").unwrap();
        cat.ensure_secondary_index("orders", "o_cust").unwrap();
        cat
    }

    #[test]
    fn end_to_end_join_aggregate() {
        let cat = catalog();
        let params = CostParams::default();
        // SELECT SUM(i_price) FROM items JOIN orders ON i_order = o_id
        // WHERE o_cust = 0
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                build: Box::new(PhysicalPlan::SeqScan {
                    table: "orders".into(),
                    predicate: Some(Expr::col("o_cust").eq(Expr::lit(0i64))),
                }),
                probe: Box::new(PhysicalPlan::SeqScan {
                    table: "items".into(),
                    predicate: None,
                }),
                build_key: "o_id".into(),
                probe_key: "i_order".into(),
            }),
            group_by: vec![],
            aggregates: vec![AggExpr::sum("i_price", "total"), AggExpr::count_star("n")],
        };
        let (batch, cost) = execute(&plan, &cat, &params);
        assert_eq!(batch.len(), 1);
        // Orders with cust 0: ids 0,5,...,45; items 2k,2k+1 per order id k.
        let expected: f64 = (0..50i64)
            .filter(|o| o % 5 == 0)
            .flat_map(|o| [2 * o, 2 * o + 1])
            .map(|i| i as f64)
            .sum();
        assert_eq!(batch.rows[0][0], Value::Float(expected));
        assert_eq!(batch.rows[0][1], Value::Int(20));
        assert!(cost.seconds(&params) > 0.0);
    }

    #[test]
    fn filter_and_project_nodes() {
        let cat = catalog();
        let params = CostParams::default();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::SeqScan {
                    table: "items".into(),
                    predicate: None,
                }),
                predicate: Expr::col("i_price").ge(Expr::lit(90.0)),
            }),
            columns: vec!["i_price".into()],
        };
        let (batch, _) = execute(&plan, &cat, &params);
        assert_eq!(batch.len(), 10);
        assert_eq!(batch.schema.names(), vec!["i_price"]);
    }

    #[test]
    fn equivalent_plans_same_rows_different_costs() {
        let cat = catalog();
        let params = CostParams::default();
        // Same logical query via seq scan vs index seek.
        let pred = Expr::col("i_price").between(Expr::lit(10.0), Expr::lit(19.0));
        let scan = PhysicalPlan::SeqScan {
            table: "items".into(),
            predicate: Some(pred),
        };
        let seek = PhysicalPlan::IndexSeek {
            table: "items".into(),
            range: IndexRange::between("i_price", Value::Float(10.0), Value::Float(19.0)),
            residual: None,
        };
        let (b1, c1) = execute(&scan, &cat, &params);
        let (b2, c2) = execute(&seek, &cat, &params);
        assert_eq!(b1.len(), b2.len());
        assert_eq!(b1.len(), 10);
        assert_ne!(c1, c2);
    }

    #[test]
    fn determinism() {
        let cat = catalog();
        let params = CostParams::default();
        let plan = PhysicalPlan::IndexedNlJoin {
            outer: Box::new(PhysicalPlan::SeqScan {
                table: "orders".into(),
                predicate: Some(Expr::col("o_cust").eq(Expr::lit(2i64))),
            }),
            inner_table: "items".into(),
            inner_index_column: "i_order".into(),
            outer_key: "o_id".into(),
        };
        let (b1, c1) = execute(&plan, &cat, &params);
        let (b2, c2) = execute(&plan, &cat, &params);
        assert_eq!(b1.rows, b2.rows);
        assert_eq!(c1, c2);
        assert_eq!(b1.len(), 20);
    }

    #[test]
    fn execute_with_parallel_is_bit_identical_to_serial() {
        let cat = catalog();
        let params = CostParams::default();
        // A plan exercising scan, filter, project, hash join, and
        // aggregate in one tree.
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::HashJoin {
                        build: Box::new(PhysicalPlan::SeqScan {
                            table: "orders".into(),
                            predicate: None,
                        }),
                        probe: Box::new(PhysicalPlan::SeqScan {
                            table: "items".into(),
                            predicate: None,
                        }),
                        build_key: "o_id".into(),
                        probe_key: "i_order".into(),
                    }),
                    predicate: Expr::col("i_price").lt(Expr::lit(80.0)),
                }),
                columns: vec!["o_cust".into(), "i_price".into()],
            }),
            group_by: vec!["o_cust".into()],
            aggregates: vec![AggExpr::sum("i_price", "total"), AggExpr::count_star("n")],
        };
        let (serial, serial_cost) = execute(&plan, &cat, &params);
        for threads in [1, 2, 8] {
            let opts = crate::morsel::ExecOptions::with_threads(threads).with_morsel_size(16);
            let (par, par_cost) = execute_with(&plan, &cat, &params, &opts);
            assert_eq!(par.rows, serial.rows, "threads={threads}");
            assert_eq!(par_cost, serial_cost, "threads={threads}");
        }
    }

    #[test]
    fn columnar_default_is_bit_identical_to_row_fallback() {
        let cat = catalog();
        let params = CostParams::default();
        // Scan+filter+project+join+aggregate, all five columnar kernels.
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::HashJoin {
                        build: Box::new(PhysicalPlan::SeqScan {
                            table: "orders".into(),
                            predicate: Some(Expr::col("o_id").lt(Expr::lit(40i64))),
                        }),
                        probe: Box::new(PhysicalPlan::SeqScan {
                            table: "items".into(),
                            predicate: None,
                        }),
                        build_key: "o_id".into(),
                        probe_key: "i_order".into(),
                    }),
                    predicate: Expr::col("i_price").lt(Expr::lit(70.0)),
                }),
                columns: vec!["o_cust".into(), "i_price".into()],
            }),
            group_by: vec!["o_cust".into()],
            aggregates: vec![AggExpr::sum("i_price", "total"), AggExpr::count_star("n")],
        };
        let row_opts = ExecOptions::serial()
            .with_morsel_size(16)
            .with_row_fallback(true);
        let (row, row_cost, row_metrics) = execute_analyze(&plan, &cat, &params, &row_opts);
        for threads in [1, 2, 8] {
            for fallback in [false, true] {
                let opts = ExecOptions::with_threads(threads)
                    .with_morsel_size(16)
                    .with_row_fallback(fallback);
                let (b, c, m) = execute_analyze(&plan, &cat, &params, &opts);
                assert_eq!(b.rows, row.rows, "threads={threads} fallback={fallback}");
                assert_eq!(c, row_cost, "threads={threads} fallback={fallback}");
                assert_eq!(m, row_metrics, "threads={threads} fallback={fallback}");
            }
        }
    }

    #[test]
    fn grouped_aggregate_over_join() {
        let cat = catalog();
        let params = CostParams::default();
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::MergeJoin {
                left: Box::new(PhysicalPlan::SeqScan {
                    table: "orders".into(),
                    predicate: None,
                }),
                right: Box::new(PhysicalPlan::SeqScan {
                    table: "items".into(),
                    predicate: None,
                }),
                left_key: "o_id".into(),
                right_key: "i_order".into(),
            }),
            group_by: vec!["o_cust".into()],
            aggregates: vec![AggExpr::count_star("n")],
        };
        let (batch, _) = execute(&plan, &cat, &params);
        assert_eq!(batch.len(), 5);
        for row in &batch.rows {
            assert_eq!(row[1], Value::Int(20)); // 10 orders × 2 items
        }
    }

    #[test]
    fn metrics_tree_mirrors_plan_and_counts_rows() {
        let cat = catalog();
        let params = CostParams::default();
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                build: Box::new(PhysicalPlan::SeqScan {
                    table: "orders".into(),
                    predicate: Some(Expr::col("o_cust").eq(Expr::lit(0i64))),
                }),
                probe: Box::new(PhysicalPlan::SeqScan {
                    table: "items".into(),
                    predicate: None,
                }),
                build_key: "o_id".into(),
                probe_key: "i_order".into(),
            }),
            group_by: vec![],
            aggregates: vec![AggExpr::sum("i_price", "total")],
        };
        let (batch, cost, metrics) = execute_analyze(&plan, &cat, &params, &ExecOptions::default());
        assert_eq!(batch.len(), 1);
        assert_eq!(metrics.node_count(), plan.node_count());
        // Labels line up with explain() node for node.
        let labels: Vec<String> = metrics.preorder().iter().map(|m| m.label.clone()).collect();
        let explain_labels: Vec<String> = plan
            .explain()
            .lines()
            .map(|l| l.trim_start().to_string())
            .collect();
        assert_eq!(labels, explain_labels);
        // Row accounting: aggregate consumed the join's output.
        assert_eq!(metrics.label, plan.node_label());
        assert_eq!(metrics.rows_out, 1);
        let join = &metrics.children[0];
        assert_eq!(join.rows_out, 20);
        assert_eq!(metrics.rows_in, join.rows_out);
        assert_eq!(join.children[0].rows_out, 10); // orders with cust 0
        assert_eq!(join.children[1].rows_out, 100); // full items scan
        assert_eq!(join.rows_in, 110);
        assert_eq!(join.peak_hash_entries, 10); // build-side rows
        assert_eq!(metrics.peak_hash_entries, 1); // one scalar group
                                                  // The root's inclusive cost delta is the whole execution's cost.
        assert_eq!(metrics.cost, cost);
        // Children's inclusive costs never exceed the parent's.
        let child_sum: CostTracker = join.children.iter().map(|c| c.cost).sum();
        assert_eq!(join.cost.diff(&child_sum), join.self_cost());
        assert!(join.self_cost().hash_builds > 0);
    }

    #[test]
    fn metrics_identical_across_thread_counts() {
        let cat = catalog();
        let params = CostParams::default();
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::HashJoin {
                    build: Box::new(PhysicalPlan::SeqScan {
                        table: "orders".into(),
                        predicate: None,
                    }),
                    probe: Box::new(PhysicalPlan::IndexSeek {
                        table: "items".into(),
                        range: IndexRange::between(
                            "i_price",
                            Value::Float(10.0),
                            Value::Float(89.0),
                        ),
                        residual: None,
                    }),
                    build_key: "o_id".into(),
                    probe_key: "i_order".into(),
                }),
                predicate: Expr::col("i_price").lt(Expr::lit(80.0)),
            }),
            group_by: vec!["o_cust".into()],
            aggregates: vec![AggExpr::count_star("n")],
        };
        let baseline = execute_analyze(
            &plan,
            &cat,
            &params,
            &ExecOptions::serial().with_morsel_size(16),
        )
        .2;
        for threads in [2, 8] {
            let opts = ExecOptions::with_threads(threads).with_morsel_size(16);
            let (_, _, metrics) = execute_analyze(&plan, &cat, &params, &opts);
            assert_eq!(metrics, baseline, "threads={threads}");
        }
        // Rendered output is byte-identical too (wall time is excluded).
        let rendered = baseline.render();
        let opts = ExecOptions::with_threads(8).with_morsel_size(16);
        assert_eq!(
            execute_analyze(&plan, &cat, &params, &opts).2.render(),
            rendered
        );
    }
}
