//! Access-path operators: sequential scan, index seek, index
//! intersection.

use std::ops::Range;

use rqo_expr::columnar::{select, Candidates};
use rqo_expr::Expr;
use rqo_storage::{Catalog, ColumnRef, CostParams, CostTracker, Rid, Table, Value};

use crate::batch::Batch;
use crate::columnar::{gather_rows, SelVec};
use crate::morsel::{run_morsels, ExecOptions};
use crate::plan::IndexRange;

/// Number of B-tree levels charged as random I/Os per index descend.
const BTREE_DESCEND_IOS: u64 = 1;

/// Sequential scan with an optional pushed-down predicate.
///
/// Charges one sequential page read per data page plus one CPU op per row
/// (the predicate/projection work).
pub fn seq_scan(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    predicate: Option<&Expr>,
) -> Batch {
    let t = catalog.table(table).expect("table exists");
    tracker.charge_seq_pages(params.data_pages(t.num_rows(), t.row_width_bytes()));
    tracker.charge_cpu_ops(t.num_rows() as u64);
    let bound = predicate.map(|p| p.bind(t.schema()).expect("predicate binds"));
    let mut rows = Vec::new();
    for rid in 0..t.num_rows() as Rid {
        let row = t.row(rid);
        if bound.as_ref().is_none_or(|p| rqo_expr::eval_bool(p, &row)) {
            rows.push(row);
        }
    }
    Batch::new(t.schema().clone(), rows)
}

/// Morsel-parallel [`seq_scan`].
///
/// The page and CPU charges are selectivity- and thread-independent, so
/// they are charged centrally before the workers start; the morsels only
/// evaluate the predicate and materialize qualifying rows.  Concatenating
/// morsel outputs in index order reproduces the serial row order, making
/// this bit-identical to [`seq_scan`] for every `threads`/`morsel_size`.
/// Returns `None` when the query's token fired mid-scan.
pub fn seq_scan_par(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    predicate: Option<&Expr>,
    opts: &ExecOptions,
) -> Option<Batch> {
    let t = catalog.table(table).expect("table exists");
    tracker.charge_seq_pages(params.data_pages(t.num_rows(), t.row_width_bytes()));
    tracker.charge_cpu_ops(t.num_rows() as u64);
    let bound = predicate.map(|p| p.bind(t.schema()).expect("predicate binds"));
    let parts = run_morsels(opts, t.num_rows(), |morsel| {
        let mut rows = Vec::new();
        for rid in morsel {
            let row = t.row(rid as Rid);
            if bound.as_ref().is_none_or(|p| rqo_expr::eval_bool(p, &row)) {
                rows.push(row);
            }
        }
        rows
    })?;
    Some(Batch::from_parts(t.schema().clone(), parts))
}

/// Vectorized [`seq_scan`]: the predicate runs over the table's typed
/// column vectors (zero-copy [`ColumnRef`] views), producing a selection
/// vector that is gathered into rows column-at-a-time.  Charges, row
/// order, and values are bit-identical to [`seq_scan`].
pub fn seq_scan_columnar(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    predicate: Option<&Expr>,
) -> Batch {
    seq_scan_columnar_inner(catalog, params, tracker, table, predicate, None)
        .expect("serial scan has no token to interrupt it")
}

/// Morsel-parallel [`seq_scan_columnar`], bit-identical to
/// [`seq_scan_par`].  Returns `None` when the query's token fired.
pub fn seq_scan_columnar_par(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    predicate: Option<&Expr>,
    opts: &ExecOptions,
) -> Option<Batch> {
    seq_scan_columnar_inner(catalog, params, tracker, table, predicate, Some(opts))
}

fn seq_scan_columnar_inner(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    predicate: Option<&Expr>,
    opts: Option<&ExecOptions>,
) -> Option<Batch> {
    let t = catalog.table(table).expect("table exists");
    tracker.charge_seq_pages(params.data_pages(t.num_rows(), t.row_width_bytes()));
    tracker.charge_cpu_ops(t.num_rows() as u64);
    let bound = predicate.map(|p| p.bind(t.schema()).expect("predicate binds"));
    let refs: Vec<ColumnRef<'_>> = t.column_refs();
    // Storage→exec boundary invariant (always on, O(columns)): the
    // table's column count must match its schema or every ordinal-based
    // kernel below would misread columns.
    assert_eq!(
        refs.len(),
        t.schema().len(),
        "table {table} column count diverges from its schema"
    );
    let cols: Vec<Option<ColumnRef<'_>>> = refs.iter().copied().map(Some).collect();
    let n = t.num_rows();
    let scan_morsel = |morsel: std::ops::Range<usize>| -> Vec<Vec<Value>> {
        let sel = match &bound {
            Some(p) => SelVec::new(select(p, &cols, Candidates::Range(morsel.clone())), n),
            None => SelVec::new((morsel.start as u32..morsel.end as u32).collect(), n),
        };
        gather_rows(&refs, &sel)
    };
    match opts {
        None => Some(Batch::new(t.schema().clone(), scan_morsel(0..n))),
        Some(o) => {
            let parts = run_morsels(o, n, scan_morsel)?;
            Some(Batch::from_parts(t.schema().clone(), parts))
        }
    }
}

/// Partition-wise sequential scan: row-at-a-time serial variant.
///
/// See [`partitioned_scan_columnar`] for the cost/determinism contract.
pub fn partitioned_scan(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    predicate: Option<&Expr>,
    partitions: &[usize],
) -> Batch {
    partitioned_scan_inner(
        catalog, params, tracker, table, predicate, partitions, None, false,
    )
    .expect("serial scan has no token to interrupt it")
}

/// Morsel-parallel row-at-a-time [`partitioned_scan`].  Returns `None`
/// when the query's token fired mid-scan.
pub fn partitioned_scan_par(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    predicate: Option<&Expr>,
    partitions: &[usize],
    opts: &ExecOptions,
) -> Option<Batch> {
    partitioned_scan_inner(
        catalog,
        params,
        tracker,
        table,
        predicate,
        partitions,
        Some(opts),
        false,
    )
}

/// Vectorized partition-wise sequential scan over the surviving
/// partitions of a partitioned table.
///
/// Each surviving partition is a contiguous RID span of the canonical
/// concatenated table.  Charges are computed centrally (selectivity- and
/// thread-independent): adjacent surviving spans are merged and each
/// merged run charges its own sequential data pages, plus one CPU op per
/// surviving row — so a scan listing *every* partition charges exactly
/// what [`seq_scan_columnar`] charges, and pruning shows up as fewer page
/// reads.  Morsels are carved from the virtual concatenation of the
/// surviving spans: boundaries depend only on `morsel_size` and the
/// surviving row count, never on thread count, which keeps rows, order,
/// and metrics bit-identical at any parallelism (and bit-identical to the
/// single-blob scan when nothing is pruned).
pub fn partitioned_scan_columnar(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    predicate: Option<&Expr>,
    partitions: &[usize],
) -> Batch {
    partitioned_scan_inner(
        catalog, params, tracker, table, predicate, partitions, None, true,
    )
    .expect("serial scan has no token to interrupt it")
}

/// Morsel-parallel [`partitioned_scan_columnar`].  Returns `None` when
/// the query's token fired mid-scan.
pub fn partitioned_scan_columnar_par(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    predicate: Option<&Expr>,
    partitions: &[usize],
    opts: &ExecOptions,
) -> Option<Batch> {
    partitioned_scan_inner(
        catalog,
        params,
        tracker,
        table,
        predicate,
        partitions,
        Some(opts),
        true,
    )
}

/// The surviving RID spans of a partitioned table, ascending and with
/// adjacent spans merged (empty partitions vanish, so runs of surviving
/// partitions separated only by empty ones still coalesce).  Shared with
/// the optimizer's cost model so priced and executed page charges agree.
///
/// # Panics
///
/// Panics when the table has no partition layout, a partition index is
/// out of range, or the list is not strictly ascending.
pub fn surviving_spans(catalog: &Catalog, table: &str, partitions: &[usize]) -> Vec<Range<usize>> {
    let layout = catalog
        .partitioning(table)
        .unwrap_or_else(|| panic!("table {table} has no partition layout"));
    assert!(
        partitions.windows(2).all(|w| w[0] < w[1]),
        "partition list must be strictly ascending"
    );
    let mut spans: Vec<Range<usize>> = Vec::new();
    for &p in partitions {
        let s = layout.span(p);
        if s.is_empty() {
            continue;
        }
        match spans.last_mut() {
            Some(prev) if prev.end == s.start => prev.end = s.end,
            _ => spans.push(s),
        }
    }
    spans
}

#[allow(clippy::too_many_arguments)]
fn partitioned_scan_inner(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    predicate: Option<&Expr>,
    partitions: &[usize],
    opts: Option<&ExecOptions>,
    columnar: bool,
) -> Option<Batch> {
    let t = catalog.table(table).expect("table exists");
    let spans = surviving_spans(catalog, table, partitions);
    let total: usize = spans.iter().map(Range::len).sum();
    for s in &spans {
        tracker.charge_seq_pages(params.data_pages(s.len(), t.row_width_bytes()));
    }
    tracker.charge_cpu_ops(total as u64);

    let bound = predicate.map(|p| p.bind(t.schema()).expect("predicate binds"));
    let refs: Vec<ColumnRef<'_>> = t.column_refs();
    assert_eq!(
        refs.len(),
        t.schema().len(),
        "table {table} column count diverges from its schema"
    );
    let cols: Vec<Option<ColumnRef<'_>>> = refs.iter().copied().map(Some).collect();
    let n = t.num_rows();

    // Translates a morsel of the virtual concatenation of surviving spans
    // into actual RID sub-ranges (at most one per span).
    let to_actual = |vmorsel: Range<usize>| -> Vec<Range<usize>> {
        let mut out = Vec::new();
        let mut voff = 0usize;
        for s in &spans {
            let vstart = voff;
            let vend = voff + s.len();
            let lo = vmorsel.start.max(vstart);
            let hi = vmorsel.end.min(vend);
            if lo < hi {
                out.push(s.start + (lo - vstart)..s.start + (hi - vstart));
            }
            voff = vend;
        }
        out
    };
    let scan_morsel = |vmorsel: Range<usize>| -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for actual in to_actual(vmorsel) {
            if columnar {
                let sel = match &bound {
                    Some(p) => SelVec::new(select(p, &cols, Candidates::Range(actual.clone())), n),
                    None => SelVec::new((actual.start as u32..actual.end as u32).collect(), n),
                };
                rows.extend(gather_rows(&refs, &sel));
            } else {
                for rid in actual {
                    let row = t.row(rid as Rid);
                    if bound.as_ref().is_none_or(|p| rqo_expr::eval_bool(p, &row)) {
                        rows.push(row);
                    }
                }
            }
        }
        rows
    };
    match opts {
        None => Some(Batch::new(t.schema().clone(), scan_morsel(0..total))),
        Some(o) => {
            let parts = run_morsels(o, total, scan_morsel)?;
            Some(Batch::from_parts(t.schema().clone(), parts))
        }
    }
}

/// Resolves one index range to its RID list, charging the index descend
/// plus sequential leaf-page reads proportional to the entries touched.
pub(crate) fn rids_for_range(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    range: &IndexRange,
) -> Vec<Rid> {
    let index = catalog
        .secondary_index(table, &range.column)
        .unwrap_or_else(|| panic!("no secondary index on {table}.{}", range.column));
    tracker.charge_random_ios(BTREE_DESCEND_IOS);
    let entries = index.range(range.lo.as_ref(), range.hi.as_ref());
    tracker.charge_seq_pages(params.index_leaf_pages(entries.len()));
    tracker.charge_cpu_ops(entries.len() as u64);
    entries.iter().map(|(_, rid)| *rid).collect()
}

/// Fetches base-table rows by RID, charging one random I/O per *distinct
/// page* touched (RIDs are sorted first, so densely clustered qualifying
/// rows coalesce while scattered rows — the common case at low
/// selectivity — pay one seek each, matching the paper's cost model).
pub(crate) fn fetch_rows(
    table: &Table,
    params: &CostParams,
    tracker: &mut CostTracker,
    mut rids: Vec<Rid>,
) -> Vec<Vec<Value>> {
    rids.sort_unstable();
    rids.dedup();
    tracker.charge_random_ios(distinct_pages(table, params, &rids));
    tracker.charge_cpu_ops(rids.len() as u64);
    rids.into_iter().map(|rid| table.row(rid)).collect()
}

/// Number of distinct data pages touched by an ascending RID list.
fn distinct_pages(table: &Table, params: &CostParams, sorted_rids: &[Rid]) -> u64 {
    let rows_per_page = (params.page_bytes / table.row_width_bytes()).max(1) as u64;
    let mut pages = 0u64;
    let mut last_page = u64::MAX;
    for &rid in sorted_rids {
        let page = rid as u64 / rows_per_page;
        if page != last_page {
            pages += 1;
            last_page = page;
        }
    }
    pages
}

/// Morsel-parallel [`fetch_rows`].
///
/// The random-I/O charge coalesces RIDs that share a page, which is a
/// property of the *whole* sorted RID list — splitting the list and
/// charging per morsel would double-count pages straddling a morsel
/// boundary.  So the charge is computed centrally over the full list and
/// only the row materialization is farmed out to morsels.
pub(crate) fn fetch_rows_par(
    table: &Table,
    params: &CostParams,
    tracker: &mut CostTracker,
    mut rids: Vec<Rid>,
    opts: &ExecOptions,
) -> Option<Vec<Vec<Value>>> {
    rids.sort_unstable();
    rids.dedup();
    tracker.charge_random_ios(distinct_pages(table, params, &rids));
    tracker.charge_cpu_ops(rids.len() as u64);
    let parts = run_morsels(opts, rids.len(), |morsel| -> Vec<Vec<Value>> {
        rids[morsel].iter().map(|&rid| table.row(rid)).collect()
    })?;
    let mut rows = Vec::with_capacity(rids.len());
    for part in parts {
        rows.extend(part);
    }
    Some(rows)
}

/// Index seek: one range, fetch, residual filter.
pub fn index_seek(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    range: &IndexRange,
    residual: Option<&Expr>,
) -> Batch {
    index_seek_counted(catalog, params, tracker, table, range, residual, None)
        .expect("serial index seek has no token to interrupt it")
        .0
}

/// Morsel-parallel [`index_seek`]: the index descend and leaf scan stay
/// serial (they are one B-tree traversal), the row fetch is morselized.
/// Returns `None` when the query's token fired mid-fetch.
pub fn index_seek_par(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    range: &IndexRange,
    residual: Option<&Expr>,
    opts: &ExecOptions,
) -> Option<Batch> {
    index_seek_counted(catalog, params, tracker, table, range, residual, Some(opts))
        .map(|(batch, _)| batch)
}

/// [`index_seek`] plus the number of rows fetched before the residual
/// filter (the deduplicated RID count), which `EXPLAIN ANALYZE` reports
/// as the operator's `rows_in` and uses to size its morsel count.
/// `None` means the token fired (impossible when `opts` is `None`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn index_seek_counted(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    range: &IndexRange,
    residual: Option<&Expr>,
    opts: Option<&ExecOptions>,
) -> Option<(Batch, usize)> {
    let t = catalog.table(table).expect("table exists");
    let rids = rids_for_range(catalog, params, tracker, table, range);
    let mut rows = match opts {
        Some(o) => fetch_rows_par(t, params, tracker, rids, o)?,
        None => fetch_rows(t, params, tracker, rids),
    };
    let fetched = rows.len();
    if let Some(p) = residual {
        let bound = p.bind(t.schema()).expect("residual binds");
        tracker.charge_cpu_ops(rows.len() as u64);
        rows.retain(|row| rqo_expr::eval_bool(&bound, row));
    }
    Some((Batch::new(t.schema().clone(), rows), fetched))
}

/// Index intersection (the paper's risky plan): resolve each range's RID
/// list from its index, intersect, and fetch only rows matching *all*
/// ranges.
///
/// The fixed cost (index leaf scans, sized by the constant marginal
/// selectivities) does not depend on the predicates' joint selectivity;
/// the variable cost is one random I/O per qualifying row — the
/// `f₂ + v₂·x` line of the paper's analytical model.
///
/// # Panics
///
/// Panics when fewer than two ranges are supplied (use
/// [`index_seek`] instead).
pub fn index_intersection(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    ranges: &[IndexRange],
    residual: Option<&Expr>,
) -> Batch {
    index_intersection_counted(catalog, params, tracker, table, ranges, residual, None)
        .expect("serial index intersection has no token to interrupt it")
        .0
}

/// Morsel-parallel [`index_intersection`]: the leaf scans and RID-list
/// intersection stay serial (cheap, order-sensitive), the surviving-row
/// fetch is morselized.  Returns `None` when the query's token fired.
#[allow(clippy::too_many_arguments)]
pub fn index_intersection_par(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    ranges: &[IndexRange],
    residual: Option<&Expr>,
    opts: &ExecOptions,
) -> Option<Batch> {
    index_intersection_counted(
        catalog,
        params,
        tracker,
        table,
        ranges,
        residual,
        Some(opts),
    )
    .map(|(batch, _)| batch)
}

/// [`index_intersection`] plus the number of rows fetched after the RID
/// intersection but before the residual filter, for `EXPLAIN ANALYZE`.
/// `None` means the token fired (impossible when `opts` is `None`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn index_intersection_counted(
    catalog: &Catalog,
    params: &CostParams,
    tracker: &mut CostTracker,
    table: &str,
    ranges: &[IndexRange],
    residual: Option<&Expr>,
    opts: Option<&ExecOptions>,
) -> Option<(Batch, usize)> {
    assert!(
        ranges.len() >= 2,
        "index intersection needs at least two ranges"
    );
    let t = catalog.table(table).expect("table exists");

    let mut rid_sets: Vec<Vec<Rid>> = ranges
        .iter()
        .map(|r| {
            let mut rids = rids_for_range(catalog, params, tracker, table, r);
            rids.sort_unstable();
            rids
        })
        .collect();

    // Intersect starting from the smallest list; charge the merge work.
    rid_sets.sort_by_key(Vec::len);
    let merge_work: u64 = rid_sets.iter().map(|s| s.len() as u64).sum();
    tracker.charge_cpu_ops(merge_work);
    let mut acc = rid_sets[0].clone();
    for other in &rid_sets[1..] {
        acc = intersect_sorted(&acc, other);
        if acc.is_empty() {
            break;
        }
    }

    let mut rows = match opts {
        Some(o) => fetch_rows_par(t, params, tracker, acc, o)?,
        None => fetch_rows(t, params, tracker, acc),
    };
    let fetched = rows.len();
    if let Some(p) = residual {
        let bound = p.bind(t.schema()).expect("residual binds");
        tracker.charge_cpu_ops(rows.len() as u64);
        rows.retain(|row| rqo_expr::eval_bool(&bound, row));
    }
    Some((Batch::new(t.schema().clone(), rows), fetched))
}

/// Intersection of two ascending RID lists.
pub(crate) fn intersect_sorted(a: &[Rid], b: &[Rid]) -> Vec<Rid> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_storage::{DataType, Schema, TableBuilder};

    /// 1000 rows: x = i, y = i % 10.
    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "t",
            Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]),
            1000,
        );
        for i in 0..1000i64 {
            b.push_row(&[Value::Int(i), Value::Int(i % 10)]);
        }
        let mut cat = Catalog::new();
        cat.add_table(b.finish()).unwrap();
        cat.ensure_secondary_index("t", "x").unwrap();
        cat.ensure_secondary_index("t", "y").unwrap();
        cat
    }

    #[test]
    fn seq_scan_filters_and_charges() {
        let cat = catalog();
        let params = CostParams::default();
        let mut tracker = CostTracker::new();
        let pred = Expr::col("x").lt(Expr::lit(100i64));
        let batch = seq_scan(&cat, &params, &mut tracker, "t", Some(&pred));
        assert_eq!(batch.len(), 100);
        assert_eq!(tracker.cpu_ops, 1000);
        let expected_pages = params.data_pages(1000, cat.table("t").unwrap().row_width_bytes());
        assert_eq!(tracker.seq_pages, expected_pages);
        assert_eq!(tracker.random_ios, 0);
        // Unfiltered scan returns everything.
        let mut t2 = CostTracker::new();
        let all = seq_scan(&cat, &params, &mut t2, "t", None);
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn seq_scan_cost_is_selectivity_independent() {
        let cat = catalog();
        let params = CostParams::default();
        let narrow = Expr::col("x").lt(Expr::lit(1i64));
        let wide = Expr::col("x").lt(Expr::lit(999i64));
        let mut ta = CostTracker::new();
        let mut tb = CostTracker::new();
        seq_scan(&cat, &params, &mut ta, "t", Some(&narrow));
        seq_scan(&cat, &params, &mut tb, "t", Some(&wide));
        assert_eq!(ta, tb);
    }

    /// Same 1000 rows as [`catalog`], range-partitioned on `x` at
    /// 250/500/750 (4 partitions of 250 rows each).  Rows arrive in
    /// ascending `x` order, so the concatenated table is bit-identical
    /// to the single-blob one.
    fn partitioned_catalog() -> Catalog {
        use rqo_storage::{PartitionSpec, PartitionedTableBuilder};
        let spec = PartitionSpec::Range {
            column: "x".into(),
            bounds: vec![Value::Int(250), Value::Int(500), Value::Int(750)],
        };
        let mut b = PartitionedTableBuilder::new(
            "t",
            Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]),
            spec,
        );
        for i in 0..1000i64 {
            b.push_row(&[Value::Int(i), Value::Int(i % 10)]);
        }
        let (table, layout) = b.finish();
        let mut cat = Catalog::new();
        cat.add_partitioned_table(table, layout).unwrap();
        cat
    }

    #[test]
    fn partitioned_all_parts_is_bit_identical_to_seq_scan() {
        let single = catalog();
        let parted = partitioned_catalog();
        let params = CostParams::default();
        let all = [0usize, 1, 2, 3];
        let pred = Expr::col("y").eq(Expr::lit(3i64));
        for pred in [None, Some(&pred)] {
            // Serial, both row and columnar paths.
            let mut ts = CostTracker::new();
            let reference = seq_scan(&single, &params, &mut ts, "t", pred);
            let mut tp = CostTracker::new();
            let rows = partitioned_scan(&parted, &params, &mut tp, "t", pred, &all);
            assert_eq!(rows.rows, reference.rows);
            assert_eq!(tp, ts);
            let mut tc = CostTracker::new();
            let cols = partitioned_scan_columnar(&parted, &params, &mut tc, "t", pred, &all);
            assert_eq!(cols.rows, reference.rows);
            assert_eq!(tc, ts);
            // Parallel at several thread counts: same rows, same charges.
            for threads in [1usize, 2, 8] {
                let opts = ExecOptions::with_threads(threads).with_morsel_size(64);
                let mut t1 = CostTracker::new();
                let b1 = partitioned_scan_par(&parted, &params, &mut t1, "t", pred, &all, &opts)
                    .unwrap();
                assert_eq!(b1.rows, reference.rows, "row par threads={threads}");
                assert_eq!(t1, ts, "row par threads={threads}");
                let mut t2 = CostTracker::new();
                let b2 = partitioned_scan_columnar_par(
                    &parted, &params, &mut t2, "t", pred, &all, &opts,
                )
                .unwrap();
                assert_eq!(b2.rows, reference.rows, "columnar par threads={threads}");
                assert_eq!(t2, ts, "columnar par threads={threads}");
            }
        }
    }

    #[test]
    fn pruned_scan_reads_only_surviving_partitions() {
        let parted = partitioned_catalog();
        let params = CostParams::default();
        let w = parted.table("t").unwrap().row_width_bytes();
        let pred = Expr::col("x").between(Expr::lit(250i64), Expr::lit(499i64));
        // Only partition 1 can match: pages and CPU charged for 250 rows.
        let mut tracker = CostTracker::new();
        let batch =
            partitioned_scan_columnar(&parted, &params, &mut tracker, "t", Some(&pred), &[1]);
        assert_eq!(batch.len(), 250);
        assert_eq!(tracker.cpu_ops, 250);
        assert_eq!(tracker.seq_pages, params.data_pages(250, w));
        // Rows come back in table order.
        assert_eq!(batch.rows[0][0], Value::Int(250));
        assert_eq!(batch.rows[249][0], Value::Int(499));
    }

    #[test]
    fn adjacent_surviving_partitions_merge_into_one_page_run() {
        let parted = partitioned_catalog();
        let params = CostParams::default();
        let w = parted.table("t").unwrap().row_width_bytes();
        // Partitions 1 and 2 are adjacent: one merged 500-row page run,
        // not two 250-row runs (which could round up to more pages).
        let mut tracker = CostTracker::new();
        partitioned_scan_columnar(&parted, &params, &mut tracker, "t", None, &[1, 2]);
        assert_eq!(tracker.seq_pages, params.data_pages(500, w));
        // Non-adjacent survivors charge per run.
        let mut gap = CostTracker::new();
        partitioned_scan_columnar(&parted, &params, &mut gap, "t", None, &[0, 2]);
        assert_eq!(
            gap.seq_pages,
            params.data_pages(250, w) + params.data_pages(250, w)
        );
    }

    #[test]
    fn index_seek_range() {
        let cat = catalog();
        let params = CostParams::default();
        let mut tracker = CostTracker::new();
        let range = IndexRange::between("x", Value::Int(100), Value::Int(199));
        let batch = index_seek(&cat, &params, &mut tracker, "t", &range, None);
        assert_eq!(batch.len(), 100);
        assert!(tracker.random_ios > 0);
        // No full-table page reads: leaf pages only.
        assert!(tracker.seq_pages < params.data_pages(1000, 24));
    }

    #[test]
    fn index_seek_residual() {
        let cat = catalog();
        let params = CostParams::default();
        let mut tracker = CostTracker::new();
        let range = IndexRange::between("x", Value::Int(0), Value::Int(99));
        let residual = Expr::col("y").eq(Expr::lit(3i64));
        let batch = index_seek(&cat, &params, &mut tracker, "t", &range, Some(&residual));
        assert_eq!(batch.len(), 10); // x in 0..100 with x % 10 == 3
    }

    #[test]
    fn index_intersection_matches_conjunction() {
        let cat = catalog();
        let params = CostParams::default();
        let mut tracker = CostTracker::new();
        let ranges = vec![
            IndexRange::between("x", Value::Int(0), Value::Int(499)),
            IndexRange::eq("y", Value::Int(7)),
        ];
        let batch = index_intersection(&cat, &params, &mut tracker, "t", &ranges, None);
        // x in 0..500 and x % 10 == 7: 50 rows.
        assert_eq!(batch.len(), 50);

        // Equivalent seq scan agrees.
        let pred = Expr::col("x")
            .between(Expr::lit(0i64), Expr::lit(499i64))
            .and(Expr::col("y").eq(Expr::lit(7i64)));
        let mut t2 = CostTracker::new();
        let scan = seq_scan(&cat, &params, &mut t2, "t", Some(&pred));
        assert_eq!(scan.len(), batch.len());
    }

    #[test]
    fn intersection_fetch_cost_scales_with_result() {
        let cat = catalog();
        let params = CostParams::default();
        // Small result.
        let mut small = CostTracker::new();
        index_intersection(
            &cat,
            &params,
            &mut small,
            "t",
            &[
                IndexRange::between("x", Value::Int(0), Value::Int(49)),
                IndexRange::eq("y", Value::Int(7)),
            ],
            None,
        );
        // Larger result, same marginal index work for y.
        let mut large = CostTracker::new();
        index_intersection(
            &cat,
            &params,
            &mut large,
            "t",
            &[
                IndexRange::between("x", Value::Int(0), Value::Int(999)),
                IndexRange::eq("y", Value::Int(7)),
            ],
            None,
        );
        assert!(large.random_ios > small.random_ios);
    }

    #[test]
    fn empty_intersection_short_circuits() {
        let cat = catalog();
        let params = CostParams::default();
        let mut tracker = CostTracker::new();
        let batch = index_intersection(
            &cat,
            &params,
            &mut tracker,
            "t",
            &[
                IndexRange::between("x", Value::Int(0), Value::Int(9)),
                IndexRange::eq("y", Value::Int(7)),
                IndexRange::between("x", Value::Int(500), Value::Int(599)),
            ],
            None,
        );
        assert_eq!(batch.len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least two ranges")]
    fn intersection_needs_two_ranges() {
        let cat = catalog();
        let params = CostParams::default();
        let mut tracker = CostTracker::new();
        index_intersection(
            &cat,
            &params,
            &mut tracker,
            "t",
            &[IndexRange::eq("y", Value::Int(1))],
            None,
        );
    }

    #[test]
    fn intersect_sorted_basics() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1, 2]), Vec::<Rid>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[3, 4]), Vec::<Rid>::new());
        assert_eq!(intersect_sorted(&[1, 2, 3], &[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn parallel_variants_are_bit_identical_to_serial() {
        let cat = catalog();
        let params = CostParams::default();
        let pred = Expr::col("y").eq(Expr::lit(3i64));
        let mut ts = CostTracker::new();
        let serial = seq_scan(&cat, &params, &mut ts, "t", Some(&pred));
        for threads in [1, 2, 8] {
            let opts = ExecOptions::with_threads(threads).with_morsel_size(64);
            let mut tp = CostTracker::new();
            let par = seq_scan_par(&cat, &params, &mut tp, "t", Some(&pred), &opts).unwrap();
            assert_eq!(par.rows, serial.rows, "threads={threads}");
            assert_eq!(tp, ts, "threads={threads}");
        }

        let range = IndexRange::between("x", Value::Int(100), Value::Int(499));
        let residual = Expr::col("y").eq(Expr::lit(7i64));
        let mut ts = CostTracker::new();
        let serial = index_seek(&cat, &params, &mut ts, "t", &range, Some(&residual));
        let mut tp = CostTracker::new();
        let opts = ExecOptions::with_threads(4).with_morsel_size(10);
        let par =
            index_seek_par(&cat, &params, &mut tp, "t", &range, Some(&residual), &opts).unwrap();
        assert_eq!(par.rows, serial.rows);
        assert_eq!(tp, ts);

        let ranges = vec![
            IndexRange::between("x", Value::Int(0), Value::Int(499)),
            IndexRange::eq("y", Value::Int(7)),
        ];
        let mut ts = CostTracker::new();
        let serial = index_intersection(&cat, &params, &mut ts, "t", &ranges, None);
        let mut tp = CostTracker::new();
        let par =
            index_intersection_par(&cat, &params, &mut tp, "t", &ranges, None, &opts).unwrap();
        assert_eq!(par.rows, serial.rows);
        assert_eq!(tp, ts);
    }

    #[test]
    fn columnar_scan_is_bit_identical_to_row_scan() {
        let cat = catalog();
        let params = CostParams::default();
        let preds: Vec<Option<Expr>> = vec![
            None,
            Some(Expr::col("y").eq(Expr::lit(3i64))),
            Some(Expr::col("x").between(Expr::lit(100i64), Expr::lit(299i64))),
            Some(Expr::col("x").lt(Expr::lit(0i64))), // none selected
        ];
        for pred in &preds {
            let mut ts = CostTracker::new();
            let serial = seq_scan(&cat, &params, &mut ts, "t", pred.as_ref());
            let mut tc = CostTracker::new();
            let columnar = seq_scan_columnar(&cat, &params, &mut tc, "t", pred.as_ref());
            assert_eq!(columnar.rows, serial.rows, "pred={pred:?}");
            assert_eq!(tc, ts, "pred={pred:?}");
            for threads in [1, 2, 8] {
                let opts = ExecOptions::with_threads(threads).with_morsel_size(64);
                let mut tp = CostTracker::new();
                let par = seq_scan_columnar_par(&cat, &params, &mut tp, "t", pred.as_ref(), &opts)
                    .unwrap();
                assert_eq!(par.rows, serial.rows, "pred={pred:?} threads={threads}");
                assert_eq!(tp, ts, "pred={pred:?} threads={threads}");
            }
        }
    }

    #[test]
    fn fetch_coalesces_same_page_rids() {
        let cat = catalog();
        let params = CostParams::default();
        let t = cat.table("t").unwrap();
        // Rows are 32 bytes here, so a page holds 256 of them: 100
        // adjacent RIDs sit on one page, while page-stride RIDs each pay a
        // random I/O.
        let rows_per_page = params.page_bytes / t.row_width_bytes();
        assert_eq!(rows_per_page, 256);
        let mut dense = CostTracker::new();
        fetch_rows(t, &params, &mut dense, (0..100).collect());
        assert_eq!(dense.random_ios, 1);
        let mut sparse = CostTracker::new();
        fetch_rows(
            t,
            &params,
            &mut sparse,
            (0..1000).step_by(rows_per_page).collect(),
        );
        assert_eq!(sparse.random_ios, 4);
        // Duplicate RIDs are fetched once.
        let mut dup = CostTracker::new();
        let rows = fetch_rows(t, &params, &mut dup, vec![5, 5, 5]);
        assert_eq!(rows.len(), 1);
    }
}
