//! In-memory columnar storage substrate with a simulated I/O cost model.
//!
//! The paper's experiments ran against Microsoft SQL Server; this crate is
//! the open substitute: typed columnar tables, clustered and nonclustered
//! indexes, a catalog carrying the foreign-key graph (needed both by the
//! optimizer's join enumeration and by join-synopsis construction), and a
//! transparent cost model that charges sequential page reads, random I/Os,
//! and per-tuple CPU work.  Plan "execution time" throughout the workspace
//! is the simulated cost in seconds under [`CostParams`]; the default
//! constants are calibrated so that the two access paths of the paper's
//! running example reproduce its analytical cost model (§5.1: a sequential
//! scan of a 6M-row table costs ≈35 s, an index-intersection fetch costs
//! ≈3.5 ms per qualifying row).

#![warn(missing_docs)]

pub mod catalog;
pub mod column;
pub mod cost;
pub mod error;
pub mod index;
pub mod partition;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::{Catalog, ForeignKey, TableId};
pub use column::{ColumnRef, ColumnVec, NullMask};
pub use cost::{CostParams, CostTracker};
pub use error::StorageError;
pub use index::{SecondaryIndex, UniqueIndex};
pub use partition::{partition_hash, PartitionSpec, PartitionedTableBuilder, Partitioning};
pub use schema::{ColumnMeta, Schema};
pub use table::{Rid, Table, TableBuilder};
pub use value::{civil_from_days, days_from_civil, parse_date, DataType, Value};
