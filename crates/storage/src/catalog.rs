//! The catalog: tables, foreign keys, and indexes.
//!
//! Foreign-key metadata is load-bearing in this system: join-synopsis
//! construction (paper §3.2) walks the FK graph recursively, and the
//! optimizer only enumerates FK joins (the query model the paper assumes).
//! The catalog therefore validates FKs at registration time and exposes the
//! graph for traversal, asserting acyclicity as the paper does.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::StorageError;
use crate::index::{SecondaryIndex, UniqueIndex};
use crate::partition::Partitioning;
use crate::table::Table;
use crate::value::Value;

/// Opaque identifier of a registered table (its registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

/// A foreign-key edge: `from_table.from_column` references the unique key
/// `to_table.to_column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: String,
    /// Referencing column.
    pub from_column: String,
    /// Referenced table.
    pub to_table: String,
    /// Referenced (unique) column.
    pub to_column: String,
}

/// In-memory catalog of tables, indexes, and FK edges.
///
/// Cloning is shallow: tables and indexes are shared behind `Arc`s.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: Vec<Arc<Table>>,
    by_name: HashMap<String, TableId>,
    foreign_keys: Vec<ForeignKey>,
    secondary: HashMap<(String, String), Arc<SecondaryIndex>>,
    unique: HashMap<(String, String), Arc<UniqueIndex>>,
    partitions: HashMap<String, Arc<Partitioning>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table.
    pub fn add_table(&mut self, table: Table) -> Result<TableId, StorageError> {
        if self.by_name.contains_key(table.name()) {
            return Err(StorageError::DuplicateTable(table.name().to_string()));
        }
        let id = TableId(self.tables.len());
        self.by_name.insert(table.name().to_string(), id);
        self.tables.push(Arc::new(table));
        Ok(id)
    }

    /// Registers a partitioned table: the canonical concatenated [`Table`]
    /// (typically from
    /// [`PartitionedTableBuilder::finish`](crate::partition::PartitionedTableBuilder::finish))
    /// together with its partition layout.  The table behaves exactly like
    /// an unpartitioned one through the read API; the layout is extra
    /// metadata consumed by the executor, optimizer, and statistics
    /// layers.
    pub fn add_partitioned_table(
        &mut self,
        table: Table,
        partitioning: Partitioning,
    ) -> Result<TableId, StorageError> {
        if table
            .schema()
            .index_of(partitioning.spec().column())
            .is_none()
        {
            return Err(StorageError::UnknownColumn {
                table: table.name().to_string(),
                column: partitioning.spec().column().to_string(),
            });
        }
        let covered = partitioning.spans().last().map_or(0, |s| s.end);
        if covered != table.num_rows() {
            return Err(StorageError::SchemaMismatch(format!(
                "partition spans cover {covered} rows but table {:?} has {}",
                table.name(),
                table.num_rows()
            )));
        }
        let name = table.name().to_string();
        let id = self.add_table(table)?;
        self.partitions.insert(name, Arc::new(partitioning));
        Ok(id)
    }

    /// The partition layout of a table, or `None` for unpartitioned
    /// tables.
    pub fn partitioning(&self, name: &str) -> Option<&Arc<Partitioning>> {
        self.partitions.get(name)
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Result<&Arc<Table>, StorageError> {
        self.by_name
            .get(name)
            .map(|id| &self.tables[id.0])
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Looks up a table by id.
    ///
    /// # Panics
    ///
    /// Panics when the id is stale (not produced by this catalog).
    pub fn table_by_id(&self, id: TableId) -> &Arc<Table> {
        &self.tables[id.0]
    }

    /// The id for a table name.
    pub fn table_id(&self, name: &str) -> Result<TableId, StorageError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// All registered tables in registration order.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<Table>> {
        self.tables.iter()
    }

    /// Declares a foreign key and builds the unique index on the referenced
    /// side if it does not already exist.
    ///
    /// Returns an error when either endpoint is missing or when the edge
    /// would create a cycle in the FK graph (the paper assumes acyclic join
    /// graphs; synopsis construction would not terminate otherwise).
    pub fn add_foreign_key(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
    ) -> Result<(), StorageError> {
        let from = self.table(from_table)?.clone();
        if from.schema().index_of(from_column).is_none() {
            return Err(StorageError::UnknownColumn {
                table: from_table.to_string(),
                column: from_column.to_string(),
            });
        }
        let to = self.table(to_table)?.clone();
        if to.schema().index_of(to_column).is_none() {
            return Err(StorageError::UnknownColumn {
                table: to_table.to_string(),
                column: to_column.to_string(),
            });
        }
        if self.reaches(to_table, from_table) {
            return Err(StorageError::InvalidForeignKey(format!(
                "edge {from_table} -> {to_table} would create an FK cycle"
            )));
        }
        self.ensure_unique_index(to_table, to_column)?;
        self.foreign_keys.push(ForeignKey {
            from_table: from_table.to_string(),
            from_column: from_column.to_string(),
            to_table: to_table.to_string(),
            to_column: to_column.to_string(),
        });
        Ok(())
    }

    /// True when `from` can reach `to` by following FK edges.
    fn reaches(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        self.foreign_keys
            .iter()
            .filter(|fk| fk.from_table == from)
            .any(|fk| self.reaches(&fk.to_table, to))
    }

    /// All FK edges.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// FK edges leaving the given table.
    pub fn foreign_keys_from<'a>(&'a self, table: &'a str) -> impl Iterator<Item = &'a ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(move |fk| fk.from_table == table)
    }

    /// FK edges entering the given table.
    pub fn foreign_keys_to<'a>(&'a self, table: &'a str) -> impl Iterator<Item = &'a ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(move |fk| fk.to_table == table)
    }

    /// Builds (or returns the cached) nonclustered index on a column.
    pub fn ensure_secondary_index(
        &mut self,
        table: &str,
        column: &str,
    ) -> Result<Arc<SecondaryIndex>, StorageError> {
        let key = (table.to_string(), column.to_string());
        if let Some(idx) = self.secondary.get(&key) {
            return Ok(Arc::clone(idx));
        }
        let t = self.table(table)?.clone();
        if t.schema().index_of(column).is_none() {
            return Err(StorageError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            });
        }
        let idx = Arc::new(SecondaryIndex::build(&t, column));
        self.secondary.insert(key, Arc::clone(&idx));
        Ok(idx)
    }

    /// The nonclustered index on a column, if one has been built.
    pub fn secondary_index(&self, table: &str, column: &str) -> Option<&Arc<SecondaryIndex>> {
        self.secondary.get(&(table.to_string(), column.to_string()))
    }

    /// Builds (or returns the cached) unique index on a key column.
    pub fn ensure_unique_index(
        &mut self,
        table: &str,
        column: &str,
    ) -> Result<Arc<UniqueIndex>, StorageError> {
        let key = (table.to_string(), column.to_string());
        if let Some(idx) = self.unique.get(&key) {
            return Ok(Arc::clone(idx));
        }
        let t = self.table(table)?.clone();
        if t.schema().index_of(column).is_none() {
            return Err(StorageError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            });
        }
        let idx = Arc::new(UniqueIndex::build(&t, column));
        self.unique.insert(key, Arc::clone(&idx));
        Ok(idx)
    }

    /// The unique index on a column, if one has been built.
    pub fn unique_index(&self, table: &str, column: &str) -> Option<&Arc<UniqueIndex>> {
        self.unique.get(&(table.to_string(), column.to_string()))
    }

    /// Appends a batch of rows to a registered table, returning each
    /// row's partition (all `0` for unpartitioned tables) in input
    /// order — the streaming-statistics layer feeds those assignments
    /// to its per-partition sketches.
    ///
    /// Tables are immutable, so this replaces the table's `Arc` with an
    /// extended successor (other `Catalog` clones sharing the old `Arc`
    /// keep seeing the pre-insert snapshot).  For partitioned tables
    /// the canonical concatenation is rebuilt so partitions stay
    /// contiguous RID spans and per-partition min/max widen to cover
    /// the new keys.  Cached secondary/unique indexes on the table are
    /// rebuilt eagerly — dropping them instead would silently change
    /// access-path selection relative to a one-shot-built catalog.
    ///
    /// Ingest trusts the caller on *referential* integrity (FK edges
    /// and key uniqueness are validated at registration, not per
    /// batch); rows themselves are validated for arity/type/NULL and
    /// the batch is rejected atomically on the first bad row.
    pub fn append_rows(
        &mut self,
        name: &str,
        rows: &[Vec<Value>],
    ) -> Result<Vec<usize>, StorageError> {
        let id = self.table_id(name)?;
        let table = &self.tables[id.0];
        let (new_table, assignments) = match self.partitions.get(name) {
            Some(layout) => {
                let (t, new_layout, assignments) = layout.append(table, rows)?;
                self.partitions
                    .insert(name.to_string(), Arc::new(new_layout));
                (t, assignments)
            }
            None => (table.appended(rows)?, vec![0; rows.len()]),
        };
        self.tables[id.0] = Arc::new(new_table);
        let table = Arc::clone(&self.tables[id.0]);
        for (key, idx) in self.secondary.iter_mut() {
            if key.0 == name {
                *idx = Arc::new(SecondaryIndex::build(&table, &key.1));
            }
        }
        for (key, idx) in self.unique.iter_mut() {
            if key.0 == name {
                *idx = Arc::new(UniqueIndex::build(&table, &key.1));
            }
        }
        Ok(assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn make_table(name: &str, pk_values: &[i64], fk_values: Option<&[i64]>) -> Table {
        let mut cols = vec![("pk", DataType::Int)];
        if fk_values.is_some() {
            cols.push(("fk", DataType::Int));
        }
        let schema = Schema::from_pairs(&cols);
        let mut b = TableBuilder::new(name, schema, pk_values.len());
        for (i, &pk) in pk_values.iter().enumerate() {
            let mut row = vec![Value::Int(pk)];
            if let Some(fks) = fk_values {
                row.push(Value::Int(fks[i]));
            }
            b.push_row(&row);
        }
        b.finish()
    }

    fn catalog_with_fk() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(make_table("parent", &[1, 2, 3], None))
            .unwrap();
        cat.add_table(make_table("child", &[10, 11, 12, 13], Some(&[1, 1, 2, 3])))
            .unwrap();
        cat.add_foreign_key("child", "fk", "parent", "pk").unwrap();
        cat
    }

    #[test]
    fn table_registration_and_lookup() {
        let cat = catalog_with_fk();
        assert_eq!(cat.table("parent").unwrap().num_rows(), 3);
        assert_eq!(cat.table("child").unwrap().num_rows(), 4);
        assert!(matches!(
            cat.table("nope"),
            Err(StorageError::UnknownTable(_))
        ));
        let id = cat.table_id("child").unwrap();
        assert_eq!(cat.table_by_id(id).name(), "child");
        assert_eq!(cat.tables().count(), 2);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.add_table(make_table("t", &[1], None)).unwrap();
        assert!(matches!(
            cat.add_table(make_table("t", &[2], None)),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn fk_registration_builds_pk_index() {
        let cat = catalog_with_fk();
        let idx = cat.unique_index("parent", "pk").expect("pk index built");
        assert_eq!(idx.get(2), Some(1));
        assert_eq!(cat.foreign_keys().len(), 1);
        assert_eq!(cat.foreign_keys_from("child").count(), 1);
        assert_eq!(cat.foreign_keys_to("parent").count(), 1);
        assert_eq!(cat.foreign_keys_from("parent").count(), 0);
    }

    #[test]
    fn fk_validation_errors() {
        let mut cat = Catalog::new();
        cat.add_table(make_table("a", &[1], Some(&[1]))).unwrap();
        assert!(cat.add_foreign_key("a", "fk", "missing", "pk").is_err());
        assert!(cat.add_foreign_key("a", "missing", "a", "pk").is_err());
    }

    #[test]
    fn fk_cycle_rejected() {
        let mut cat = Catalog::new();
        cat.add_table(make_table("a", &[1], Some(&[1]))).unwrap();
        cat.add_table(make_table("b", &[1], Some(&[1]))).unwrap();
        cat.add_foreign_key("a", "fk", "b", "pk").unwrap();
        let err = cat.add_foreign_key("b", "fk", "a", "pk");
        assert!(matches!(err, Err(StorageError::InvalidForeignKey(_))));
        // Self-loop is also a cycle.
        let mut cat2 = Catalog::new();
        cat2.add_table(make_table("a", &[1], Some(&[1]))).unwrap();
        assert!(cat2.add_foreign_key("a", "fk", "a", "pk").is_err());
    }

    #[test]
    fn partitioned_table_registration() {
        use crate::partition::{PartitionSpec, PartitionedTableBuilder};
        let mut cat = Catalog::new();
        let mut b = PartitionedTableBuilder::new(
            "pt",
            Schema::from_pairs(&[("pk", DataType::Int)]),
            PartitionSpec::Range {
                column: "pk".into(),
                bounds: vec![Value::Int(2)],
            },
        );
        for k in [0i64, 1, 2, 3] {
            b.push_row(&[Value::Int(k)]);
        }
        let (t, p) = b.finish();
        cat.add_partitioned_table(t, p).unwrap();
        // Reads work through the plain table API...
        assert_eq!(cat.table("pt").unwrap().num_rows(), 4);
        // ...and the layout is visible as metadata.
        let layout = cat.partitioning("pt").expect("layout registered");
        assert_eq!(layout.spans(), &[0..2, 2..4]);
        assert!(cat.partitioning("parent").is_none());
    }

    #[test]
    // A one-span layout is the point of the test, not a `vec![start..end]` typo.
    #[allow(clippy::single_range_in_vec_init)]
    fn partitioned_registration_rejects_bad_spans() {
        use crate::partition::{PartitionSpec, Partitioning};
        let mut cat = Catalog::new();
        let spec = PartitionSpec::Hash {
            column: "pk".into(),
            partitions: 1,
        };
        // Span covers 2 rows, table has 3.
        let layout = Partitioning::new(spec, vec![0..2], vec![None]);
        let err = cat.add_partitioned_table(make_table("t", &[1, 2, 3], None), layout);
        assert!(matches!(err, Err(StorageError::SchemaMismatch(_))));
    }

    #[test]
    fn append_rows_replaces_table_and_rebuilds_indexes() {
        let mut cat = catalog_with_fk();
        let before = Arc::clone(cat.table("child").unwrap());
        cat.ensure_secondary_index("child", "fk").unwrap();
        let assignments = cat
            .append_rows("child", &[vec![Value::Int(14), Value::Int(2)]])
            .unwrap();
        assert_eq!(
            assignments,
            vec![0],
            "unpartitioned rows land in partition 0"
        );
        assert_eq!(cat.table("child").unwrap().num_rows(), 5);
        assert_eq!(before.num_rows(), 4, "old snapshot Arc still intact");
        // The cached secondary index was rebuilt over the new table.
        let idx = cat.secondary_index("child", "fk").unwrap();
        assert_eq!(idx.num_entries(), 5);
        // The parent pk unique index (built by add_foreign_key) is
        // untouched by an insert into child.
        assert!(cat.unique_index("parent", "pk").is_some());
        // Bad batches are typed errors, not panics, and change nothing.
        assert!(matches!(
            cat.append_rows("child", &[vec![Value::Int(1)]]),
            Err(StorageError::SchemaMismatch(_))
        ));
        assert!(matches!(
            cat.append_rows("nope", &[]),
            Err(StorageError::UnknownTable(_))
        ));
        assert_eq!(cat.table("child").unwrap().num_rows(), 5);
    }

    #[test]
    fn append_rows_routes_through_partitioning() {
        use crate::partition::{PartitionSpec, PartitionedTableBuilder};
        let mut cat = Catalog::new();
        let mut b = PartitionedTableBuilder::new(
            "pt",
            Schema::from_pairs(&[("pk", DataType::Int)]),
            PartitionSpec::Range {
                column: "pk".into(),
                bounds: vec![Value::Int(2)],
            },
        );
        for k in [0i64, 1, 2, 3] {
            b.push_row(&[Value::Int(k)]);
        }
        let (t, p) = b.finish();
        cat.add_partitioned_table(t, p).unwrap();
        let assignments = cat
            .append_rows("pt", &[vec![Value::Int(1)], vec![Value::Int(9)]])
            .unwrap();
        assert_eq!(assignments, vec![0, 1]);
        assert_eq!(cat.table("pt").unwrap().num_rows(), 6);
        let layout = cat.partitioning("pt").unwrap();
        assert_eq!(layout.spans(), &[0..3, 3..6]);
        assert_eq!(
            layout.min_max(1),
            Some(&(Value::Int(2), Value::Int(9))),
            "max widened by the appended key"
        );
    }

    #[test]
    fn secondary_index_caching() {
        let mut cat = catalog_with_fk();
        assert!(cat.secondary_index("child", "fk").is_none());
        let a = cat.ensure_secondary_index("child", "fk").unwrap();
        let b = cat.ensure_secondary_index("child", "fk").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cat.secondary_index("child", "fk").is_some());
        assert!(cat.ensure_secondary_index("child", "zzz").is_err());
    }
}
