//! The simulated I/O + CPU cost model.
//!
//! Every operator in `rqo-exec` charges its work to a [`CostTracker`], and
//! "execution time" is the tracked cost converted to seconds under
//! [`CostParams`].  The default parameters are calibrated against the
//! analytical model of the paper's §5.1: with a ~48-byte row, a sequential
//! scan of a 6,000,000-row table costs ≈35 s (the paper's `f₁ = 35`), and
//! fetching one scattered row through a nonclustered index costs one random
//! I/O at 3.5 ms (the paper's `v₂ = 3.5 × 10⁻³` per qualifying tuple).  The
//! crossover selectivity between those two access paths is then
//! `≈ 35 / (6e6 · 0.0035) ≈ 0.17%` — scale-invariant, so experiments run at
//! reduced scale factors preserve the paper's crossover structure.

/// Tunable constants of the simulated hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Disk page size in bytes.
    pub page_bytes: usize,
    /// Milliseconds to read one page sequentially.
    pub seq_page_ms: f64,
    /// Milliseconds for one random I/O (seek + read).
    pub random_io_ms: f64,
    /// Milliseconds of CPU per generic tuple operation (predicate
    /// evaluation, projection, comparison).
    pub cpu_op_ms: f64,
    /// Milliseconds to insert one tuple into a hash table.
    pub hash_build_ms: f64,
    /// Milliseconds to probe a hash table once.
    pub hash_probe_ms: f64,
    /// Bytes per nonclustered-index leaf entry (key + RID).
    pub index_entry_bytes: usize,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            page_bytes: 8192,
            seq_page_ms: 1.0,
            random_io_ms: 3.5,
            cpu_op_ms: 0.000_1,
            hash_build_ms: 0.000_5,
            hash_probe_ms: 0.000_2,
            index_entry_bytes: 16,
        }
    }
}

impl CostParams {
    /// Parameters resembling a low-latency NVMe device behind an OS page
    /// cache: ~4 GB/s sequential (≈2 µs per 8 KB page) and ~5 µs per
    /// random page access, so the *per-row* gap between scanning and
    /// point-fetching collapses from the hard disk's ~600× to ~50×, and a
    /// scan's cost is dominated by per-tuple CPU rather than I/O.
    ///
    /// This preset is not in the paper — it is the forward-looking
    /// ablation its model invites: the robustness problem is driven by how
    /// steep the risky plan's cost line is relative to the stable one's,
    /// so on storage where random reads approach CPU cost the crossover
    /// moves to percent-level selectivities, where (per §5.2.3 / Figure 8)
    /// estimation is easy and the threshold barely matters.
    pub fn nvme_ssd() -> Self {
        Self {
            page_bytes: 8192,
            seq_page_ms: 0.002,
            random_io_ms: 0.005,
            cpu_op_ms: 0.000_1,
            hash_build_ms: 0.000_5,
            hash_probe_ms: 0.000_2,
            index_entry_bytes: 16,
        }
    }

    /// Number of data pages occupied by `num_rows` rows of the given width.
    pub fn data_pages(&self, num_rows: usize, row_width_bytes: usize) -> u64 {
        let total = num_rows as u64 * row_width_bytes as u64;
        total.div_ceil(self.page_bytes as u64).max(1)
    }

    /// Number of index leaf pages holding `num_entries` entries.
    pub fn index_leaf_pages(&self, num_entries: usize) -> u64 {
        let per_page = (self.page_bytes / self.index_entry_bytes).max(1) as u64;
        (num_entries as u64).div_ceil(per_page).max(1)
    }
}

/// Accumulated simulated work, by kind.
///
/// Keeping raw counters (rather than a single running total of
/// milliseconds) lets experiments report I/O breakdowns and lets one
/// execution be re-priced under different [`CostParams`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostTracker {
    /// Pages read sequentially.
    pub seq_pages: u64,
    /// Random I/O operations.
    pub random_ios: u64,
    /// Generic per-tuple CPU operations.
    pub cpu_ops: u64,
    /// Hash-table inserts.
    pub hash_builds: u64,
    /// Hash-table probes.
    pub hash_probes: u64,
}

impl CostTracker {
    /// A fresh, zeroed tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` sequential page reads.
    pub fn charge_seq_pages(&mut self, n: u64) {
        self.seq_pages += n;
    }

    /// Charges `n` random I/Os.
    pub fn charge_random_ios(&mut self, n: u64) {
        self.random_ios += n;
    }

    /// Charges `n` generic CPU tuple operations.
    pub fn charge_cpu_ops(&mut self, n: u64) {
        self.cpu_ops += n;
    }

    /// Charges `n` hash-table inserts.
    pub fn charge_hash_builds(&mut self, n: u64) {
        self.hash_builds += n;
    }

    /// Charges `n` hash-table probes.
    pub fn charge_hash_probes(&mut self, n: u64) {
        self.hash_probes += n;
    }

    /// Adds another tracker's counters into this one.
    pub fn absorb(&mut self, other: &CostTracker) {
        self.seq_pages += other.seq_pages;
        self.random_ios += other.random_ios;
        self.cpu_ops += other.cpu_ops;
        self.hash_builds += other.hash_builds;
        self.hash_probes += other.hash_probes;
    }

    /// Sums any number of trackers (e.g. per-worker trackers at a
    /// parallel barrier).  Counter addition is commutative, so the merged
    /// totals do not depend on the order workers finished in.
    pub fn merged<'a>(trackers: impl IntoIterator<Item = &'a CostTracker>) -> CostTracker {
        let mut total = CostTracker::new();
        for t in trackers {
            total.absorb(t);
        }
        total
    }

    /// Counter-wise difference `self - since`, for attributing the work
    /// charged between two snapshots of the same tracker (e.g. the cost of
    /// one operator's subtree in `EXPLAIN ANALYZE`).  Counters only ever
    /// grow, but the subtraction saturates so a stale snapshot cannot
    /// panic.
    pub fn diff(&self, since: &CostTracker) -> CostTracker {
        CostTracker {
            seq_pages: self.seq_pages.saturating_sub(since.seq_pages),
            random_ios: self.random_ios.saturating_sub(since.random_ios),
            cpu_ops: self.cpu_ops.saturating_sub(since.cpu_ops),
            hash_builds: self.hash_builds.saturating_sub(since.hash_builds),
            hash_probes: self.hash_probes.saturating_sub(since.hash_probes),
        }
    }

    /// Total simulated milliseconds under the given parameters.
    pub fn millis(&self, p: &CostParams) -> f64 {
        self.seq_pages as f64 * p.seq_page_ms
            + self.random_ios as f64 * p.random_io_ms
            + self.cpu_ops as f64 * p.cpu_op_ms
            + self.hash_builds as f64 * p.hash_build_ms
            + self.hash_probes as f64 * p.hash_probe_ms
    }

    /// Total simulated seconds under the given parameters.
    pub fn seconds(&self, p: &CostParams) -> f64 {
        self.millis(p) / 1000.0
    }
}

impl std::ops::AddAssign for CostTracker {
    fn add_assign(&mut self, rhs: Self) {
        self.absorb(&rhs);
    }
}

impl std::ops::Add for CostTracker {
    type Output = CostTracker;

    fn add(mut self, rhs: Self) -> Self {
        self.absorb(&rhs);
        self
    }
}

impl std::iter::Sum for CostTracker {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(CostTracker::new(), |acc, t| acc + t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_calibration_matches_paper_constants() {
        // A 6M-row table with 48-byte rows scanned sequentially should cost
        // roughly the paper's f1 = 35 seconds.
        let p = CostParams::default();
        let pages = p.data_pages(6_000_000, 48);
        let mut t = CostTracker::new();
        t.charge_seq_pages(pages);
        t.charge_cpu_ops(6_000_000);
        let secs = t.seconds(&p);
        assert!(
            (secs - 35.0).abs() < 2.0,
            "sequential-scan calibration drifted: {secs} s"
        );

        // One scattered RID fetch = one random I/O = the paper's v2.
        let mut f = CostTracker::new();
        f.charge_random_ios(1);
        assert!((f.seconds(&p) - 0.0035).abs() < 1e-12);

        // Crossover selectivity ≈ f1 / (N * v2) ≈ 0.17%, the paper's ~0.14%.
        let crossover = secs / (6_000_000.0 * 0.0035);
        assert!(
            (0.001..0.0025).contains(&crossover),
            "crossover {crossover} out of the paper's ballpark"
        );
    }

    #[test]
    fn page_math() {
        let p = CostParams::default();
        assert_eq!(p.data_pages(0, 48), 1);
        assert_eq!(p.data_pages(1, 48), 1);
        assert_eq!(p.data_pages(171, 48), 2); // 8208 bytes
        assert_eq!(p.index_leaf_pages(0), 1);
        assert_eq!(p.index_leaf_pages(512), 1);
        assert_eq!(p.index_leaf_pages(513), 2);
    }

    #[test]
    fn tracker_accumulates_and_absorbs() {
        let p = CostParams::default();
        let mut a = CostTracker::new();
        a.charge_seq_pages(10);
        a.charge_cpu_ops(1000);
        let mut b = CostTracker::new();
        b.charge_random_ios(2);
        b.charge_hash_builds(5);
        b.charge_hash_probes(7);
        a.absorb(&b);
        assert_eq!(a.seq_pages, 10);
        assert_eq!(a.random_ios, 2);
        assert_eq!(a.hash_builds, 5);
        assert_eq!(a.hash_probes, 7);
        let ms = 10.0 * 1.0 + 2.0 * 3.5 + 1000.0 * 0.0001 + 5.0 * 0.0005 + 7.0 * 0.0002;
        assert!((a.millis(&p) - ms).abs() < 1e-12);
        assert!((a.seconds(&p) - ms / 1000.0).abs() < 1e-15);
    }

    #[test]
    fn ssd_parameters_move_the_crossover_out() {
        // On 2005 disks the scan/fetch crossover sits below 0.25%
        // selectivity; on NVMe-like parameters it moves past 2% — an
        // order of magnitude of breathing room for the estimator.
        let crossover = |p: &CostParams| {
            let n_rows = 6_000_000u64;
            let pages = p.data_pages(n_rows as usize, 48);
            let mut scan = CostTracker::new();
            scan.charge_seq_pages(pages);
            scan.charge_cpu_ops(n_rows);
            let scan_ms = scan.millis(p);
            // Fetch cost is ~1 random I/O per row at low selectivity.
            scan_ms / (n_rows as f64 * p.random_io_ms)
        };
        let disk = crossover(&CostParams::default());
        let ssd = crossover(&CostParams::nvme_ssd());
        assert!(disk < 0.0025, "disk crossover {disk}");
        assert!(ssd > 0.015, "ssd crossover {ssd}");
        assert!(ssd > 5.0 * disk);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |s, r, c, hb, hp| {
            let mut t = CostTracker::new();
            t.charge_seq_pages(s);
            t.charge_random_ios(r);
            t.charge_cpu_ops(c);
            t.charge_hash_builds(hb);
            t.charge_hash_probes(hp);
            t
        };
        let parts = [mk(1, 2, 3, 4, 5), mk(10, 0, 7, 0, 1), mk(0, 9, 0, 2, 0)];
        let forward = CostTracker::merged(&parts);
        let backward = CostTracker::merged(parts.iter().rev());
        assert_eq!(forward, backward);
        assert_eq!(forward, parts.iter().copied().sum());
        assert_eq!(forward, parts[0] + parts[1] + parts[2]);
        let mut acc = parts[0];
        acc += parts[1];
        acc += parts[2];
        assert_eq!(acc, forward);
        assert_eq!(forward.seq_pages, 11);
        assert_eq!(forward.random_ios, 11);
        assert_eq!(forward.cpu_ops, 10);
        assert_eq!(forward.hash_builds, 6);
        assert_eq!(forward.hash_probes, 6);
    }

    #[test]
    fn diff_recovers_work_between_snapshots() {
        let mut t = CostTracker::new();
        t.charge_seq_pages(3);
        t.charge_cpu_ops(10);
        let snapshot = t;
        t.charge_seq_pages(4);
        t.charge_random_ios(2);
        t.charge_hash_probes(6);
        let delta = t.diff(&snapshot);
        assert_eq!(delta.seq_pages, 4);
        assert_eq!(delta.random_ios, 2);
        assert_eq!(delta.cpu_ops, 0);
        assert_eq!(delta.hash_probes, 6);
        // Snapshot + delta reassembles the final totals.
        assert_eq!(snapshot + delta, t);
        // A stale (larger) snapshot saturates to zero instead of panicking.
        assert_eq!(snapshot.diff(&t), CostTracker::new());
    }

    #[test]
    fn repriceable_under_different_params() {
        let mut t = CostTracker::new();
        t.charge_random_ios(100);
        let slow = CostParams {
            random_io_ms: 10.0,
            ..CostParams::default()
        };
        let fast = CostParams {
            random_io_ms: 0.1,
            ..CostParams::default()
        };
        assert!(t.millis(&slow) > 99.0 * t.millis(&fast));
    }
}
