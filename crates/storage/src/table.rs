//! Columnar tables.
//!
//! Tables are append-only and columnar: each column is a typed vector, and a
//! row identifier ([`Rid`]) is simply the row's ordinal position.  The
//! experiments never store SQL NULLs (the TPC-H-like and star-schema data
//! are fully populated), so stored columns reject `Value::Null`; NULL exists
//! only as an expression-evaluation result.

use std::sync::Arc;

use crate::error::StorageError;
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// Row identifier: ordinal position of the row within its table.
///
/// In the simulated cost model, fetching a row by RID through a nonclustered
/// index costs one random I/O unless the previous fetch touched the same
/// page — exactly the paper's "one random disk read per record" behaviour
/// for scattered qualifying rows.
pub type Rid = u32;

/// Typed column storage.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Dates as days since epoch.
    Date(Vec<i32>),
    /// Dictionary-encoded strings: per-row code indexing into `dict`.
    Str {
        /// Row codes.
        codes: Vec<u32>,
        /// Distinct values; `codes[i]` indexes here.
        dict: Vec<Arc<str>>,
    },
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnData {
    fn with_capacity(dt: DataType, cap: usize) -> Self {
        match dt {
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Date => ColumnData::Date(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str {
                codes: Vec::with_capacity(cap),
                dict: Vec::new(),
            },
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    fn push(&mut self, v: &Value) {
        match (self, v) {
            (ColumnData::Int(col), Value::Int(x)) => col.push(*x),
            (ColumnData::Float(col), Value::Float(x)) => col.push(*x),
            (ColumnData::Float(col), Value::Int(x)) => col.push(*x as f64),
            (ColumnData::Date(col), Value::Date(x)) => col.push(*x),
            (ColumnData::Str { codes, dict }, Value::Str(s)) => {
                // Linear dictionary scan: our generators produce low-
                // cardinality string columns (brands, containers), so this
                // stays cheap; high-cardinality strings would warrant a map.
                let code = match dict.iter().position(|d| d.as_ref() == s.as_ref()) {
                    Some(i) => i as u32,
                    None => {
                        dict.push(Arc::clone(s));
                        (dict.len() - 1) as u32
                    }
                };
                codes.push(code);
            }
            (ColumnData::Bool(col), Value::Bool(x)) => col.push(*x),
            (col, v) => panic!("type mismatch: column {:?} <- value {v:?}", col.type_name()),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            ColumnData::Int(_) => "Int",
            ColumnData::Float(_) => "Float",
            ColumnData::Date(_) => "Date",
            ColumnData::Str { .. } => "Str",
            ColumnData::Bool(_) => "Bool",
        }
    }

    /// Value at a row (cheap: strings are refcount clones).
    fn value(&self, rid: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[rid]),
            ColumnData::Float(v) => Value::Float(v[rid]),
            ColumnData::Date(v) => Value::Date(v[rid]),
            ColumnData::Str { codes, dict } => Value::Str(Arc::clone(&dict[codes[rid] as usize])),
            ColumnData::Bool(v) => Value::Bool(v[rid]),
        }
    }

    /// Zero-copy typed view for vectorized kernels.  Stored columns never
    /// hold NULL, so the view carries no null mask.
    pub fn as_column_ref(&self) -> crate::column::ColumnRef<'_> {
        use crate::column::ColumnRef;
        match self {
            ColumnData::Int(v) => ColumnRef::Int {
                values: v,
                nulls: None,
            },
            ColumnData::Float(v) => ColumnRef::Float {
                values: v,
                nulls: None,
            },
            ColumnData::Date(v) => ColumnRef::Date {
                values: v,
                nulls: None,
            },
            ColumnData::Str { codes, dict } => ColumnRef::Str {
                codes,
                dict,
                nulls: None,
            },
            ColumnData::Bool(v) => ColumnRef::Bool {
                values: v,
                nulls: None,
            },
        }
    }

    /// Bytes per value, used by the page model.
    fn value_width(&self) -> usize {
        match self {
            ColumnData::Int(_) | ColumnData::Float(_) => 8,
            ColumnData::Date(_) => 4,
            ColumnData::Str { .. } => 16, // average payload assumption
            ColumnData::Bool(_) => 1,
        }
    }
}

/// An immutable columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
    num_rows: usize,
}

impl Table {
    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Value at `(rid, column ordinal)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn value(&self, rid: Rid, col: usize) -> Value {
        self.columns[col].value(rid as usize)
    }

    /// Materializes a full row.
    pub fn row(&self, rid: Rid) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(rid as usize)).collect()
    }

    /// Typed access to an integer column.
    ///
    /// # Panics
    ///
    /// Panics when the column is not `Int`.
    pub fn int_column(&self, col: usize) -> &[i64] {
        match &self.columns[col] {
            ColumnData::Int(v) => v,
            c => panic!("column {col} is {} not Int", c.type_name()),
        }
    }

    /// Typed access to a float column.
    ///
    /// # Panics
    ///
    /// Panics when the column is not `Float`.
    pub fn float_column(&self, col: usize) -> &[f64] {
        match &self.columns[col] {
            ColumnData::Float(v) => v,
            c => panic!("column {col} is {} not Float", c.type_name()),
        }
    }

    /// Typed access to a date column.
    ///
    /// # Panics
    ///
    /// Panics when the column is not `Date`.
    pub fn date_column(&self, col: usize) -> &[i32] {
        match &self.columns[col] {
            ColumnData::Date(v) => v,
            c => panic!("column {col} is {} not Date", c.type_name()),
        }
    }

    /// Estimated stored row width in bytes (payload + per-row overhead),
    /// feeding the page-count model.
    pub fn row_width_bytes(&self) -> usize {
        const ROW_OVERHEAD: usize = 16; // header + slot array share
        ROW_OVERHEAD
            + self
                .columns
                .iter()
                .map(ColumnData::value_width)
                .sum::<usize>()
    }

    /// Raw column storage (used by samplers/statistics that want to scan a
    /// column without materializing `Value`s).
    pub fn column_data(&self, col: usize) -> &ColumnData {
        &self.columns[col]
    }

    /// Zero-copy typed view of one column for vectorized kernels.
    pub fn column_ref(&self, col: usize) -> crate::column::ColumnRef<'_> {
        self.columns[col].as_column_ref()
    }

    /// Zero-copy typed views of every column, in schema order.
    pub fn column_refs(&self) -> Vec<crate::column::ColumnRef<'_>> {
        self.columns.iter().map(ColumnData::as_column_ref).collect()
    }

    /// Returns a new table holding this table's rows followed by
    /// `rows`, in order.  The original is untouched — tables are
    /// immutable, so ingest builds a successor and republishes it
    /// (the engine's snapshot semantics).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::SchemaMismatch`] when any row's arity or
    /// value types do not match the schema or a value is NULL; the
    /// batch is rejected atomically (no partial append).
    pub fn appended(&self, rows: &[Vec<Value>]) -> Result<Table, StorageError> {
        for row in rows {
            check_row(&self.schema, row).map_err(StorageError::SchemaMismatch)?;
        }
        let mut columns = self.columns.clone();
        for row in rows {
            for (col, v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }
        Ok(Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns,
            num_rows: self.num_rows + rows.len(),
        })
    }
}

/// Validates one row against a schema: arity, NULL-freedom, and
/// value-vs-column type (with the same `Int`→`Float` coercion storage
/// applies).  Returns a message naming the offending column so the
/// failure is diagnosable at the ingest boundary instead of deep inside
/// a column kernel.
pub(crate) fn check_row(schema: &Schema, row: &[Value]) -> Result<(), String> {
    if row.len() != schema.len() {
        return Err(format!(
            "row arity {} != schema arity {}",
            row.len(),
            schema.len()
        ));
    }
    for (meta, v) in schema.columns().iter().zip(row) {
        if v.is_null() {
            return Err(format!(
                "stored tables do not accept NULL (column {:?})",
                meta.name
            ));
        }
        if !meta.data_type.accepts(v) {
            return Err(format!(
                "type mismatch: column {:?} is {} <- value {v:?}",
                meta.name, meta.data_type
            ));
        }
    }
    Ok(())
}

/// Builder that appends rows and freezes into a [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
}

impl TableBuilder {
    /// Starts a builder with a row-count hint for pre-allocation.
    pub fn new(name: impl Into<String>, schema: Schema, capacity: usize) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| ColumnData::with_capacity(c.data_type, capacity))
            .collect();
        Self {
            name: name.into(),
            schema,
            columns,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the arity or any value type does not match the schema, or
    /// when a value is NULL (stored tables are fully populated).
    pub fn push_row(&mut self, row: &[Value]) {
        // Validate the whole row up front so a bad value is reported
        // against its schema column before any column vector grows —
        // a mid-row panic would otherwise leave the builder with
        // ragged column lengths.
        if let Err(msg) = check_row(&self.schema, row) {
            panic!("{msg}");
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Current number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, ColumnData::len)
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes into an immutable table.
    pub fn finish(self) -> Table {
        let num_rows = self.columns.first().map_or(0, ColumnData::len);
        Table {
            name: self.name,
            schema: self.schema,
            columns: self.columns,
            num_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::parse_date;

    fn sample_table() -> Table {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("price", DataType::Float),
            ("ship", DataType::Date),
            ("brand", DataType::Str),
            ("flag", DataType::Bool),
        ]);
        let mut b = TableBuilder::new("t", schema, 3);
        b.push_row(&[
            Value::Int(1),
            Value::Float(9.5),
            parse_date("1997-07-01"),
            Value::str("B#12"),
            Value::Bool(true),
        ]);
        b.push_row(&[
            Value::Int(2),
            Value::Float(3.25),
            parse_date("1997-08-15"),
            Value::str("B#12"),
            Value::Bool(false),
        ]);
        b.push_row(&[
            Value::Int(3),
            Value::Float(7.0),
            parse_date("1997-09-30"),
            Value::str("B#7"),
            Value::Bool(true),
        ]);
        b.finish()
    }

    #[test]
    fn roundtrip_rows() {
        let t = sample_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(0, 0), Value::Int(1));
        assert_eq!(t.value(1, 1), Value::Float(3.25));
        assert_eq!(t.value(2, 3), Value::str("B#7"));
        assert_eq!(t.row(1).len(), 5);
        assert_eq!(t.row(1)[4], Value::Bool(false));
    }

    #[test]
    fn string_dictionary_is_shared() {
        let t = sample_table();
        match t.column_data(3) {
            ColumnData::Str { codes, dict } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes, &[0, 0, 1]);
            }
            _ => panic!("expected Str column"),
        }
    }

    #[test]
    fn typed_accessors() {
        let t = sample_table();
        assert_eq!(t.int_column(0), &[1, 2, 3]);
        assert_eq!(t.float_column(1), &[9.5, 3.25, 7.0]);
        assert_eq!(t.date_column(2).len(), 3);
    }

    #[test]
    fn int_values_coerce_into_float_columns() {
        let schema = Schema::from_pairs(&[("x", DataType::Float)]);
        let mut b = TableBuilder::new("t", schema, 1);
        b.push_row(&[Value::Int(4)]);
        assert_eq!(b.finish().value(0, 0), Value::Float(4.0));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn rejects_wrong_type() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema, 1);
        b.push_row(&[Value::str("nope")]);
    }

    #[test]
    #[should_panic(expected = "NULL")]
    fn rejects_null() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema, 1);
        b.push_row(&[Value::Null]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let schema = Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema, 1);
        b.push_row(&[Value::Int(1)]);
    }

    #[test]
    fn wrong_type_is_reported_against_its_column() {
        // Regression: a wrong-typed Value used to slip past push_row and
        // only panic deep inside ColumnData::push with no column name.
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("price", DataType::Float)]);
        let mut b = TableBuilder::new("t", schema, 1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.push_row(&[Value::Int(1), Value::str("oops")]);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("type mismatch"), "got {msg:?}");
        assert!(msg.contains("price"), "names the column: {msg:?}");
        // ...and the builder is still rectangular: the bad row touched
        // no column vector.
        assert_eq!(b.len(), 0);
        b.push_row(&[Value::Int(1), Value::Float(2.0)]);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn appended_extends_without_mutating_original() {
        let t = sample_table();
        let t2 = t
            .appended(&[vec![
                Value::Int(4),
                Value::Int(5), // Int coerces into the Float column
                parse_date("1997-10-01"),
                Value::str("B#12"),
                Value::Bool(false),
            ]])
            .unwrap();
        assert_eq!(t.num_rows(), 3, "original untouched");
        assert_eq!(t2.num_rows(), 4);
        assert_eq!(t2.value(3, 0), Value::Int(4));
        assert_eq!(t2.value(3, 1), Value::Float(5.0));
        // Dictionary code reuse: the appended brand shares the dict entry.
        match t2.column_data(3) {
            ColumnData::Str { codes, dict } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes, &[0, 0, 1, 0]);
            }
            _ => panic!("expected Str column"),
        }
        // Old rows are bit-identical.
        for r in 0..3u32 {
            assert_eq!(t.row(r), t2.row(r));
        }
    }

    #[test]
    fn appended_rejects_bad_rows_atomically() {
        let t = sample_table();
        // Wrong arity.
        assert!(matches!(
            t.appended(&[vec![Value::Int(1)]]),
            Err(StorageError::SchemaMismatch(_))
        ));
        // Wrong type in the SECOND row: nothing from the first sticks.
        let good = t.row(0);
        let bad = vec![
            Value::str("not-an-int"),
            Value::Float(0.0),
            parse_date("1997-01-01"),
            Value::str("B#1"),
            Value::Bool(true),
        ];
        let err = t.appended(&[good, bad]).unwrap_err();
        match err {
            StorageError::SchemaMismatch(msg) => {
                assert!(msg.contains("type mismatch"), "{msg}");
                assert!(msg.contains("id"), "names the column: {msg}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(t.num_rows(), 3);
        // NULL rejected with a typed error too.
        let nul = vec![
            Value::Null,
            Value::Float(0.0),
            parse_date("1997-01-01"),
            Value::str("B#1"),
            Value::Bool(true),
        ];
        assert!(matches!(
            t.appended(&[nul]),
            Err(StorageError::SchemaMismatch(m)) if m.contains("NULL")
        ));
    }

    #[test]
    fn row_width_estimate() {
        let t = sample_table();
        // 16 overhead + 8 + 8 + 4 + 16 + 1 = 53
        assert_eq!(t.row_width_bytes(), 53);
    }

    #[test]
    fn empty_table() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let t = TableBuilder::new("t", schema, 0).finish();
        assert_eq!(t.num_rows(), 0);
    }
}
