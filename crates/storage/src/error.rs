//! Error types for the storage layer.

use std::fmt;

/// Errors surfaced by catalog and table operations.
///
/// Programmer errors (type mismatches in already-validated plans, out of
/// range RIDs) panic instead; these variants cover conditions that depend on
/// runtime configuration, such as looking up statistics that were never
/// built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// No table with the given name is registered in the catalog.
    UnknownTable(String),
    /// The table exists but has no column with the given name.
    UnknownColumn {
        /// Table that was searched.
        table: String,
        /// Column that was not found.
        column: String,
    },
    /// A table with this name is already registered.
    DuplicateTable(String),
    /// A row being appended does not match the schema.
    SchemaMismatch(String),
    /// A foreign key references a missing table/column or a non-unique key.
    InvalidForeignKey(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table:?}.{column:?}")
            }
            StorageError::DuplicateTable(t) => write!(f, "table {t:?} already exists"),
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::InvalidForeignKey(msg) => write!(f, "invalid foreign key: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StorageError::UnknownTable("t".into()).to_string(),
            "unknown table \"t\""
        );
        assert_eq!(
            StorageError::UnknownColumn {
                table: "t".into(),
                column: "c".into()
            }
            .to_string(),
            "unknown column \"t\".\"c\""
        );
        assert!(StorageError::DuplicateTable("x".into())
            .to_string()
            .contains("already exists"));
    }
}
