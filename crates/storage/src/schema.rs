//! Table schemas.

use crate::value::DataType;

/// Metadata for one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Column name, unique within its table.
    pub name: String,
    /// Static type.
    pub data_type: DataType,
}

impl ColumnMeta {
    /// Creates column metadata.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
}

impl Schema {
    /// Creates a schema from `(name, type)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate column names.
    pub fn new(columns: Vec<ColumnMeta>) -> Self {
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|p| p.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Self { columns }
    }

    /// Convenience constructor from `(&str, DataType)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Self::new(pairs.iter().map(|(n, t)| ColumnMeta::new(*n, *t)).collect())
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// The column at ordinal `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn column(&self, i: usize) -> &ColumnMeta {
        &self.columns[i]
    }

    /// Ordinal position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Like [`Schema::index_of`] but panics with a clear message; used where
    /// the column has already been validated.
    pub fn expect_index(&self, name: &str) -> usize {
        self.index_of(name)
            .unwrap_or_else(|| panic!("column {name:?} not in schema {:?}", self.names()))
    }

    /// All column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Builds a new schema by projecting the given ordinals, in order.
    ///
    /// # Panics
    ///
    /// Panics if any ordinal is out of range.
    pub fn project(&self, ordinals: &[usize]) -> Schema {
        Schema {
            columns: ordinals.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }

    /// Concatenates two schemas, prefixing duplicated names with the
    /// supplied qualifiers (used when joining tables whose column names
    /// collide).
    pub fn join(&self, other: &Schema, left_prefix: &str, right_prefix: &str) -> Schema {
        let mut out: Vec<ColumnMeta> = Vec::with_capacity(self.len() + other.len());
        for c in &self.columns {
            let clash = other.columns.iter().any(|o| o.name == c.name);
            let name = if clash {
                format!("{left_prefix}.{}", c.name)
            } else {
                c.name.clone()
            };
            out.push(ColumnMeta::new(name, c.data_type));
        }
        for c in &other.columns {
            let clash = self.columns.iter().any(|o| o.name == c.name);
            let name = if clash {
                format!("{right_prefix}.{}", c.name)
            } else {
                c.name.clone()
            };
            out.push(ColumnMeta::new(name, c.data_type));
        }
        Schema::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_projection() {
        let s = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("c", DataType::Str),
        ]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert_eq!(s.expect_index("c"), 2);
        let p = s.project(&[2, 0]);
        assert_eq!(p.names(), vec!["c", "a"]);
        assert_eq!(p.column(1).data_type, DataType::Int);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn rejects_duplicates() {
        Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Int)]);
    }

    #[test]
    fn join_disambiguates_collisions() {
        let l = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]);
        let r = Schema::from_pairs(&[("id", DataType::Int), ("y", DataType::Float)]);
        let j = l.join(&r, "l", "r");
        assert_eq!(j.names(), vec!["l.id", "x", "r.id", "y"]);
    }

    #[test]
    #[should_panic]
    fn expect_index_panics_for_missing() {
        Schema::from_pairs(&[("a", DataType::Int)]).expect_index("missing");
    }
}
