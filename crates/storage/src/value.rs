//! Typed scalar values and data types.
//!
//! The workload for this reproduction (TPC-H-like tables plus a synthetic
//! star schema) needs 64-bit integers, 64-bit floats, dates, booleans, and
//! dictionary-friendly strings.  `Value` is the dynamically typed scalar
//! exchanged between the expression evaluator, the executor, and the
//! statistics layer; columnar storage keeps data in typed vectors and only
//! materializes `Value`s at evaluation boundaries.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The static type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (also used for keys).
    Int,
    /// 64-bit IEEE float (prices, measures).
    Float,
    /// Calendar date, stored as days since 1970-01-01 (may be negative).
    Date,
    /// UTF-8 string (dictionary-encoded in storage).
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// True when a value of this static type can store `v`.
    ///
    /// Mirrors columnar storage's coercions exactly: a `Float` column
    /// accepts `Int` values (widened on push); nothing else coerces,
    /// and NULL is never storable (stored tables are fully populated).
    pub fn accepts(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_) | Value::Int(_))
                | (DataType::Date, Value::Date(_))
                | (DataType::Str, Value::Str(_))
                | (DataType::Bool, Value::Bool(_))
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Date => "DATE",
            DataType::Str => "STR",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar value.
///
/// `Value` implements a *total* ordering within each type (floats use
/// `total_cmp`), which the index and histogram layers rely on.  Cross-type
/// comparisons between `Int` and `Float` coerce to float; any other
/// cross-type comparison panics, since the planner is expected to have
/// type-checked expressions (`Null` compares less than everything, which
/// matches index ordering conventions).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Days since the Unix epoch.
    Date(i32),
    /// Shared string payload — cloning a `Value::Str` is a refcount bump.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The runtime type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Date(_) => Some(DataType::Date),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True iff NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int`.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, found {other:?}"),
        }
    }

    /// Numeric payload widened to `f64` (`Int`, `Float`, or `Date`).
    ///
    /// # Panics
    ///
    /// Panics for non-numeric values.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Float(v) => *v,
            Value::Date(v) => *v as f64,
            other => panic!("expected numeric, found {other:?}"),
        }
    }

    /// Date payload (days since epoch).
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Date`.
    pub fn as_date(&self) -> i32 {
        match self {
            Value::Date(v) => *v,
            other => panic!("expected Date, found {other:?}"),
        }
    }

    /// String payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Str`.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(v) => v,
            other => panic!("expected Str, found {other:?}"),
        }
    }

    /// Boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Bool`.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected Bool, found {other:?}"),
        }
    }

    /// Total-order comparison used by indexes and sorting.
    ///
    /// NULL sorts first; `Int`/`Float`/`Date` inter-compare numerically.
    ///
    /// # Panics
    ///
    /// Panics on unsupported cross-type comparisons (e.g. `Str` vs `Int`),
    /// which indicate a planner type-checking bug.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Numeric coercions.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Int(a), Date(b)) => a.cmp(&(*b as i64)),
            (Date(a), Int(b)) => (*a as i64).cmp(b),
            (a, b) => panic!("incomparable values: {a:?} vs {b:?}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // NULL == NULL here: this is storage equality (group keys, index
        // keys), not SQL three-valued logic, which lives in the expression
        // evaluator.
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Date(v) => {
                3u8.hash(state);
                v.hash(state);
            }
            Value::Str(v) => {
                4u8.hash(state);
                v.hash(state);
            }
            Value::Bool(v) => {
                5u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Date(v) => {
                let (y, m, d) = civil_from_days(*v);
                write!(f, "{y:04}-{m:02}-{d:02}")
            }
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

/// Converts a civil date to days since 1970-01-01 (Howard Hinnant's
/// `days_from_civil` algorithm; valid over the full `i32` day range).
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i32 {
    debug_assert!((1..=12).contains(&month), "bad month {month}");
    debug_assert!((1..=31).contains(&day), "bad day {day}");
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((month + 9) % 12) as i64; // [0, 11], Mar = 0
    let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Converts days since 1970-01-01 back to a civil `(year, month, day)`.
pub fn civil_from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let year = if m <= 2 { y + 1 } else { y } as i32;
    (year, m, d)
}

/// Parses a `YYYY-MM-DD` (or the paper's `MM/DD/YY`) date literal into a
/// [`Value::Date`].
///
/// Two-digit years are interpreted in the 1930–2029 window, matching the
/// TPC-H date range used in the paper's experiments ('07/01/97' = 1997).
///
/// # Panics
///
/// Panics on malformed input; date literals in this codebase are
/// programmer-supplied constants.
pub fn parse_date(s: &str) -> Value {
    let (y, m, d) = if s.contains('-') {
        let mut parts = s.splitn(3, '-');
        let y: i32 = parts.next().unwrap().parse().expect("year");
        let m: u32 = parts.next().expect("month").parse().expect("month");
        let d: u32 = parts.next().expect("day").parse().expect("day");
        (y, m, d)
    } else if s.contains('/') {
        let mut parts = s.splitn(3, '/');
        let m: u32 = parts.next().unwrap().parse().expect("month");
        let d: u32 = parts.next().expect("day").parse().expect("day");
        let y_raw: i32 = parts.next().expect("year").parse().expect("year");
        let y = if y_raw < 100 {
            if y_raw >= 30 {
                1900 + y_raw
            } else {
                2000 + y_raw
            }
        } else {
            y_raw
        };
        (y, m, d)
    } else {
        panic!("unrecognized date literal: {s:?}");
    };
    Value::Date(days_from_civil(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1997, 7, 1),
            (1997, 9, 30),
            (2000, 2, 29),
            (1900, 3, 1),
            (2026, 7, 4),
            (1969, 12, 31),
        ] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d), "roundtrip {y}-{m}-{d}");
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }

    #[test]
    fn parse_date_formats() {
        assert_eq!(parse_date("1997-07-01"), parse_date("07/01/97"));
        assert_eq!(
            parse_date("1997-07-01"),
            Value::Date(days_from_civil(1997, 7, 1))
        );
        // Two-digit year window.
        assert_eq!(
            parse_date("01/01/30"),
            Value::Date(days_from_civil(1930, 1, 1))
        );
        assert_eq!(
            parse_date("01/01/29"),
            Value::Date(days_from_civil(2029, 1, 1))
        );
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::str("apple") < Value::str("banana"));
        assert!(Value::Date(10) < Value::Date(20));
        assert!(Value::Bool(false) < Value::Bool(true));
        assert!(Value::Null < Value::Int(i64::MIN));
    }

    #[test]
    fn ordering_numeric_coercion() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.9) < Value::Int(2));
    }

    #[test]
    #[should_panic(expected = "incomparable")]
    fn ordering_rejects_str_vs_int() {
        Value::str("x").total_cmp(&Value::Int(1));
    }

    #[test]
    fn equality_and_hash_consistency() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(5));
        set.insert(Value::str("five"));
        set.insert(Value::Null);
        assert!(set.contains(&Value::Int(5)));
        assert!(set.contains(&Value::str("five")));
        assert!(set.contains(&Value::Null));
        assert!(!set.contains(&Value::Int(6)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(parse_date("1997-07-01").to_string(), "1997-07-01");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("abc").to_string(), "abc");
    }

    #[test]
    fn accessors_and_types() {
        assert_eq!(Value::Int(3).as_int(), 3);
        assert_eq!(Value::Float(2.5).as_f64(), 2.5);
        assert_eq!(Value::Int(3).as_f64(), 3.0);
        assert_eq!(Value::Date(7).as_date(), 7);
        assert_eq!(Value::str("s").as_str(), "s");
        assert!(Value::Bool(true).as_bool());
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_wrong_type() {
        Value::Float(1.0).as_int();
    }

    #[test]
    fn value_is_small() {
        // Value is passed around constantly; keep it at two words + tag.
        assert!(std::mem::size_of::<Value>() <= 24);
    }
}
