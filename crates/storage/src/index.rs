//! Secondary (nonclustered) and unique (primary-key) indexes.
//!
//! [`SecondaryIndex`] models a B-tree's leaf level as a sorted
//! `(key, rid)` array.  Range lookups return a contiguous slice of entries,
//! whose leaf pages the executor charges as sequential reads; fetching the
//! matching rows from the base table then costs random I/Os — the access
//! pattern at the heart of the paper's index-intersection-vs-scan example.
//!
//! [`UniqueIndex`] maps integer primary keys to RIDs, supporting the
//! foreign-key joins (indexed nested loops, join-synopsis construction)
//! that both the optimizer and the statistics layer rely on.

use std::collections::HashMap;
use std::ops::Bound;

use crate::table::{Rid, Table};
use crate::value::Value;

/// A nonclustered index: all `(key, rid)` pairs for one column, sorted by
/// key (ties broken by RID so results are deterministic).
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    table: String,
    column: String,
    entries: Vec<(Value, Rid)>,
}

impl SecondaryIndex {
    /// Builds the index over `table[column]`.
    ///
    /// # Panics
    ///
    /// Panics when the column does not exist.
    pub fn build(table: &Table, column: &str) -> Self {
        let col = table.schema().expect_index(column);
        let mut entries: Vec<(Value, Rid)> = (0..table.num_rows() as Rid)
            .map(|rid| (table.value(rid, col), rid))
            .collect();
        entries.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Self {
            table: table.name().to_string(),
            column: column.to_string(),
            entries,
        }
    }

    /// Name of the indexed table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Name of the indexed column.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Total number of leaf entries (= table rows).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// The contiguous run of entries whose keys fall within the bounds.
    ///
    /// `Bound::Unbounded` opens the corresponding side of the range.
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> &[(Value, Rid)] {
        let start = match lo {
            Bound::Unbounded => 0,
            Bound::Included(v) => self
                .entries
                .partition_point(|(k, _)| k.total_cmp(v) == std::cmp::Ordering::Less),
            Bound::Excluded(v) => self
                .entries
                .partition_point(|(k, _)| k.total_cmp(v) != std::cmp::Ordering::Greater),
        };
        let end = match hi {
            Bound::Unbounded => self.entries.len(),
            Bound::Included(v) => self
                .entries
                .partition_point(|(k, _)| k.total_cmp(v) != std::cmp::Ordering::Greater),
            Bound::Excluded(v) => self
                .entries
                .partition_point(|(k, _)| k.total_cmp(v) == std::cmp::Ordering::Less),
        };
        &self.entries[start.min(end)..end]
    }

    /// All entries with exactly this key.
    pub fn lookup_eq(&self, key: &Value) -> &[(Value, Rid)] {
        self.range(Bound::Included(key), Bound::Included(key))
    }
}

/// A unique index over an integer key column (primary keys).
#[derive(Debug, Clone)]
pub struct UniqueIndex {
    table: String,
    column: String,
    map: HashMap<i64, Rid>,
}

impl UniqueIndex {
    /// Builds the index over `table[column]`, which must be an `Int` column
    /// with no duplicate values.
    ///
    /// # Panics
    ///
    /// Panics when the column is missing, non-integer, or contains
    /// duplicates.
    pub fn build(table: &Table, column: &str) -> Self {
        let col = table.schema().expect_index(column);
        let keys = table.int_column(col);
        let mut map = HashMap::with_capacity(keys.len());
        for (rid, &k) in keys.iter().enumerate() {
            let prev = map.insert(k, rid as Rid);
            assert!(
                prev.is_none(),
                "duplicate key {k} in unique index {}.{column}",
                table.name()
            );
        }
        Self {
            table: table.name().to_string(),
            column: column.to_string(),
            map,
        }
    }

    /// Name of the indexed table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Name of the indexed column.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// RID holding the given key, if present.
    pub fn get(&self, key: i64) -> Option<Rid> {
        self.map.get(&key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("pk", DataType::Int), ("v", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema, 8);
        for (pk, v) in [
            (10, 5),
            (11, 3),
            (12, 5),
            (13, 1),
            (14, 9),
            (15, 5),
            (16, 2),
        ] {
            b.push_row(&[Value::Int(pk), Value::Int(v)]);
        }
        b.finish()
    }

    #[test]
    fn secondary_eq_lookup() {
        let t = table();
        let idx = SecondaryIndex::build(&t, "v");
        let hits = idx.lookup_eq(&Value::Int(5));
        let rids: Vec<Rid> = hits.iter().map(|(_, r)| *r).collect();
        assert_eq!(rids, vec![0, 2, 5]);
        assert!(idx.lookup_eq(&Value::Int(100)).is_empty());
        assert_eq!(idx.num_entries(), 7);
        assert_eq!(idx.table(), "t");
        assert_eq!(idx.column(), "v");
    }

    #[test]
    fn secondary_range_bounds() {
        let t = table();
        let idx = SecondaryIndex::build(&t, "v");
        let all = idx.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 7);
        // v in [2, 5]: values 2,3,5,5,5
        let r = idx.range(
            Bound::Included(&Value::Int(2)),
            Bound::Included(&Value::Int(5)),
        );
        assert_eq!(r.len(), 5);
        // v in (2, 5): 3,5,5,5
        let r = idx.range(
            Bound::Excluded(&Value::Int(2)),
            Bound::Included(&Value::Int(5)),
        );
        assert_eq!(r.len(), 4);
        // v in [2, 5): 2,3
        let r = idx.range(
            Bound::Included(&Value::Int(2)),
            Bound::Excluded(&Value::Int(5)),
        );
        assert_eq!(r.len(), 2);
        // Empty range.
        let r = idx.range(
            Bound::Included(&Value::Int(6)),
            Bound::Included(&Value::Int(8)),
        );
        assert!(r.is_empty());
        // Inverted range degenerates to empty rather than panicking.
        let r = idx.range(
            Bound::Included(&Value::Int(5)),
            Bound::Included(&Value::Int(2)),
        );
        assert!(r.is_empty());
    }

    #[test]
    fn secondary_keys_sorted() {
        let t = table();
        let idx = SecondaryIndex::build(&t, "v");
        let keys: Vec<i64> = idx
            .range(Bound::Unbounded, Bound::Unbounded)
            .iter()
            .map(|(k, _)| k.as_int())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn unique_index_lookup() {
        let t = table();
        let idx = UniqueIndex::build(&t, "pk");
        assert_eq!(idx.len(), 7);
        assert!(!idx.is_empty());
        assert_eq!(idx.get(13), Some(3));
        assert_eq!(idx.get(99), None);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn unique_index_rejects_duplicates() {
        let t = table();
        UniqueIndex::build(&t, "v");
    }
}
