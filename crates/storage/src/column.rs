//! Typed columnar vectors for vectorized execution.
//!
//! Storage keeps table data in typed vectors ([`crate::table::ColumnData`]);
//! this module adds the *execution-side* columnar types: an owned
//! [`ColumnVec`] (which, unlike stored columns, can carry NULLs and —
//! via the [`ColumnVec::Mixed`] escape hatch — heterogeneous intermediate
//! values such as a MIN/MAX output column mixing native `Int` and `Float`
//! payloads), a borrowed [`ColumnRef`] view unifying stored and
//! intermediate columns, and a compact [`NullMask`] bitmap.
//!
//! Vectorized kernels operate on `ColumnRef`s with *selection vectors*
//! (ascending row-id lists) instead of materializing filtered rows;
//! `Value`s are only reconstructed at row-materialization boundaries.

use std::collections::HashMap;
use std::sync::Arc;

use crate::value::{DataType, Value};

/// Compact validity bitmap: bit `i` set means row `i` is NULL.
///
/// Columns without NULLs carry no mask at all (`Option<NullMask>` is
/// `None`), so the common all-valid case pays nothing per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NullMask {
    bits: Vec<u64>,
    len: usize,
}

impl NullMask {
    /// An all-valid mask covering `len` rows.
    pub fn all_valid(len: usize) -> Self {
        Self {
            bits: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Marks row `i` as NULL.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn set_null(&mut self, i: usize) {
        assert!(
            i < self.len,
            "null-mask index {i} out of range {}",
            self.len
        );
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(
            i < self.len,
            "null-mask index {i} out of range {}",
            self.len
        );
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// True when any row is NULL.
    pub fn any_null(&self) -> bool {
        self.bits.iter().any(|w| *w != 0)
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// True when `nulls` marks row `i` NULL (no mask means all-valid).
pub(crate) fn null_at(nulls: Option<&NullMask>, i: usize) -> bool {
    nulls.is_some_and(|m| m.is_null(i))
}

/// An owned, typed column of intermediate results.
///
/// One vector per column, with an optional null bitmap; string columns
/// are dictionary-encoded like stored columns.  Columns whose values do
/// not all match the declared type (possible only for aggregate outputs,
/// whose schema declares `Float` while MIN/MAX keep the input's native
/// type) fall back to [`ColumnVec::Mixed`], which preserves each `Value`
/// exactly.
#[derive(Debug, Clone)]
pub enum ColumnVec {
    /// 64-bit integers.
    Int {
        /// Per-row payloads (arbitrary at NULL positions).
        values: Vec<i64>,
        /// Null bitmap; `None` means no NULLs.
        nulls: Option<NullMask>,
    },
    /// 64-bit floats.
    Float {
        /// Per-row payloads (arbitrary at NULL positions).
        values: Vec<f64>,
        /// Null bitmap; `None` means no NULLs.
        nulls: Option<NullMask>,
    },
    /// Dates as days since epoch.
    Date {
        /// Per-row payloads (arbitrary at NULL positions).
        values: Vec<i32>,
        /// Null bitmap; `None` means no NULLs.
        nulls: Option<NullMask>,
    },
    /// Dictionary-encoded strings.
    Str {
        /// Per-row codes indexing into `dict` (arbitrary at NULL
        /// positions).
        codes: Vec<u32>,
        /// Distinct values.
        dict: Vec<Arc<str>>,
        /// Null bitmap; `None` means no NULLs.
        nulls: Option<NullMask>,
    },
    /// Booleans.
    Bool {
        /// Per-row payloads (arbitrary at NULL positions).
        values: Vec<bool>,
        /// Null bitmap; `None` means no NULLs.
        nulls: Option<NullMask>,
    },
    /// Escape hatch for heterogeneous columns: the values verbatim.
    Mixed(Vec<Value>),
}

impl ColumnVec {
    /// Extracts column `ord` of row-major `rows` into a typed vector.
    ///
    /// Values must be the declared type or NULL; anything else (legal
    /// only in aggregate output columns) produces a [`ColumnVec::Mixed`]
    /// column that preserves every `Value` bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics when any row is shorter than `ord + 1`.
    pub fn from_rows(rows: &[Vec<Value>], ord: usize, dt: DataType) -> ColumnVec {
        // Single optimistic pass: build the typed vector directly and bail
        // to `Mixed` on the first off-type value (a pre-scan for
        // homogeneity would read every row twice, doubling the transpose
        // cost on the — overwhelmingly common — homogeneous case).
        let mixed = || ColumnVec::Mixed(rows.iter().map(|r| r[ord].clone()).collect());
        let mut nulls: Option<NullMask> = None;
        let mark_null = |nulls: &mut Option<NullMask>, i: usize| {
            nulls
                .get_or_insert_with(|| NullMask::all_valid(rows.len()))
                .set_null(i);
        };
        match dt {
            DataType::Int => {
                let mut values = Vec::with_capacity(rows.len());
                for (i, r) in rows.iter().enumerate() {
                    match &r[ord] {
                        Value::Int(v) => values.push(*v),
                        Value::Null => {
                            mark_null(&mut nulls, i);
                            values.push(0);
                        }
                        _ => return mixed(),
                    }
                }
                ColumnVec::Int { values, nulls }
            }
            DataType::Float => {
                let mut values = Vec::with_capacity(rows.len());
                for (i, r) in rows.iter().enumerate() {
                    match &r[ord] {
                        Value::Float(v) => values.push(*v),
                        Value::Null => {
                            mark_null(&mut nulls, i);
                            values.push(0.0);
                        }
                        _ => return mixed(),
                    }
                }
                ColumnVec::Float { values, nulls }
            }
            DataType::Date => {
                let mut values = Vec::with_capacity(rows.len());
                for (i, r) in rows.iter().enumerate() {
                    match &r[ord] {
                        Value::Date(v) => values.push(*v),
                        Value::Null => {
                            mark_null(&mut nulls, i);
                            values.push(0);
                        }
                        _ => return mixed(),
                    }
                }
                ColumnVec::Date { values, nulls }
            }
            DataType::Str => {
                let mut codes = Vec::with_capacity(rows.len());
                let mut dict: Vec<Arc<str>> = Vec::new();
                let mut lookup: HashMap<Arc<str>, u32> = HashMap::new();
                for (i, r) in rows.iter().enumerate() {
                    match &r[ord] {
                        Value::Str(s) => {
                            let code = *lookup.entry(Arc::clone(s)).or_insert_with(|| {
                                dict.push(Arc::clone(s));
                                (dict.len() - 1) as u32
                            });
                            codes.push(code);
                        }
                        Value::Null => {
                            mark_null(&mut nulls, i);
                            codes.push(0);
                        }
                        _ => return mixed(),
                    }
                }
                ColumnVec::Str { codes, dict, nulls }
            }
            DataType::Bool => {
                let mut values = Vec::with_capacity(rows.len());
                for (i, r) in rows.iter().enumerate() {
                    match &r[ord] {
                        Value::Bool(v) => values.push(*v),
                        Value::Null => {
                            mark_null(&mut nulls, i);
                            values.push(false);
                        }
                        _ => return mixed(),
                    }
                }
                ColumnVec::Bool { values, nulls }
            }
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int { values, .. } => values.len(),
            ColumnVec::Float { values, .. } => values.len(),
            ColumnVec::Date { values, .. } => values.len(),
            ColumnVec::Str { codes, .. } => codes.len(),
            ColumnVec::Bool { values, .. } => values.len(),
            ColumnVec::Mixed(values) => values.len(),
        }
    }

    /// True when the column holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        self.as_column_ref().is_null(i)
    }

    /// Materializes the `Value` at row `i` (NULL positions yield
    /// `Value::Null`; strings are refcount clones).
    pub fn value(&self, i: usize) -> Value {
        self.as_column_ref().value(i)
    }

    /// A borrowed view of this column.
    pub fn as_column_ref(&self) -> ColumnRef<'_> {
        match self {
            ColumnVec::Int { values, nulls } => ColumnRef::Int {
                values,
                nulls: nulls.as_ref(),
            },
            ColumnVec::Float { values, nulls } => ColumnRef::Float {
                values,
                nulls: nulls.as_ref(),
            },
            ColumnVec::Date { values, nulls } => ColumnRef::Date {
                values,
                nulls: nulls.as_ref(),
            },
            ColumnVec::Str { codes, dict, nulls } => ColumnRef::Str {
                codes,
                dict,
                nulls: nulls.as_ref(),
            },
            ColumnVec::Bool { values, nulls } => ColumnRef::Bool {
                values,
                nulls: nulls.as_ref(),
            },
            ColumnVec::Mixed(values) => ColumnRef::Mixed(values),
        }
    }
}

/// A borrowed, typed view of one column — either a stored table column
/// (zero-copy via [`crate::table::ColumnData::as_column_ref`], never
/// NULL) or an intermediate [`ColumnVec`].
///
/// Vectorized kernels match on the variant once per column and then run
/// tight loops over the typed slice; [`ColumnRef::value`] is the row
/// materialization boundary.
#[derive(Debug, Clone, Copy)]
pub enum ColumnRef<'a> {
    /// 64-bit integers.
    Int {
        /// Per-row payloads.
        values: &'a [i64],
        /// Null bitmap; `None` means no NULLs.
        nulls: Option<&'a NullMask>,
    },
    /// 64-bit floats.
    Float {
        /// Per-row payloads.
        values: &'a [f64],
        /// Null bitmap; `None` means no NULLs.
        nulls: Option<&'a NullMask>,
    },
    /// Dates as days since epoch.
    Date {
        /// Per-row payloads.
        values: &'a [i32],
        /// Null bitmap; `None` means no NULLs.
        nulls: Option<&'a NullMask>,
    },
    /// Dictionary-encoded strings.
    Str {
        /// Per-row codes indexing into `dict`.
        codes: &'a [u32],
        /// Distinct values.
        dict: &'a [Arc<str>],
        /// Null bitmap; `None` means no NULLs.
        nulls: Option<&'a NullMask>,
    },
    /// Booleans.
    Bool {
        /// Per-row payloads.
        values: &'a [bool],
        /// Null bitmap; `None` means no NULLs.
        nulls: Option<&'a NullMask>,
    },
    /// Heterogeneous values, verbatim.
    Mixed(&'a [Value]),
}

impl ColumnRef<'_> {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnRef::Int { values, .. } => values.len(),
            ColumnRef::Float { values, .. } => values.len(),
            ColumnRef::Date { values, .. } => values.len(),
            ColumnRef::Str { codes, .. } => codes.len(),
            ColumnRef::Bool { values, .. } => values.len(),
            ColumnRef::Mixed(values) => values.len(),
        }
    }

    /// True when the column holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnRef::Int { nulls, .. }
            | ColumnRef::Float { nulls, .. }
            | ColumnRef::Date { nulls, .. }
            | ColumnRef::Str { nulls, .. }
            | ColumnRef::Bool { nulls, .. } => null_at(*nulls, i),
            ColumnRef::Mixed(values) => values[i].is_null(),
        }
    }

    /// Materializes the `Value` at row `i` (NULL positions yield
    /// `Value::Null`; strings are refcount clones).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnRef::Int { values, nulls } => {
                if null_at(*nulls, i) {
                    Value::Null
                } else {
                    Value::Int(values[i])
                }
            }
            ColumnRef::Float { values, nulls } => {
                if null_at(*nulls, i) {
                    Value::Null
                } else {
                    Value::Float(values[i])
                }
            }
            ColumnRef::Date { values, nulls } => {
                if null_at(*nulls, i) {
                    Value::Null
                } else {
                    Value::Date(values[i])
                }
            }
            ColumnRef::Str { codes, dict, nulls } => {
                if null_at(*nulls, i) {
                    Value::Null
                } else {
                    Value::Str(Arc::clone(&dict[codes[i] as usize]))
                }
            }
            ColumnRef::Bool { values, nulls } => {
                if null_at(*nulls, i) {
                    Value::Null
                } else {
                    Value::Bool(values[i])
                }
            }
            ColumnRef::Mixed(values) => values[i].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_mask_bits() {
        let mut m = NullMask::all_valid(130);
        assert!(!m.any_null());
        assert_eq!(m.len(), 130);
        m.set_null(0);
        m.set_null(64);
        m.set_null(129);
        assert!(m.is_null(0) && m.is_null(64) && m.is_null(129));
        assert!(!m.is_null(1) && !m.is_null(63) && !m.is_null(128));
        assert!(m.any_null());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn null_mask_bounds() {
        NullMask::all_valid(8).set_null(8);
    }

    #[test]
    fn from_rows_typed_roundtrip() {
        let rows = vec![
            vec![Value::Int(1), Value::Float(1.5), Value::str("a")],
            vec![Value::Null, Value::Float(2.5), Value::str("b")],
            vec![Value::Int(3), Value::Null, Value::str("a")],
        ];
        let ints = ColumnVec::from_rows(&rows, 0, DataType::Int);
        let floats = ColumnVec::from_rows(&rows, 1, DataType::Float);
        let strs = ColumnVec::from_rows(&rows, 2, DataType::Str);
        for (col, ord) in [(&ints, 0), (&floats, 1), (&strs, 2)] {
            assert_eq!(col.len(), 3);
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(col.value(i), row[ord], "col {ord} row {i}");
                assert_eq!(col.is_null(i), row[ord].is_null());
            }
        }
        match strs {
            ColumnVec::Str { codes, dict, .. } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes, vec![0, 1, 0]);
            }
            other => panic!("expected Str column, got {other:?}"),
        }
    }

    #[test]
    fn from_rows_heterogeneous_falls_back_to_mixed() {
        // A MIN/MAX output column: declared Float, holds a native Int.
        let rows = vec![vec![Value::Int(7)], vec![Value::Float(2.5)]];
        let col = ColumnVec::from_rows(&rows, 0, DataType::Float);
        match &col {
            ColumnVec::Mixed(values) => {
                assert_eq!(values[0], Value::Int(7));
                assert!(matches!(values[0], Value::Int(7)));
            }
            other => panic!("expected Mixed, got {other:?}"),
        }
        assert_eq!(col.value(0), Value::Int(7));
        assert!(matches!(col.value(0), Value::Int(7)), "type preserved");
    }

    #[test]
    fn from_rows_all_null() {
        let rows = vec![vec![Value::Null], vec![Value::Null]];
        let col = ColumnVec::from_rows(&rows, 0, DataType::Str);
        assert!(col.is_null(0) && col.is_null(1));
        assert_eq!(col.value(1), Value::Null);
    }
}
