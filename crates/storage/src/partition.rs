//! Hash and range table partitioning.
//!
//! A partitioned table stores the same rows as an unpartitioned one — the
//! catalog's canonical [`Table`] is the *concatenation* of the partitions
//! in partition order, so every existing consumer of the `Table` read API
//! (scans, indexes, synopses, histograms) works unchanged.  What
//! partitioning adds is metadata: each partition is a contiguous RID span
//! of the concatenated table, annotated with the min/max of the partition
//! column, which lets
//!
//! * the executor treat partitions as the natural morsel source (scan only
//!   the surviving spans),
//! * the optimizer prune partitions whose bounds/hash bucket cannot match
//!   a predicate, and
//! * the statistics layer sample and refresh partitions independently.
//!
//! Rows are routed at build time by [`PartitionedTableBuilder`]; the
//! routing function is deterministic (a fixed FNV-1a hash for hash
//! partitioning, [`Value::total_cmp`] against ascending bounds for range
//! partitioning), so the same input rows always produce the same physical
//! layout regardless of process or platform.

use std::ops::Range;

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::{check_row, Table, TableBuilder};
use crate::value::Value;

/// How a table's rows are assigned to partitions.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionSpec {
    /// Rows are routed by a deterministic hash of `column` modulo
    /// `partitions`.  NULL keys route to partition 0.
    Hash {
        /// The partitioning column.
        column: String,
        /// Number of hash buckets (≥ 1).
        partitions: usize,
    },
    /// Rows are routed by comparing `column` against ascending, exclusive
    /// upper `bounds`: partition `i` holds rows with `value < bounds[i]`
    /// (and `value >= bounds[i-1]`); a final catch-all partition holds the
    /// rest, for `bounds.len() + 1` partitions in total.  NULL keys sort
    /// below every bound and land in partition 0.
    Range {
        /// The partitioning column.
        column: String,
        /// Ascending exclusive upper bounds of all but the last partition.
        bounds: Vec<Value>,
    },
}

impl PartitionSpec {
    /// The partitioning column.
    pub fn column(&self) -> &str {
        match self {
            PartitionSpec::Hash { column, .. } | PartitionSpec::Range { column, .. } => column,
        }
    }

    /// Number of partitions this spec produces.
    pub fn partition_count(&self) -> usize {
        match self {
            PartitionSpec::Hash { partitions, .. } => *partitions,
            PartitionSpec::Range { bounds, .. } => bounds.len() + 1,
        }
    }

    /// The partition a key value routes to.
    pub fn route(&self, value: &Value) -> usize {
        match self {
            PartitionSpec::Hash { partitions, .. } => {
                if value.is_null() {
                    0
                } else {
                    (partition_hash(value) % *partitions as u64) as usize
                }
            }
            PartitionSpec::Range { bounds, .. } => bounds
                .iter()
                .position(|b| value.total_cmp(b).is_lt())
                .unwrap_or(bounds.len()),
        }
    }
}

/// Deterministic 64-bit hash of a partition-key value (FNV-1a over a type
/// tag and the payload).  Numeric values that compare equal under
/// [`Value::total_cmp`]'s coercions (`Int`/`Date`/integral `Float`) hash
/// identically, so hash-bucket pruning agrees with predicate evaluation.
pub fn partition_hash(value: &Value) -> u64 {
    fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h
    }
    let h = 0xcbf2_9ce4_8422_2325u64;
    match value {
        Value::Null => fnv(h, &[0]),
        Value::Int(v) => fnv(fnv(h, &[1]), &v.to_le_bytes()),
        Value::Date(v) => fnv(fnv(h, &[1]), &(*v as i64).to_le_bytes()),
        Value::Float(v) => {
            // Integral floats hash like the integer they equal.
            if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(v) {
                fnv(fnv(h, &[1]), &(*v as i64).to_le_bytes())
            } else {
                fnv(fnv(h, &[2]), &v.to_bits().to_le_bytes())
            }
        }
        Value::Str(s) => fnv(fnv(h, &[3]), s.as_bytes()),
        Value::Bool(b) => fnv(fnv(h, &[4]), &[*b as u8]),
    }
}

/// Partition layout of a registered table.
///
/// The catalog's canonical [`Table`] for a partitioned table is the
/// concatenation of the partitions in partition order; partition `p`
/// occupies the contiguous RID span `spans()[p]`.
#[derive(Debug, Clone)]
pub struct Partitioning {
    spec: PartitionSpec,
    spans: Vec<Range<usize>>,
    min_max: Vec<Option<(Value, Value)>>,
}

impl Partitioning {
    /// Assembles a layout from a spec, per-partition RID spans, and
    /// per-partition key bounds.
    ///
    /// # Panics
    ///
    /// Panics when the span list does not match the spec's partition count
    /// or the spans are not contiguous from RID 0.
    pub fn new(
        spec: PartitionSpec,
        spans: Vec<Range<usize>>,
        min_max: Vec<Option<(Value, Value)>>,
    ) -> Self {
        assert_eq!(
            spans.len(),
            spec.partition_count(),
            "span count must match the partition spec"
        );
        assert_eq!(min_max.len(), spans.len(), "one min/max per partition");
        let mut next = 0usize;
        for (p, s) in spans.iter().enumerate() {
            assert_eq!(s.start, next, "partition {p} span must start at {next}");
            assert!(s.end >= s.start, "partition {p} span is inverted");
            next = s.end;
        }
        Self {
            spec,
            spans,
            min_max,
        }
    }

    /// The partitioning spec.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.spans.len()
    }

    /// Per-partition contiguous RID spans of the concatenated table, in
    /// partition order.
    pub fn spans(&self) -> &[Range<usize>] {
        &self.spans
    }

    /// The RID span of one partition.
    ///
    /// # Panics
    ///
    /// Panics when `p` is out of range.
    pub fn span(&self, p: usize) -> Range<usize> {
        self.spans[p].clone()
    }

    /// Min/max of the partition column over partition `p`'s non-NULL
    /// keys, or `None` when the partition is empty or all-NULL.  NULL keys
    /// never satisfy a comparison predicate on the partition column, so
    /// bounds pruning against this interval is safe.
    pub fn min_max(&self, p: usize) -> Option<&(Value, Value)> {
        self.min_max[p].as_ref()
    }

    /// Total rows across the named partitions.
    pub fn rows_in(&self, partitions: &[usize]) -> usize {
        partitions.iter().map(|&p| self.spans[p].len()).sum()
    }

    /// Routes `rows` into their partitions and rebuilds the canonical
    /// concatenated table so every partition remains one contiguous RID
    /// span: partition `p`'s new span holds its old rows (in order)
    /// followed by the batch's rows routed to `p` (in batch order) —
    /// exactly the layout a one-shot [`PartitionedTableBuilder`] build
    /// over the combined row stream would produce, which is what keeps
    /// streamed and one-shot tables bit-identical.
    ///
    /// Returns the new table, the updated layout (spans re-derived,
    /// per-partition min/max widened by the new keys), and each input
    /// row's partition, in input order — the ingest path feeds those
    /// assignments to the per-partition sketches.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::SchemaMismatch`] when any row fails
    /// arity/type/NULL validation; the batch is rejected atomically.
    pub fn append(
        &self,
        table: &Table,
        rows: &[Vec<Value>],
    ) -> Result<(Table, Partitioning, Vec<usize>), StorageError> {
        for row in rows {
            check_row(table.schema(), row).map_err(StorageError::SchemaMismatch)?;
        }
        let key = table.schema().expect_index(self.spec.column());
        let parts = self.partition_count();
        let mut routed: Vec<Vec<&Vec<Value>>> = vec![Vec::new(); parts];
        let mut assignments = Vec::with_capacity(rows.len());
        let mut min_max = self.min_max.clone();
        for row in rows {
            let k = &row[key];
            let p = self.spec.route(k);
            if !k.is_null() {
                min_max[p] = Some(match min_max[p].take() {
                    None => (k.clone(), k.clone()),
                    Some((lo, hi)) => (
                        if k.total_cmp(&lo).is_lt() {
                            k.clone()
                        } else {
                            lo
                        },
                        if k.total_cmp(&hi).is_gt() {
                            k.clone()
                        } else {
                            hi
                        },
                    ),
                });
            }
            routed[p].push(row);
            assignments.push(p);
        }
        let mut builder = TableBuilder::new(
            table.name().to_string(),
            table.schema().clone(),
            table.num_rows() + rows.len(),
        );
        let mut spans = Vec::with_capacity(parts);
        let mut start = 0usize;
        for (p, extra) in routed.iter().enumerate() {
            let old = &self.spans[p];
            for rid in old.clone() {
                builder.push_row(&table.row(rid as crate::table::Rid));
            }
            for row in extra {
                builder.push_row(row);
            }
            let len = old.len() + extra.len();
            spans.push(start..start + len);
            start += len;
        }
        let new_table = builder.finish();
        let layout = Partitioning::new(self.spec.clone(), spans, min_max);
        Ok((new_table, layout, assignments))
    }
}

/// Routes rows into per-partition buffers and concatenates them, in
/// partition order, into one canonical [`Table`] plus its [`Partitioning`]
/// metadata.
pub struct PartitionedTableBuilder {
    name: String,
    schema: Schema,
    spec: PartitionSpec,
    key: usize,
    buffers: Vec<Vec<Vec<Value>>>,
    min_max: Vec<Option<(Value, Value)>>,
    rows: usize,
}

impl PartitionedTableBuilder {
    /// Starts a partitioned table.
    ///
    /// # Panics
    ///
    /// Panics when the partition column is missing from the schema, a hash
    /// spec has zero buckets, or range bounds are not strictly ascending.
    pub fn new(name: impl Into<String>, schema: Schema, spec: PartitionSpec) -> Self {
        let key = schema.expect_index(spec.column());
        match &spec {
            PartitionSpec::Hash { partitions, .. } => {
                assert!(*partitions >= 1, "hash partitioning needs >= 1 bucket");
            }
            PartitionSpec::Range { bounds, .. } => {
                assert!(
                    bounds.windows(2).all(|w| w[0].total_cmp(&w[1]).is_lt()),
                    "range bounds must be strictly ascending"
                );
            }
        }
        let parts = spec.partition_count();
        Self {
            name: name.into(),
            schema,
            spec,
            key,
            buffers: vec![Vec::new(); parts],
            min_max: vec![None; parts],
            rows: 0,
        }
    }

    /// Routes one row to its partition.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch (same contract as
    /// [`TableBuilder::push_row`]).
    pub fn push_row(&mut self, values: &[Value]) {
        assert_eq!(values.len(), self.schema.len(), "row arity mismatch");
        let k = &values[self.key];
        let p = self.spec.route(k);
        if !k.is_null() {
            self.min_max[p] = Some(match self.min_max[p].take() {
                None => (k.clone(), k.clone()),
                Some((lo, hi)) => (
                    if k.total_cmp(&lo).is_lt() {
                        k.clone()
                    } else {
                        lo
                    },
                    if k.total_cmp(&hi).is_gt() {
                        k.clone()
                    } else {
                        hi
                    },
                ),
            });
        }
        self.buffers[p].push(values.to_vec());
        self.rows += 1;
    }

    /// Rows routed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows have been routed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Concatenates the partitions into the canonical table and returns it
    /// with the partition layout.
    pub fn finish(self) -> (Table, Partitioning) {
        let mut builder = TableBuilder::new(self.name, self.schema, self.rows);
        let mut spans = Vec::with_capacity(self.buffers.len());
        let mut start = 0usize;
        for rows in &self.buffers {
            for row in rows {
                builder.push_row(row);
            }
            spans.push(start..start + rows.len());
            start += rows.len();
        }
        let table = builder.finish();
        (table, Partitioning::new(self.spec, spans, self.min_max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)])
    }

    fn build(spec: PartitionSpec, keys: &[i64]) -> (Table, Partitioning) {
        let mut b = PartitionedTableBuilder::new("t", schema(), spec);
        for &k in keys {
            b.push_row(&[Value::Int(k), Value::Float(k as f64 / 2.0)]);
        }
        b.finish()
    }

    #[test]
    fn range_routing_and_spans() {
        let spec = PartitionSpec::Range {
            column: "k".into(),
            bounds: vec![Value::Int(10), Value::Int(20)],
        };
        assert_eq!(spec.partition_count(), 3);
        let (t, p) = build(spec, &[25, 5, 15, 9, 10, 19, 20, 3]);
        assert_eq!(t.num_rows(), 8);
        // Partition 0: 5, 9, 3; partition 1: 15, 10, 19; partition 2: 25, 20.
        assert_eq!(p.spans(), &[0..3, 3..6, 6..8]);
        // Concatenation preserves per-partition arrival order.
        let keys: Vec<i64> = (0..8).map(|r| t.value(r, 0).as_int()).collect();
        assert_eq!(keys, vec![5, 9, 3, 15, 10, 19, 25, 20]);
        assert_eq!(
            p.min_max(0),
            Some(&(Value::Int(3), Value::Int(9))),
            "partition 0 bounds"
        );
        assert_eq!(p.min_max(1), Some(&(Value::Int(10), Value::Int(19))));
        assert_eq!(p.min_max(2), Some(&(Value::Int(20), Value::Int(25))));
        assert_eq!(p.rows_in(&[0, 2]), 5);
    }

    #[test]
    fn empty_partition_has_no_bounds() {
        let spec = PartitionSpec::Range {
            column: "k".into(),
            bounds: vec![Value::Int(100)],
        };
        let (_, p) = build(spec, &[1, 2, 3]);
        assert_eq!(p.spans(), &[0..3, 3..3]);
        assert!(p.min_max(1).is_none());
    }

    #[test]
    fn hash_routing_is_deterministic_and_total() {
        let spec = PartitionSpec::Hash {
            column: "k".into(),
            partitions: 4,
        };
        let keys: Vec<i64> = (0..100).collect();
        let (t1, p1) = build(spec.clone(), &keys);
        let (t2, p2) = build(spec.clone(), &keys);
        assert_eq!(p1.spans(), p2.spans(), "layout must be reproducible");
        for r in 0..t1.num_rows() as u32 {
            assert_eq!(t1.value(r, 0), t2.value(r, 0));
        }
        // Every row landed in the partition its key routes to.
        for (part, span) in p1.spans().iter().enumerate() {
            for r in span.clone() {
                assert_eq!(spec.route(&t1.value(r as u32, 0)), part);
            }
        }
        // All four buckets should be populated for 100 consecutive keys.
        assert!(p1.spans().iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn hash_agrees_across_numeric_coercions() {
        assert_eq!(
            partition_hash(&Value::Int(42)),
            partition_hash(&Value::Float(42.0))
        );
        assert_eq!(
            partition_hash(&Value::Int(7)),
            partition_hash(&Value::Date(7))
        );
        assert_ne!(
            partition_hash(&Value::Int(1)),
            partition_hash(&Value::Int(2))
        );
    }

    #[test]
    fn null_keys_route_to_partition_zero() {
        // Stored tables are fully populated (TableBuilder rejects NULLs),
        // but the routing function itself is total over `Value`.
        let range = PartitionSpec::Range {
            column: "k".into(),
            bounds: vec![Value::Int(0)],
        };
        assert_eq!(range.route(&Value::Null), 0);
        let hash = PartitionSpec::Hash {
            column: "k".into(),
            partitions: 7,
        };
        assert_eq!(hash.route(&Value::Null), 0);
    }

    #[test]
    fn append_matches_one_shot_build() {
        let spec = PartitionSpec::Range {
            column: "k".into(),
            bounds: vec![Value::Int(10), Value::Int(20)],
        };
        let first: Vec<i64> = vec![25, 5, 15, 9];
        let second: Vec<i64> = vec![10, 19, 20, 3];
        let (t1, p1) = build(spec.clone(), &first);
        let batch: Vec<Vec<Value>> = second
            .iter()
            .map(|&k| vec![Value::Int(k), Value::Float(k as f64 / 2.0)])
            .collect();
        let (t2, p2, assignments) = p1.append(&t1, &batch).unwrap();
        // Identical to routing all eight rows in one shot.
        let all: Vec<i64> = first.iter().chain(&second).copied().collect();
        let (t_ref, p_ref) = build(spec.clone(), &all);
        assert_eq!(t2.num_rows(), t_ref.num_rows());
        for r in 0..t_ref.num_rows() as u32 {
            assert_eq!(t2.row(r), t_ref.row(r), "row {r}");
        }
        assert_eq!(p2.spans(), p_ref.spans());
        for p in 0..p2.partition_count() {
            assert_eq!(p2.min_max(p), p_ref.min_max(p), "partition {p} bounds");
        }
        // Assignments report where each batch row landed.
        assert_eq!(
            assignments,
            second
                .iter()
                .map(|&k| spec.route(&Value::Int(k)))
                .collect::<Vec<_>>()
        );
        // Original table/layout untouched.
        assert_eq!(t1.num_rows(), 4);
        assert_eq!(p1.spans().last().unwrap().end, 4);
    }

    #[test]
    fn append_rejects_bad_rows() {
        let spec = PartitionSpec::Hash {
            column: "k".into(),
            partitions: 2,
        };
        let (t, p) = build(spec, &[1, 2, 3]);
        let err = p.append(&t, &[vec![Value::Int(1)]]);
        assert!(matches!(err, Err(StorageError::SchemaMismatch(_))));
        let err = p.append(&t, &[vec![Value::str("x"), Value::Float(0.0)]]);
        assert!(matches!(err, Err(StorageError::SchemaMismatch(_))));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_bounds() {
        PartitionedTableBuilder::new(
            "t",
            schema(),
            PartitionSpec::Range {
                column: "k".into(),
                bounds: vec![Value::Int(10), Value::Int(10)],
            },
        );
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn rejects_missing_column() {
        PartitionedTableBuilder::new(
            "t",
            schema(),
            PartitionSpec::Hash {
                column: "zzz".into(),
                partitions: 2,
            },
        );
    }
}
