//! Property-based tests of the storage layer: index lookups against naive
//! filtering, date arithmetic, and value ordering laws.

use std::ops::Bound;

use proptest::prelude::*;
use rqo_storage::{
    civil_from_days, days_from_civil, DataType, Schema, SecondaryIndex, Table, TableBuilder,
    UniqueIndex, Value,
};

fn int_table(values: &[i64]) -> Table {
    let mut b = TableBuilder::new(
        "t",
        Schema::from_pairs(&[("x", DataType::Int)]),
        values.len(),
    );
    for &v in values {
        b.push_row(&[Value::Int(v)]);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn index_range_equals_naive_filter(
        values in prop::collection::vec(-50i64..50, 0..200),
        lo in -60i64..60,
        len in 0i64..60,
        lo_inclusive: bool,
        hi_inclusive: bool,
    ) {
        let t = int_table(&values);
        let idx = SecondaryIndex::build(&t, "x");
        let hi = lo + len;
        let lo_v = Value::Int(lo);
        let hi_v = Value::Int(hi);
        let lo_bound = if lo_inclusive { Bound::Included(&lo_v) } else { Bound::Excluded(&lo_v) };
        let hi_bound = if hi_inclusive { Bound::Included(&hi_v) } else { Bound::Excluded(&hi_v) };
        let mut from_index: Vec<u32> = idx
            .range(lo_bound, hi_bound)
            .iter()
            .map(|(_, rid)| *rid)
            .collect();
        from_index.sort_unstable();
        let mut naive: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| {
                let above = if lo_inclusive { v >= lo } else { v > lo };
                let below = if hi_inclusive { v <= hi } else { v < hi };
                above && below
            })
            .map(|(i, _)| i as u32)
            .collect();
        naive.sort_unstable();
        prop_assert_eq!(from_index, naive);
    }

    #[test]
    fn index_eq_equals_naive_filter(values in prop::collection::vec(-20i64..20, 0..150), key in -25i64..25) {
        let t = int_table(&values);
        let idx = SecondaryIndex::build(&t, "x");
        let mut hits: Vec<u32> = idx.lookup_eq(&Value::Int(key)).iter().map(|(_, r)| *r).collect();
        hits.sort_unstable();
        let naive: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == key)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(hits, naive);
    }

    #[test]
    fn unique_index_finds_every_key(n in 1usize..200, offset in -1000i64..1000) {
        let values: Vec<i64> = (0..n as i64).map(|i| i * 3 + offset).collect();
        let t = int_table(&values);
        let idx = UniqueIndex::build(&t, "x");
        for (rid, &v) in values.iter().enumerate() {
            prop_assert_eq!(idx.get(v), Some(rid as u32));
        }
        prop_assert_eq!(idx.get(offset - 1), None);
    }

    #[test]
    fn civil_date_roundtrip(days in -200_000i32..200_000) {
        let (y, m, d) = civil_from_days(days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        prop_assert_eq!(days_from_civil(y, m, d), days);
    }

    #[test]
    fn date_ordering_matches_day_numbers(a in -100_000i32..100_000, b in -100_000i32..100_000) {
        let va = Value::Date(a);
        let vb = Value::Date(b);
        prop_assert_eq!(va.total_cmp(&vb), a.cmp(&b));
    }

    #[test]
    fn value_total_order_is_consistent(vals in prop::collection::vec(-100i64..100, 3)) {
        // Antisymmetry + transitivity over sampled triples of Int values
        // (mixing in float coercion).
        let a = Value::Int(vals[0]);
        let b = Value::Float(vals[1] as f64 + 0.5);
        let c = Value::Int(vals[2]);
        let ord_ab = a.total_cmp(&b);
        let ord_ba = b.total_cmp(&a);
        prop_assert_eq!(ord_ab, ord_ba.reverse());
        if a.total_cmp(&b) != std::cmp::Ordering::Greater
            && b.total_cmp(&c) != std::cmp::Ordering::Greater
        {
            prop_assert_ne!(a.total_cmp(&c), std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn table_roundtrips_arbitrary_rows(
        rows in prop::collection::vec((-1000i64..1000, -1e6f64..1e6, any::<bool>()), 0..100),
    ) {
        let schema = Schema::from_pairs(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("b", DataType::Bool),
        ]);
        let mut builder = TableBuilder::new("t", schema, rows.len());
        for &(i, f, b) in &rows {
            builder.push_row(&[Value::Int(i), Value::Float(f), Value::Bool(b)]);
        }
        let t = builder.finish();
        prop_assert_eq!(t.num_rows(), rows.len());
        for (rid, &(i, f, b)) in rows.iter().enumerate() {
            prop_assert_eq!(t.value(rid as u32, 0), Value::Int(i));
            prop_assert_eq!(t.value(rid as u32, 1), Value::Float(f));
            prop_assert_eq!(t.value(rid as u32, 2), Value::Bool(b));
        }
    }
}
