//! Experiment harness: regenerates every figure of the paper's
//! evaluation.
//!
//! Two kinds of artifacts are reproduced:
//!
//! * **Analytical figures (1–8)** — closed-form computations over the
//!   paper's §5 linear cost model: plan cost curves, posterior densities,
//!   and expected execution times under the binomial sampling model
//!   ([`analytic`]).
//! * **System figures (9–12)** — end-to-end sweeps that generate data,
//!   build statistics, *optimize and execute* each query under every
//!   confidence threshold plus the histogram baseline, and report
//!   average/standard deviation of simulated execution time
//!   ([`scenarios`], [`harness`]).
//!
//! Each `fig*` binary prints a CSV series to stdout and writes it under
//! `results/` (override with `--out`); `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.

#![warn(missing_docs)]

pub mod analytic;
pub mod harness;
pub mod scenarios;
