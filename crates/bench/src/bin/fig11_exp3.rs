//! Figure 11: Experiment 3 — the four-table star join (§6.2.3), end to
//! end.
//!
//! The handcrafted fact distribution sweeps the true match fraction from
//! ≈0% to 10% while every dimension filter stays at a 10% marginal, so
//! the histogram baseline always estimates 0.1% and cannot adapt.
//! Expected shapes: the robust estimator switches between the semijoin
//! strategy (low match), hybrid plans, and cascading hash joins (high
//! match); high thresholds give flat, predictable times.

use rqo_bench::harness::{points_csv, run_scenario, summary_csv, write_csv, RunConfig};
use rqo_bench::scenarios::{exp3_queries, star_catalog};
use rqo_storage::CostParams;

fn main() {
    let cfg = RunConfig::from_args();
    let catalog = star_catalog(&cfg);
    let queries = exp3_queries(&catalog);
    eprintln!(
        "# exp3: {} query instances over a {}-row fact table, {} repeats",
        queries.len(),
        catalog.table("fact").expect("fact").num_rows(),
        cfg.repeats
    );
    let result = run_scenario(&catalog, &CostParams::default(), &queries, &cfg);
    write_csv(
        &cfg,
        "fig11a_exp3_selectivity_vs_time",
        "estimator,selectivity,avg_time_s,std_dev_s,dominant_plan",
        &points_csv(&result),
    );
    write_csv(
        &cfg,
        "fig11b_exp3_tradeoff",
        "estimator,avg_time_s,std_dev_s",
        &summary_csv(&result),
    );
}
