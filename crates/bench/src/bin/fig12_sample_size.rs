//! Figure 12: effect of sample size on Experiment 1 (§6.2.4).
//!
//! The single-table scenario at a fixed T = 50%, with sample sizes from
//! 50 to 2500 tuples.  Each size contributes one (average, std-dev)
//! point.  Expected shape: larger samples improve both axes, except the
//! 50-tuple outlier — with so little evidence the posterior can never
//! clear the crossover, so the optimizer always plays safe
//! (ultra-predictable, mildly slow): the paper's "self-adjusting"
//! behaviour.

use rqo_bench::harness::{run_scenario, write_csv, RunConfig};
use rqo_bench::scenarios::{exp1_queries, tpch_catalog};
use rqo_storage::CostParams;

fn main() {
    let base = RunConfig::from_args();
    let catalog = tpch_catalog(&base);
    let queries = exp1_queries(&catalog);
    let sizes = [50usize, 100, 250, 500, 1000, 2500];

    let mut rows = Vec::new();
    for &size in &sizes {
        let cfg = RunConfig {
            sample_size: size,
            thresholds: vec![0.5],
            ..base.clone()
        };
        let result = run_scenario(&catalog, &CostParams::default(), &queries, &cfg);
        for (label, mean, std) in &result.summary {
            let series = if label == "histogram" {
                // The baseline is size-independent; record it once.
                if size != sizes[0] {
                    continue;
                }
                "histogram".to_string()
            } else {
                format!("n={size}")
            };
            rows.push(format!("{series},{mean:.4},{std:.4}"));
        }
        // The self-adjustment diagnostic: fraction of plan choices that
        // were the safe sequential scan at this size.
        let safe = result
            .points
            .iter()
            .filter(|p| p.estimator != "histogram")
            .filter(|p| p.dominant_shape.contains("seqscan"))
            .count();
        let total = result
            .points
            .iter()
            .filter(|p| p.estimator != "histogram")
            .count();
        eprintln!("# n={size}: {safe}/{total} points dominated by the safe plan");
    }
    write_csv(
        &base,
        "fig12_sample_size_tradeoff",
        "sample_size,avg_time_s,std_dev_s",
        &rows,
    );
}
