//! Figure 6: the performance/predictability trade-off (analytical model).
//!
//! For each confidence threshold, the mean and standard deviation of
//! execution time over a workload whose selectivities are uniform on the
//! Figure 5 grid.  Expected shape: std-dev falls monotonically as T
//! rises; the lowest mean sits at a moderate threshold (the paper found
//! T=80% best, not the unbiased 50%).

use rqo_bench::analytic::{paper_selectivity_grid, AnalyticModel};
use rqo_bench::harness::{write_csv, RunConfig};
use rqo_core::{ConfidenceThreshold, Prior};

fn main() {
    let cfg = RunConfig::from_args();
    let model = AnalyticModel::paper_default();
    let grid = paper_selectivity_grid();
    let thresholds = [0.05, 0.20, 0.50, 0.80, 0.95];

    let mut best: Option<(f64, f64)> = None;
    let rows: Vec<String> = thresholds
        .iter()
        .map(|&t| {
            let stats =
                model.workload_stats(&grid, 1000, ConfidenceThreshold::new(t), Prior::Jeffreys);
            if best.is_none() || stats.mean() < best.unwrap().1 {
                best = Some((t, stats.mean()));
            }
            format!("{},{:.3},{:.3}", t * 100.0, stats.mean(), stats.std_dev())
        })
        .collect();
    write_csv(
        &cfg,
        "fig06_tradeoff",
        "threshold_pct,avg_time_s,std_dev_s",
        &rows,
    );
    let (t, m) = best.expect("nonempty sweep");
    println!(
        "# lowest average time at T={}% ({:.2}s) — paper: T=80% beats both extremes",
        t * 100.0,
        m
    );
}
