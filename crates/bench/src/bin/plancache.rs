//! Plan-cache throughput driver: cold vs. warm optimization latency and
//! concurrent plans/sec on a repeated workload, emitted as
//! `BENCH_plancache.json`.
//!
//! The workload models a production server replaying a fixed set of
//! parameterized queries (single-table Experiment-1 windows plus
//! three-way Experiment-2 joins) against one shared [`RobustDb`]:
//!
//! * **cold** — every optimization runs the full pipeline (access-path
//!   selection, DP join enumeration, posterior inversion);
//! * **warm** — the shared plan cache serves memoized plans under the
//!   canonical fingerprint, measured at 1, 2, and 8 threads.
//!
//! ```sh
//! cargo run --release -p rqo-bench --bin plancache -- \
//!     [--scale F] [--iters N] [--cold-rounds N] [--out PATH] [--tiny]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use robust_qo::RobustDb;
use rqo_datagen::workload::{exp1_lineitem_predicate, exp2_part_predicate};
use rqo_datagen::{TpchConfig, TpchData};
use rqo_exec::AggExpr;
use rqo_optimizer::Query;

struct Args {
    scale: f64,
    iters: usize,
    cold_rounds: usize,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            scale: 0.01,
            iters: 2_000,
            cold_rounds: 5,
            out: "BENCH_plancache.json".to_string(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                // CI smoke preset: small catalog, few iterations.
                "--tiny" => {
                    args.scale = 0.002;
                    args.iters = 200;
                    args.cold_rounds = 2;
                    i += 1;
                }
                flag => {
                    let value = argv
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("missing value after {flag}"));
                    match flag {
                        "--scale" => args.scale = value.parse().expect("--scale"),
                        "--iters" => args.iters = value.parse().expect("--iters"),
                        "--cold-rounds" => args.cold_rounds = value.parse().expect("--cold-rounds"),
                        "--out" => args.out = value.clone(),
                        other => panic!("unknown flag {other:?}"),
                    }
                    i += 2;
                }
            }
        }
        args
    }
}

/// The repeated workload: distinct parameterizations so the cache holds
/// several fingerprints, mixing cheap single-table planning with DP join
/// enumeration.
fn workload() -> Vec<Query> {
    let mut queries = Vec::new();
    for offset in [0i64, 30, 60, 90, 110, 130] {
        queries.push(
            Query::over(&["lineitem"])
                .filter("lineitem", exp1_lineitem_predicate(offset))
                .aggregate(AggExpr::sum("l_extendedprice", "revenue")),
        );
    }
    for window in [150i64, 212, 250, 295] {
        queries.push(
            Query::over(&["lineitem", "orders", "part"])
                .filter("part", exp2_part_predicate(window))
                .aggregate(AggExpr::count_star("n")),
        );
    }
    queries
}

struct WarmResult {
    threads: usize,
    plans: usize,
    wall_ns: u128,
}

impl WarmResult {
    fn avg_ns(&self) -> f64 {
        // Per-plan latency as experienced by one caller: total thread-time
        // divided by plans (each thread optimizes sequentially).
        self.wall_ns as f64 * self.threads as f64 / self.plans as f64
    }

    fn plans_per_sec(&self) -> f64 {
        self.plans as f64 / (self.wall_ns as f64 / 1e9)
    }
}

fn main() {
    let args = Args::parse();
    let data = TpchData::generate(&TpchConfig {
        scale_factor: args.scale,
        seed: 42,
    });
    let db = RobustDb::new(data.into_catalog());
    let queries = workload();

    // Cold planning: the full pipeline, bypassing the cache.
    let cold_start = Instant::now();
    let mut cold_plans = 0usize;
    for _ in 0..args.cold_rounds {
        for q in &queries {
            std::hint::black_box(db.optimizer().optimize(q));
            cold_plans += 1;
        }
    }
    let cold_ns = cold_start.elapsed().as_nanos();
    let cold_avg_ns = cold_ns as f64 / cold_plans as f64;

    // Warm the cache once, then measure repeated traffic at 1/2/8
    // threads against the shared database handle.
    for q in &queries {
        std::hint::black_box(db.optimize(q));
    }
    let mut warm = Vec::new();
    for threads in [1usize, 2, 8] {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..args.iters {
                        for q in &queries {
                            std::hint::black_box(db.optimize(q));
                        }
                    }
                });
            }
        });
        warm.push(WarmResult {
            threads,
            plans: threads * args.iters * queries.len(),
            wall_ns: start.elapsed().as_nanos(),
        });
    }

    let stats = db.cache_stats();
    let warm_1t_avg = warm[0].avg_ns();
    let speedup = cold_avg_ns / warm_1t_avg;

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"plancache\",").unwrap();
    writeln!(json, "  \"scale_factor\": {},", args.scale).unwrap();
    writeln!(json, "  \"distinct_queries\": {},", queries.len()).unwrap();
    writeln!(json, "  \"cold\": {{").unwrap();
    writeln!(json, "    \"plans\": {cold_plans},").unwrap();
    writeln!(json, "    \"avg_ns\": {cold_avg_ns:.1},").unwrap();
    writeln!(
        json,
        "    \"plans_per_sec\": {:.1}",
        cold_plans as f64 / (cold_ns as f64 / 1e9)
    )
    .unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"warm\": [").unwrap();
    for (i, w) in warm.iter().enumerate() {
        let comma = if i + 1 < warm.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"threads\": {}, \"plans\": {}, \"avg_ns\": {:.1}, \"plans_per_sec\": {:.1}}}{comma}",
            w.threads,
            w.plans,
            w.avg_ns(),
            w.plans_per_sec()
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"warm_over_cold_speedup\": {speedup:.2},").unwrap();
    writeln!(json, "  \"cache\": {{").unwrap();
    writeln!(json, "    \"hits\": {},", stats.hits).unwrap();
    writeln!(json, "    \"misses\": {},", stats.misses).unwrap();
    writeln!(json, "    \"hit_rate\": {:.6},", stats.hit_rate()).unwrap();
    writeln!(json, "    \"drift_evictions\": {},", stats.drift_evictions).unwrap();
    writeln!(
        json,
        "    \"epoch_invalidations\": {},",
        stats.epoch_invalidations
    )
    .unwrap();
    writeln!(json, "    \"entries\": {}", stats.entries).unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();

    print!("{json}");
    std::fs::write(&args.out, &json).expect("write BENCH json");
    eprintln!(
        "cold {:.1}µs/plan, warm {:.3}µs/plan ({speedup:.0}× speedup), wrote {}",
        cold_avg_ns / 1e3,
        warm_1t_avg / 1e3,
        args.out
    );
    assert!(
        speedup >= 5.0,
        "warm-cache optimize must be ≥ 5× faster than cold planning (got {speedup:.2}×)"
    );
}
