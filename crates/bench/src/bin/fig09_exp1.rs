//! Figure 9: Experiment 1 — the two-predicate `lineitem` query (§6.2.1),
//! run end-to-end through the real optimizer and simulated executor.
//!
//! * `fig09a`: average execution time vs. true joint selectivity for each
//!   confidence threshold plus the histogram baseline.
//! * `fig09b`: the per-estimator (average, std-dev) trade-off scatter.
//!
//! Expected shapes: the histogram baseline always picks index
//! intersection (its AVI estimate never moves) and degrades sharply at
//! higher selectivities; variance falls as T rises; the best average sits
//! around T=80%.

use rqo_bench::harness::{points_csv, run_scenario, summary_csv, write_csv, RunConfig};
use rqo_bench::scenarios::{exp1_queries, tpch_catalog};
use rqo_storage::CostParams;

fn main() {
    let cfg = RunConfig::from_args();
    let catalog = tpch_catalog(&cfg);
    let queries = exp1_queries(&catalog);
    eprintln!(
        "# exp1: {} query instances over lineitem ({} rows), {} repeats",
        queries.len(),
        catalog.table("lineitem").expect("lineitem").num_rows(),
        cfg.repeats
    );
    let result = run_scenario(&catalog, &CostParams::default(), &queries, &cfg);
    write_csv(
        &cfg,
        "fig09a_exp1_selectivity_vs_time",
        "estimator,selectivity,avg_time_s,std_dev_s,dominant_plan",
        &points_csv(&result),
    );
    write_csv(
        &cfg,
        "fig09b_exp1_tradeoff",
        "estimator,avg_time_s,std_dev_s",
        &summary_csv(&result),
    );
}
