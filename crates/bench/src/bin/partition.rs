//! Partition pruning and incremental-statistics driver, emitted as
//! `BENCH_partition.json`.
//!
//! Two claims are measured and self-asserted:
//!
//! * **Pruning wins** — on a 16-way range-partitioned table, a range
//!   query touching 2 partitions must run ≥ 2× faster (wall clock *and*
//!   simulated cost) through the pruned partition-wise scan than through
//!   the same scan forced to read every partition, and the optimizer
//!   must pick the pruned plan on its own.
//! * **Warm plans survive partial refresh** — re-sampling one table's
//!   statistics through `refresh_statistics_partial` must leave another
//!   table's warm plan-cache entry hitting, where the old global
//!   `refresh_statistics` retires every fingerprint in the system.
//!
//! ```sh
//! cargo run --release -p rqo-bench --bin partition -- \
//!     [--rows N] [--iters N] [--out PATH] [--tiny]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use rqo_exec::{execute, AggExpr, PhysicalPlan};
use rqo_expr::Expr;
use rqo_optimizer::Query;
use rqo_service::Engine;
use rqo_storage::{
    Catalog, CostParams, DataType, PartitionSpec, PartitionedTableBuilder, Schema, TableBuilder,
    Value,
};

const PARTS: usize = 16;

struct Args {
    rows: usize,
    iters: usize,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            rows: 2_000_000,
            iters: 30,
            out: "BENCH_partition.json".to_string(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                // CI smoke preset: small table, few iterations.
                "--tiny" => {
                    args.rows = 100_000;
                    args.iters = 10;
                    i += 1;
                }
                flag => {
                    let value = argv
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("missing value after {flag}"));
                    match flag {
                        "--rows" => args.rows = value.parse().expect("--rows"),
                        "--iters" => args.iters = value.parse().expect("--iters"),
                        "--out" => args.out = value.clone(),
                        other => panic!("unknown flag {other:?}"),
                    }
                    i += 2;
                }
            }
        }
        args
    }
}

/// `t(x, v, f)` with ascending partition key `x`, range-partitioned 16
/// ways, plus a small unpartitioned table `s` whose statistics refresh
/// must not disturb `t`'s warm plans.
fn catalog(rows: usize) -> Catalog {
    let spec = PartitionSpec::Range {
        column: "x".into(),
        bounds: (1..PARTS as i64)
            .map(|q| Value::Int(q * rows as i64 / PARTS as i64))
            .collect(),
    };
    let mut b = PartitionedTableBuilder::new(
        "t",
        Schema::from_pairs(&[
            ("x", DataType::Int),
            ("v", DataType::Int),
            ("f", DataType::Float),
        ]),
        spec,
    );
    for i in 0..rows as i64 {
        b.push_row(&[
            Value::Int(i),
            Value::Int(i * 7 % 1000),
            Value::Float((i % 97) as f64),
        ]);
    }
    let (table, layout) = b.finish();
    let mut cat = Catalog::new();
    cat.add_partitioned_table(table, layout).unwrap();
    let mut s = TableBuilder::new(
        "s",
        Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Int)]),
        1000,
    );
    for i in 0..1000i64 {
        s.push_row(&[Value::Int(i), Value::Int(i * 3 % 11)]);
    }
    cat.add_table(s.finish()).unwrap();
    cat
}

/// Wall-clock of `iters` serial executions, plus one simulated-cost
/// reading (identical every iteration by construction).
fn measure(plan: &PhysicalPlan, cat: &Catalog, params: &CostParams, iters: usize) -> (f64, f64) {
    let start = Instant::now();
    let mut rows = 0usize;
    for _ in 0..iters {
        let (batch, _) = execute(plan, cat, params);
        rows = std::hint::black_box(batch.rows.len());
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    let (_, cost) = execute(plan, cat, params);
    std::hint::black_box(rows);
    (wall_ms, cost.seconds(params) * 1e3)
}

fn main() {
    let args = Args::parse();
    let params = CostParams::default();
    let cat = catalog(args.rows);

    // A thin range straddling the partition-3/4 boundary: the scan must
    // read 2 of 16 partitions but matches only ~0.5% of the rows, so the
    // measured wall time is dominated by partitions examined, not by
    // materializing the result.
    let lo = args.rows as i64 / 4 - args.rows as i64 / 400;
    let hi = args.rows as i64 / 4 + args.rows as i64 / 400;
    let pred = Expr::col("x")
        .ge(Expr::lit(lo))
        .and(Expr::col("x").lt(Expr::lit(hi)));

    // The optimizer must prune on its own: plan the query through the
    // engine and read the surviving-partition list off the chosen plan.
    let mut engine = Engine::new(catalog(args.rows));
    let query = Query::over(&["t"])
        .filter("t", pred.clone())
        .aggregate(AggExpr::count_star("n"));
    let planned = engine.optimize(&query);
    let chosen = match &planned.plan {
        PhysicalPlan::HashAggregate { input, .. } => match input.as_ref() {
            PhysicalPlan::PartitionedScan { partitions, .. } => partitions.clone(),
            other => panic!("expected a partitioned scan under the aggregate, got {other:?}"),
        },
        other => panic!("expected an aggregate root, got {other:?}"),
    };

    // Pruned vs. forced-unpruned execution of the same scan, under a
    // count aggregate so the measured wall time is the scan itself, not
    // the (identical) materialization of the matching rows.
    let agg_over = |partitions: Vec<usize>| PhysicalPlan::HashAggregate {
        input: Box::new(PhysicalPlan::PartitionedScan {
            table: "t".into(),
            predicate: Some(pred.clone()),
            partitions,
            total_partitions: PARTS,
        }),
        group_by: vec![],
        aggregates: vec![AggExpr::count_star("n")],
    };
    let pruned_plan = agg_over(chosen.clone());
    let unpruned_plan = agg_over((0..PARTS).collect());
    let (pruned_wall_ms, pruned_sim_ms) = measure(&pruned_plan, &cat, &params, args.iters);
    let (unpruned_wall_ms, unpruned_sim_ms) = measure(&unpruned_plan, &cat, &params, args.iters);
    let wall_speedup = unpruned_wall_ms / pruned_wall_ms;
    let sim_speedup = unpruned_sim_ms / pruned_sim_ms;

    // Warm-cache survival: warm t's plan, partially refresh s, and the
    // entry must keep hitting; a full refresh must retire it.
    let opts = engine.query_exec_options(None, None);
    engine.run_opts(&query, &opts).unwrap();
    engine.run_opts(&query, &opts).unwrap();
    let hits_before = engine.cache_stats().hits;
    engine.refresh_statistics_partial("s", &[], 0xA11CE);
    engine.run_opts(&query, &opts).unwrap();
    let hits_after_partial = engine.cache_stats().hits;
    let survived = hits_after_partial == hits_before + 1;
    engine.refresh_statistics(0xD00D);
    engine.run_opts(&query, &opts).unwrap();
    let hits_after_full = engine.cache_stats().hits;
    let full_retired = hits_after_full == hits_after_partial;

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"partition\",").unwrap();
    writeln!(json, "  \"rows\": {},", args.rows).unwrap();
    writeln!(json, "  \"partitions\": {PARTS},").unwrap();
    writeln!(json, "  \"pruning\": {{").unwrap();
    writeln!(json, "    \"surviving_partitions\": {},", chosen.len()).unwrap();
    writeln!(json, "    \"pruned_wall_ms\": {pruned_wall_ms:.3},").unwrap();
    writeln!(json, "    \"unpruned_wall_ms\": {unpruned_wall_ms:.3},").unwrap();
    writeln!(json, "    \"wall_speedup\": {wall_speedup:.2},").unwrap();
    writeln!(json, "    \"pruned_simulated_ms\": {pruned_sim_ms:.3},").unwrap();
    writeln!(json, "    \"unpruned_simulated_ms\": {unpruned_sim_ms:.3},").unwrap();
    writeln!(json, "    \"simulated_speedup\": {sim_speedup:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"warm_cache\": {{").unwrap();
    writeln!(json, "    \"hits_before_refresh\": {hits_before},").unwrap();
    writeln!(
        json,
        "    \"hits_after_partial_refresh\": {hits_after_partial},"
    )
    .unwrap();
    writeln!(json, "    \"survived_partial_refresh\": {survived},").unwrap();
    writeln!(json, "    \"retired_by_full_refresh\": {full_retired}").unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();

    print!("{json}");
    std::fs::write(&args.out, &json).expect("write BENCH json");
    eprintln!(
        "pruning {}/{PARTS} parts: wall {wall_speedup:.1}×, simulated {sim_speedup:.1}×; \
         warm plan survived partial refresh: {survived}; wrote {}",
        chosen.len(),
        args.out
    );

    assert_eq!(
        chosen,
        vec![3usize, 4],
        "the optimizer must statically prune to partitions 3 and 4"
    );
    assert!(
        wall_speedup >= 2.0,
        "pruned scan must be ≥ 2× faster on wall clock (got {wall_speedup:.2}×)"
    );
    assert!(
        sim_speedup >= 2.0,
        "pruned scan must be ≥ 2× cheaper in simulated cost (got {sim_speedup:.2}×)"
    );
    assert!(
        survived,
        "warm plan must survive a partial refresh of another table"
    );
    assert!(full_retired, "full refresh must retire the warm plan");
}
