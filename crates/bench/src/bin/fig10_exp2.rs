//! Figure 10: Experiment 2 — the three-table join
//! `lineitem ⋈ orders ⋈ part` with a correlated `part` predicate
//! (§6.2.2), end to end.
//!
//! Expected shapes mirror Experiment 1 despite the very different query
//! class: a plan crossover in the 0.1–0.2% region (indexed nested loops →
//! hash pipeline), falling variance with rising T, best average around
//! T=50–80%, and a histogram baseline stuck on one plan.

use rqo_bench::harness::{points_csv, run_scenario, summary_csv, write_csv, RunConfig};
use rqo_bench::scenarios::{exp2_queries, tpch_catalog};
use rqo_storage::CostParams;

fn main() {
    let cfg = RunConfig::from_args();
    let catalog = tpch_catalog(&cfg);
    let queries = exp2_queries(&catalog);
    eprintln!(
        "# exp2: {} query instances over lineitem⋈orders⋈part, {} repeats",
        queries.len(),
        cfg.repeats
    );
    let result = run_scenario(&catalog, &CostParams::default(), &queries, &cfg);
    write_csv(
        &cfg,
        "fig10a_exp2_selectivity_vs_time",
        "estimator,selectivity,avg_time_s,std_dev_s,dominant_plan",
        &points_csv(&result),
    );
    write_csv(
        &cfg,
        "fig10b_exp2_tradeoff",
        "estimator,avg_time_s,std_dev_s",
        &summary_csv(&result),
    );
}
