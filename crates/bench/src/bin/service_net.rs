//! Network tail-latency driver: hundreds of concurrent loopback client
//! connections hammer one [`NetServer`] with a skewed query mix and
//! report p50/p99/p999 latency, queue depth, and admission outcomes to
//! `BENCH_service_net.json`.
//!
//! The run deliberately includes hostile traffic — forced mid-query
//! disconnects and malformed frames — and then **self-asserts**:
//!
//! * zero row mismatches against a precomputed reference,
//! * zero *unexpected* protocol errors (every injected poison frame is
//!   answered with exactly one typed error; clean clients see none),
//! * zero worker-slot leaks (`ServiceStats::slots_balanced`) and zero
//!   query panics once the server is quiescent.
//!
//! ```sh
//! cargo run --release -p rqo-bench --bin service_net -- \
//!     [--scale F] [--connections N] [--rounds N] [--out PATH] [--tiny]
//! ```

use std::fmt::Write as _;
use std::net::Shutdown;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use robust_qo::prelude::*;
use robust_qo::service::proto::write_frame;

struct Args {
    scale: f64,
    connections: usize,
    rounds: usize,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            scale: 0.005,
            connections: 128,
            rounds: 3,
            out: "BENCH_service_net.json".to_string(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                // CI smoke preset: small catalog, few connections.
                "--tiny" => {
                    args.scale = 0.002;
                    args.connections = 24;
                    args.rounds = 2;
                    i += 1;
                }
                flag => {
                    let value = argv
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("missing value after {flag}"));
                    match flag {
                        "--scale" => args.scale = value.parse().expect("--scale"),
                        "--connections" => args.connections = value.parse().expect("--connections"),
                        "--rounds" => args.rounds = value.parse().expect("--rounds"),
                        "--out" => args.out = value.clone(),
                        other => panic!("unknown flag {other:?}"),
                    }
                    i += 2;
                }
            }
        }
        args
    }
}

/// The skewed mix: mostly cheap single-table windows, occasionally an
/// expensive multi-way join — the traffic shape where convoying and
/// queue blowups live in the tail.
fn workload() -> (Vec<Query>, Vec<usize>) {
    let mut queries = Vec::new();
    for offset in [30i64, 60, 110] {
        queries.push(
            Query::over(&["lineitem"])
                .filter("lineitem", exp1_lineitem_predicate(offset))
                .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
                .aggregate(AggExpr::count_star("n")),
        );
    }
    for window in [150i64, 212] {
        queries.push(
            Query::over(&["lineitem", "orders", "part"])
                .filter("part", exp2_part_predicate(window))
                .aggregate(AggExpr::count_star("n")),
        );
    }
    // 8 picks per round: 6 cheap, 2 heavy (25% heavy tail).
    let mix = vec![0usize, 1, 3, 2, 0, 4, 1, 2];
    (queries, mix)
}

fn percentile(sorted_ns: &[u128], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

/// A deterministic unknown-tag poison frame.
fn poison_frame() -> Vec<u8> {
    let mut frame = Vec::new();
    write_frame(&mut frame, &[0x7Fu8, 1, 2, 3]).unwrap();
    frame
}

fn main() {
    let args = Args::parse();
    let catalog = TpchData::generate(&TpchConfig {
        scale_factor: args.scale,
        seed: 42,
    })
    .into_catalog();
    let (queries, mix) = workload();

    // Fewer slots than connections: the admission queue is the point.
    let service_config = ServiceConfig::default()
        .with_workers(2)
        .with_max_concurrent(4)
        .with_queue_capacity(2 * args.connections + 16)
        .with_queue_timeout(Duration::from_secs(600));
    let service = RobustDb::new(catalog).into_service(service_config);
    let net_config = NetServerConfig::default()
        .with_max_connections(2 * args.connections + 16)
        .with_tenant_quota(2 * args.connections);
    let mut server =
        NetServer::bind(service.clone(), "127.0.0.1:0", net_config).expect("bind loopback");
    let addr = server.local_addr();

    // Reference results (also warms the plan cache, as a server would
    // be warm under steady traffic).
    let warm = service.session();
    let expected: Vec<Vec<Vec<Value>>> = queries
        .iter()
        .map(|q| warm.run(q).expect("reference run").rows)
        .collect();
    let warm_runs = queries.len() as u64;

    let latencies: Mutex<Vec<u128>> = Mutex::new(Vec::new());
    let mismatches = AtomicU64::new(0);
    let unexpected_errors = AtomicU64::new(0);
    let injected_disconnects = AtomicU64::new(0);
    let injected_poison = AtomicU64::new(0);
    let poison_answered = AtomicU64::new(0);

    // Queue-depth sampler: polls the live admission gauge while the
    // storm runs.
    let sampling = AtomicBool::new(true);
    let depth_sum = AtomicU64::new(0);
    let depth_samples = AtomicU64::new(0);
    let depth_max = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        {
            let service = &service;
            let sampling = &sampling;
            let (depth_sum, depth_samples, depth_max) = (&depth_sum, &depth_samples, &depth_max);
            scope.spawn(move || {
                while sampling.load(Ordering::SeqCst) {
                    let (_, waiting) = service.admission_depth();
                    depth_sum.fetch_add(waiting as u64, Ordering::SeqCst);
                    depth_samples.fetch_add(1, Ordering::SeqCst);
                    depth_max.fetch_max(waiting as u64, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }

        // Inner scope so the clients are all joined *before* the outer
        // scope tries to join the sampler — which only exits once the
        // storm is over and `sampling` is cleared below.
        std::thread::scope(|scope| {
            for client_id in 0..args.connections {
                let queries = &queries;
                let mix = &mix;
                let expected = &expected;
                let latencies = &latencies;
                let mismatches = &mismatches;
                let unexpected_errors = &unexpected_errors;
                let injected_disconnects = &injected_disconnects;
                let injected_poison = &injected_poison;
                let poison_answered = &poison_answered;
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("connect");
                    client
                        .hello(&format!("tenant-{}", client_id % 8))
                        .expect("hello");
                    let mut local_lat = Vec::with_capacity(args.rounds * mix.len());
                    for round in 0..args.rounds {
                        // Mid-storm hostility: after the first round — while
                        // the admission queue is hot — a slice of the fleet
                        // opens a second connection, fires a heavy query,
                        // and yanks the socket so the disconnect-cancel
                        // path runs under real load.
                        if round == 1 && client_id % 16 == 5 {
                            injected_disconnects.fetch_add(1, Ordering::SeqCst);
                            let mut victim = NetClient::connect(addr).expect("connect victim");
                            let req = Request::Run {
                                id: 999,
                                mode: RunMode::Run,
                                deadline_ms: 0,
                                query: queries[3].clone(),
                            };
                            let mut frame = Vec::new();
                            write_frame(&mut frame, &req.encode()).unwrap();
                            victim.send_raw(&frame).expect("send doomed run");
                            std::thread::sleep(Duration::from_millis(2));
                            let _ = victim.stream().shutdown(Shutdown::Both);
                        }
                        for (k, &slot) in mix.iter().enumerate() {
                            let qi = (slot + client_id + round + k) % queries.len();
                            let t0 = Instant::now();
                            match client.run(&queries[qi]) {
                                Ok(reply) => {
                                    local_lat.push(t0.elapsed().as_nanos());
                                    if reply.rows != expected[qi] {
                                        mismatches.fetch_add(1, Ordering::SeqCst);
                                    }
                                }
                                Err(e) => {
                                    eprintln!("client {client_id}: unexpected error: {e}");
                                    unexpected_errors.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                        }
                    }
                    latencies
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .extend(local_lat);

                    // Hostile epilogue from another slice of the fleet: a
                    // malformed frame that must draw exactly one typed
                    // protocol error.
                    if client_id % 16 == 11 {
                        injected_poison.fetch_add(1, Ordering::SeqCst);
                        let mut attacker = NetClient::connect(addr).expect("connect attacker");
                        attacker.send_raw(&poison_frame()).expect("send poison");
                        match attacker.recv() {
                            Ok(Response::Error {
                                code: ErrorCode::Protocol,
                                ..
                            }) => {
                                poison_answered.fetch_add(1, Ordering::SeqCst);
                            }
                            other => {
                                eprintln!("client {client_id}: poison got {other:?}");
                            }
                        }
                    }
                });
            }
        });
        sampling.store(false, Ordering::SeqCst);
    });
    let wall_s = start.elapsed().as_secs_f64();

    // Quiesce: the doomed disconnect queries may still be mid-cancel.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = service.stats();
        if server.stats().active == 0 && stats.slots_balanced() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never quiesced: {stats} / {}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut sorted = latencies
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    sorted.sort_unstable();
    let stats = service.stats();
    let net = server.stats();
    let total = args.connections * args.rounds * mix.len();

    // Self-checks — the acceptance gate.
    assert_eq!(sorted.len(), total, "lost or duplicated query executions");
    assert_eq!(mismatches.load(Ordering::SeqCst), 0, "corrupted rows");
    assert_eq!(
        unexpected_errors.load(Ordering::SeqCst),
        0,
        "clean clients saw errors"
    );
    assert_eq!(
        poison_answered.load(Ordering::SeqCst),
        injected_poison.load(Ordering::SeqCst),
        "a poison frame went unanswered"
    );
    assert_eq!(
        net.protocol_errors,
        injected_poison.load(Ordering::SeqCst),
        "protocol errors beyond the injected poison: {net}"
    );
    assert!(stats.slots_balanced(), "worker slots leaked: {stats}");
    assert_eq!(stats.panicked, 0, "a query panicked: {stats}");

    let samples = depth_samples.load(Ordering::SeqCst).max(1);
    let mean_depth = depth_sum.load(Ordering::SeqCst) as f64 / samples as f64;
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    let p999 = percentile(&sorted, 0.999);

    eprintln!(
        "connections={} queries={} wall={:.2}s {:.0} q/s  p50 {:.2}ms p99 {:.2}ms p999 {:.2}ms  \
         peak_queued={} mean_depth={:.1}",
        args.connections,
        total,
        wall_s,
        total as f64 / wall_s,
        p50,
        p99,
        p999,
        stats.peak_queued,
        mean_depth
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"service_net\",").unwrap();
    writeln!(json, "  \"scale_factor\": {},", args.scale).unwrap();
    writeln!(json, "  \"connections\": {},", args.connections).unwrap();
    writeln!(json, "  \"rounds\": {},", args.rounds).unwrap();
    writeln!(json, "  \"queries\": {total},").unwrap();
    writeln!(json, "  \"wall_s\": {wall_s:.4},").unwrap();
    writeln!(json, "  \"queries_per_sec\": {:.1},", total as f64 / wall_s).unwrap();
    writeln!(json, "  \"latency_ms\": {{").unwrap();
    writeln!(json, "    \"p50\": {p50:.3},").unwrap();
    writeln!(json, "    \"p99\": {p99:.3},").unwrap();
    writeln!(json, "    \"p999\": {p999:.3}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"queue_depth\": {{").unwrap();
    writeln!(json, "    \"peak\": {},", stats.peak_queued).unwrap();
    writeln!(
        json,
        "    \"sampled_max\": {},",
        depth_max.load(Ordering::SeqCst)
    )
    .unwrap();
    writeln!(json, "    \"sampled_mean\": {mean_depth:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"hostile_traffic\": {{").unwrap();
    writeln!(
        json,
        "    \"forced_disconnects\": {},",
        injected_disconnects.load(Ordering::SeqCst)
    )
    .unwrap();
    writeln!(
        json,
        "    \"malformed_frames\": {},",
        injected_poison.load(Ordering::SeqCst)
    )
    .unwrap();
    writeln!(
        json,
        "    \"malformed_answered\": {},",
        poison_answered.load(Ordering::SeqCst)
    )
    .unwrap();
    writeln!(json, "    \"unexpected_protocol_errors\": 0,").unwrap();
    writeln!(json, "    \"worker_slot_leaks\": 0").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(
        json,
        "  \"service_stats\": {{\"admitted\": {}, \"queued\": {}, \"peak_queued\": {}, \
         \"rejected_queue_full\": {}, \"rejected_queue_timeout\": {}, \"completed\": {}, \
         \"cancelled\": {}, \"deadline_exceeded\": {}, \"stopped_in_queue\": {}, \
         \"panicked\": {}}},",
        stats.admitted,
        stats.queued,
        stats.peak_queued,
        stats.rejected_queue_full,
        stats.rejected_queue_timeout,
        stats.completed,
        stats.cancelled,
        stats.deadline_exceeded,
        stats.stopped_in_queue,
        stats.panicked
    )
    .unwrap();
    writeln!(
        json,
        "  \"net_stats\": {{\"accepted\": {}, \"rejected_conn_limit\": {}, \
         \"protocol_errors\": {}, \"queries_ok\": {}, \"queries_err\": {}, \
         \"tenant_rejections\": {}, \"disconnect_cancels\": {}}},",
        net.accepted,
        net.rejected_conn_limit,
        net.protocol_errors,
        net.queries_ok,
        net.queries_err,
        net.tenant_rejections,
        net.disconnect_cancels
    )
    .unwrap();
    writeln!(json, "  \"warm_runs\": {warm_runs},").unwrap();
    writeln!(json, "  \"self_check\": \"pass\"").unwrap();
    writeln!(json, "}}").unwrap();

    server.shutdown();
    print!("{json}");
    std::fs::write(&args.out, &json).expect("write BENCH json");
    eprintln!("wrote {}", args.out);
}
