//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Collapse strategy** — the paper's percentile rule vs. the
//!    posterior mean (the least-expected-cost literature, for linear
//!    costs) vs. the raw maximum-likelihood estimate, on Experiment 1.
//! 2. **Prior** — Jeffreys vs. uniform, on the same workload (expected:
//!    indistinguishable, per Figure 4).
//! 3. **Join synopsis vs. independent per-table samples with AVI** — on
//!    the Experiment 2 join, by estimation accuracy (the reason join
//!    synopses exist, §3.2).

use std::sync::Arc;

use rqo_bench::harness::{write_csv, RunConfig};
use rqo_bench::scenarios::{exp1_queries, tpch_catalog};
use rqo_core::{
    CardinalityEstimator, ConfidenceThreshold, EstimationRequest, EstimationStrategy,
    EstimatorConfig, OracleEstimator, Prior, RobustEstimator,
};
use rqo_datagen::workload;
use rqo_math::RunningStats;
use rqo_optimizer::{detect_sorted_columns, Optimizer};
use rqo_stats::SynopsisRepository;
use rqo_storage::CostParams;

fn main() {
    let cfg = RunConfig::from_args();
    let catalog = tpch_catalog(&cfg);
    let sorted = detect_sorted_columns(&catalog);
    let params = CostParams::default();
    let queries = exp1_queries(&catalog);

    // --- Ablation 1 & 2: strategy and prior, via executed workload cost.
    let strategies: Vec<(&str, EstimatorConfig)> = vec![
        (
            "percentile-T80-jeffreys",
            EstimatorConfig::with_threshold(ConfidenceThreshold::new(0.8)),
        ),
        (
            "percentile-T80-uniform",
            EstimatorConfig {
                prior: Prior::Uniform,
                ..EstimatorConfig::with_threshold(ConfidenceThreshold::new(0.8))
            },
        ),
        (
            "posterior-mean",
            EstimatorConfig {
                strategy: EstimationStrategy::PosteriorMean,
                ..EstimatorConfig::default()
            },
        ),
        (
            "maximum-likelihood",
            EstimatorConfig {
                strategy: EstimationStrategy::MaximumLikelihood,
                ..EstimatorConfig::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, config) in &strategies {
        let mut pooled = RunningStats::new();
        let mut cache: std::collections::HashMap<(usize, String), f64> =
            std::collections::HashMap::new();
        for r in 0..cfg.repeats {
            let repo = Arc::new(SynopsisRepository::build_all(
                &catalog,
                cfg.sample_size,
                cfg.seed.wrapping_add(r as u64 * 104729),
            ));
            let est = RobustEstimator::new(repo, *config);
            let opt = Optimizer::with_metadata(
                Arc::clone(&catalog),
                params,
                Arc::new(est),
                sorted.clone(),
            );
            for (qi, (_, q)) in queries.iter().enumerate() {
                let planned = opt.optimize(q);
                let key = (qi, planned.plan.explain());
                let secs = *cache.entry(key).or_insert_with(|| {
                    rqo_exec::execute(&planned.plan, &catalog, &params)
                        .1
                        .seconds(&params)
                });
                pooled.push(secs);
            }
        }
        rows.push(format!(
            "{label},{:.4},{:.4}",
            pooled.mean(),
            pooled.std_dev()
        ));
    }
    write_csv(
        &cfg,
        "ablation_strategies",
        "strategy,avg_time_s,std_dev_s",
        &rows,
    );

    // --- Ablation 3: synopsis vs. AVI-composed estimates, by accuracy on
    // the Experiment 2 join selectivity.
    let oracle = OracleEstimator::new(Arc::clone(&catalog));
    let repo = Arc::new(SynopsisRepository::build_all(
        &catalog,
        cfg.sample_size,
        cfg.seed,
    ));
    let robust = RobustEstimator::new(
        Arc::clone(&repo),
        EstimatorConfig {
            strategy: EstimationStrategy::MaximumLikelihood,
            ..EstimatorConfig::default()
        },
    );
    let mut rows = Vec::new();
    for start in workload::exp2_window_starts() {
        let pred = workload::exp2_part_predicate(start);
        let tables = vec!["lineitem", "orders", "part"];
        let request = EstimationRequest::new(tables.clone(), vec![("part", &pred)]);
        let truth = oracle.estimate(&request).selectivity;
        let synopsis_est = robust.estimate(&request).selectivity;
        // AVI composition: estimate the part predicate on part's own
        // sample, then assume independence across the join (here the FK
        // is uniform so AVI is accidentally unbiased for the mean, but
        // each marginal conjunct is still estimated independently).
        let conjuncts: Vec<&rqo_expr::Expr> = pred.conjuncts();
        let avi: f64 = conjuncts
            .iter()
            .map(|c| {
                let req = EstimationRequest::single("part", c);
                robust.estimate(&req).selectivity
            })
            .product();
        rows.push(format!("{start},{truth:.5},{synopsis_est:.5},{avi:.5}"));
    }
    write_csv(
        &cfg,
        "ablation_synopsis_vs_avi",
        "window_start,true_selectivity,synopsis_estimate,avi_estimate",
        &rows,
    );
    println!("# AVI multiplies per-conjunct marginals and cannot track the joint selectivity.");
}
