//! Per-kernel throughput driver: vectorized columnar kernels vs. the
//! row-at-a-time baseline at morsel granularity, emitted as
//! `BENCH_kernels.json`.
//!
//! Four hot kernels are measured over a synthetic table, each driven
//! through the morselized executor path (one thread, 4096-row morsels —
//! the same chunking the parallel executor uses, without thread-pool
//! noise):
//!
//! * **filter** — predicated sequential scan: typed `select` over
//!   zero-copy column views + gather, vs. per-row materialize + `eval_bool`;
//! * **hash_agg** — grouped aggregation: column-at-a-time typed update
//!   loops vs. per-row `Value` dispatch;
//! * **hash_join** — typed-key build/probe vs. `Value`-keyed hashing;
//! * **project** — column-at-a-time output assembly vs. row-at-a-time.
//!
//! The run self-asserts the tentpole acceptance bar: filter or hash_agg
//! must be at least 2× faster than the row baseline.
//!
//! ```sh
//! cargo run --release -p rqo-bench --bin kernels -- \
//!     [--rows N] [--iters N] [--out PATH] [--tiny]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use rqo_exec::kernels::project_batch;
use rqo_exec::{AggExpr, Batch, ExecOptions};
use rqo_expr::Expr;
use rqo_storage::{Catalog, CostParams, CostTracker, DataType, Schema, TableBuilder, Value};

/// Morsel size used for every measurement: the executor's granularity.
const MORSEL: usize = 4096;

struct Args {
    rows: usize,
    iters: usize,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            rows: 262_144,
            iters: 10,
            out: "BENCH_kernels.json".to_string(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                // CI smoke preset: small table, few iterations.
                "--tiny" => {
                    args.rows = 16_384;
                    args.iters = 3;
                    i += 1;
                }
                flag => {
                    let value = argv
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("missing value after {flag}"));
                    match flag {
                        "--rows" => args.rows = value.parse().expect("--rows"),
                        "--iters" => args.iters = value.parse().expect("--iters"),
                        "--out" => args.out = value.clone(),
                        other => panic!("unknown flag {other:?}"),
                    }
                    i += 2;
                }
            }
        }
        args
    }
}

struct KernelResult {
    name: &'static str,
    rows: usize,
    iters: usize,
    row_ns: u128,
    col_ns: u128,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.row_ns as f64 / self.col_ns as f64
    }

    fn mrows_per_sec(&self, ns: u128) -> f64 {
        (self.rows * self.iters) as f64 / (ns as f64 / 1e9) / 1e6
    }
}

/// Synthetic table `k(id, grp, val, tag)`: 64-value group domain, an
/// integer-valued float measure, an 8-value string tag.
fn build_catalog(n: usize) -> Catalog {
    let mut b = TableBuilder::new(
        "k",
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("grp", DataType::Int),
            ("val", DataType::Float),
            ("tag", DataType::Str),
        ]),
        n,
    );
    let tags = ["ax", "bx", "cx", "dx", "ex", "fx", "gx", "hx"];
    for i in 0..n as i64 {
        b.push_row(&[
            Value::Int(i),
            Value::Int(i % 64),
            Value::Float((i * 7 % 1000) as f64 * 0.5),
            Value::str(tags[(i % 8) as usize]),
        ]);
    }
    let mut cat = Catalog::new();
    cat.add_table(b.finish()).unwrap();
    cat
}

/// 64-row build side keyed like `k.grp`.
fn build_side() -> Batch {
    let schema = Schema::from_pairs(&[("bk", DataType::Int), ("bw", DataType::Int)]);
    let rows = (0..64i64)
        .map(|i| vec![Value::Int(i), Value::Int(i * 11)])
        .collect();
    Batch::new(schema, rows)
}

fn main() {
    let args = Args::parse();
    let cat = build_catalog(args.rows);
    let params = CostParams::default();
    // One inline worker, fixed morsel size: measures kernel work at the
    // executor's chunk granularity without thread-pool scheduling noise.
    let opts = ExecOptions::with_threads(1).with_morsel_size(MORSEL);
    // ~5% selective: the row scan materializes every row before testing
    // the predicate, the columnar scan gathers only the survivors — the
    // access-pattern asymmetry the vectorized path exists for.
    let pred = Expr::col("val").lt(Expr::lit(25.0));
    let mut results = Vec::new();

    // --- filter: predicated scan, row vs columnar -------------------
    {
        let (mut row_ns, mut col_ns) = (0u128, 0u128);
        for round in 0..args.iters + 1 {
            let mut t = CostTracker::new();
            let start = Instant::now();
            let out = rqo_exec::scan::seq_scan_par(&cat, &params, &mut t, "k", Some(&pred), &opts)
                .unwrap();
            let ns = start.elapsed().as_nanos();
            std::hint::black_box(out);
            let mut t = CostTracker::new();
            let start = Instant::now();
            let out = rqo_exec::scan::seq_scan_columnar_par(
                &cat,
                &params,
                &mut t,
                "k",
                Some(&pred),
                &opts,
            )
            .unwrap();
            let cns = start.elapsed().as_nanos();
            std::hint::black_box(out);
            if round > 0 {
                // Round 0 is warmup.
                row_ns += ns;
                col_ns += cns;
            }
        }
        results.push(KernelResult {
            name: "filter",
            rows: args.rows,
            iters: args.iters,
            row_ns,
            col_ns,
        });
    }

    // Materialize the full table once as the input batch for the
    // batch-consuming kernels below.
    let mut sink = CostTracker::new();
    let input = rqo_exec::scan::seq_scan(&cat, &params, &mut sink, "k", None);

    // --- hash_agg: grouped aggregation, row vs columnar -------------
    {
        let group = vec!["grp".to_string()];
        let aggs = vec![
            AggExpr::sum("val", "s"),
            AggExpr::count_star("n"),
            AggExpr::avg("val", "m"),
            AggExpr::min("val", "lo"),
            AggExpr::max("val", "hi"),
        ];
        let (mut row_ns, mut col_ns) = (0u128, 0u128);
        for round in 0..args.iters + 1 {
            let batch = input.clone();
            let mut t = CostTracker::new();
            let start = Instant::now();
            let out =
                rqo_exec::agg::hash_aggregate_par(&mut t, batch, &group, &aggs, &opts).unwrap();
            let ns = start.elapsed().as_nanos();
            std::hint::black_box(out);
            let batch = input.clone();
            let mut t = CostTracker::new();
            let start = Instant::now();
            let out =
                rqo_exec::agg::hash_aggregate_columnar_par(&mut t, batch, &group, &aggs, &opts)
                    .unwrap();
            let cns = start.elapsed().as_nanos();
            std::hint::black_box(out);
            if round > 0 {
                row_ns += ns;
                col_ns += cns;
            }
        }
        results.push(KernelResult {
            name: "hash_agg",
            rows: args.rows,
            iters: args.iters,
            row_ns,
            col_ns,
        });
    }

    // --- hash_join: 64-row build, full-table probe ------------------
    {
        let build = build_side();
        let (mut row_ns, mut col_ns) = (0u128, 0u128);
        for round in 0..args.iters + 1 {
            let (b, p) = (build.clone(), input.clone());
            let mut t = CostTracker::new();
            let start = Instant::now();
            let out = rqo_exec::join::hash_join_par(&mut t, b, p, "bk", "grp", &opts).unwrap();
            let ns = start.elapsed().as_nanos();
            std::hint::black_box(out);
            let (b, p) = (build.clone(), input.clone());
            let mut t = CostTracker::new();
            let start = Instant::now();
            let out =
                rqo_exec::join::hash_join_columnar_par(&mut t, b, p, "bk", "grp", &opts).unwrap();
            let cns = start.elapsed().as_nanos();
            std::hint::black_box(out);
            if round > 0 {
                row_ns += ns;
                col_ns += cns;
            }
        }
        results.push(KernelResult {
            name: "hash_join",
            rows: args.rows,
            iters: args.iters,
            row_ns,
            col_ns,
        });
    }

    // --- project: three-column reorder ------------------------------
    {
        let ordinals = [2usize, 1, 0];
        let schema = input.schema.project(&ordinals);
        let (mut row_ns, mut col_ns) = (0u128, 0u128);
        for round in 0..args.iters + 1 {
            let batch = input.clone();
            let start = Instant::now();
            // Row baseline, chunked at the same morsel granularity.  The
            // input batch is dropped inside the timed region, exactly as
            // the kernel (which consumes its input) pays for it.
            let parts: Vec<Vec<Vec<Value>>> = batch
                .rows
                .chunks(MORSEL)
                .map(|chunk| {
                    chunk
                        .iter()
                        .map(|row| ordinals.iter().map(|&i| row[i].clone()).collect())
                        .collect()
                })
                .collect();
            drop(batch);
            let out = Batch::from_parts(schema.clone(), parts);
            let ns = start.elapsed().as_nanos();
            std::hint::black_box(out);
            let batch = input.clone();
            let start = Instant::now();
            let out = project_batch(batch, &ordinals, schema.clone(), Some(&opts)).unwrap();
            let cns = start.elapsed().as_nanos();
            std::hint::black_box(out);
            if round > 0 {
                row_ns += ns;
                col_ns += cns;
            }
        }
        results.push(KernelResult {
            name: "project",
            rows: args.rows,
            iters: args.iters,
            row_ns,
            col_ns,
        });
    }

    let gate = results
        .iter()
        .filter(|r| r.name == "filter" || r.name == "hash_agg")
        .map(KernelResult::speedup)
        .fold(0.0f64, f64::max);

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"kernels\",").unwrap();
    writeln!(json, "  \"rows\": {},", args.rows).unwrap();
    writeln!(json, "  \"morsel_size\": {MORSEL},").unwrap();
    writeln!(json, "  \"kernels\": [").unwrap();
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"rows\": {}, \"iters\": {}, \"row_mrows_per_sec\": {:.2}, \"columnar_mrows_per_sec\": {:.2}, \"speedup\": {:.2}}}{comma}",
            r.name,
            r.rows,
            r.iters,
            r.mrows_per_sec(r.row_ns),
            r.mrows_per_sec(r.col_ns),
            r.speedup()
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"filter_or_agg_max_speedup\": {gate:.2}").unwrap();
    writeln!(json, "}}").unwrap();

    print!("{json}");
    std::fs::write(&args.out, &json).expect("write BENCH json");
    for r in &results {
        eprintln!(
            "{:9} {:6.1} Mrows/s row → {:6.1} Mrows/s columnar ({:.2}×)",
            r.name,
            r.mrows_per_sec(r.row_ns),
            r.mrows_per_sec(r.col_ns),
            r.speedup()
        );
    }
    eprintln!("wrote {}", args.out);
    assert!(
        gate >= 2.0,
        "columnar filter or hash_agg must be ≥ 2× the row baseline at morsel granularity (got {gate:.2}×)"
    );
}
