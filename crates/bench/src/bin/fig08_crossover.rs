//! Figure 8: crossover at higher selectivity (analytical model, §5.2.3).
//!
//! The cost model is perturbed so the plan crossover sits at ≈5.2%
//! selectivity.  Expected execution time vs. selectivity (0–20%) for
//! thresholds 5/50/95%, plus the raw plan cost lines.  Expected shape:
//! the threshold curves are nearly indistinguishable — estimation is easy
//! when crossovers sit at large selectivities, which is why the paper's
//! experiments focus on the hard low-selectivity regime.

use rqo_bench::analytic::AnalyticModel;
use rqo_bench::harness::{write_csv, RunConfig};
use rqo_core::{ConfidenceThreshold, Prior};

fn main() {
    let cfg = RunConfig::from_args();
    let model = AnalyticModel::high_crossover();
    let thresholds = [0.05, 0.50, 0.95];
    let grid: Vec<f64> = (0..=40).map(|i| i as f64 * 0.005).collect(); // 0..20%

    let rows: Vec<String> = grid
        .iter()
        .map(|&p| {
            let means: Vec<String> = thresholds
                .iter()
                .map(|&t| {
                    format!(
                        "{:.3}",
                        model
                            .execution_stats(p, 1000, ConfidenceThreshold::new(t), Prior::Jeffreys)
                            .mean()
                    )
                })
                .collect();
            let p1 = model.plans[0].cost(p, model.n_rows);
            let p2 = model.plans[1].cost(p, model.n_rows);
            format!("{:.3},{},{:.3},{:.3}", p, means.join(","), p1, p2)
        })
        .collect();
    write_csv(
        &cfg,
        "fig08_high_crossover",
        "selectivity,T5,T50,T95,planP1,planP2",
        &rows,
    );

    println!(
        "# crossover p'_c = {:.2}% (paper: ~5.2%)",
        model.crossover() * 100.0
    );
    // Max relative spread between thresholds across the grid.
    let mut max_rel = 0.0f64;
    for &p in &grid {
        let ms: Vec<f64> = thresholds
            .iter()
            .map(|&t| {
                model
                    .execution_stats(p, 1000, ConfidenceThreshold::new(t), Prior::Jeffreys)
                    .mean()
            })
            .collect();
        let hi = ms.iter().fold(f64::MIN, |a, &b| a.max(b));
        let lo = ms.iter().fold(f64::MAX, |a, &b| a.min(b));
        max_rel = max_rel.max((hi - lo) / lo);
    }
    println!(
        "# max relative spread across thresholds: {:.2}% (paper: thresholds barely matter)",
        max_rel * 100.0
    );
}
