//! §6.1: estimation overhead and storage parity.
//!
//! Measures (wall-clock) query-optimization time under the robust
//! sampling estimator vs. the histogram baseline, and compares the bytes
//! of summary statistics each maintains.  The paper measured 30–40% more
//! optimization time for an unoptimized sampling prototype, with a
//! 500-tuple sample occupying about the same space as 250-bucket
//! histograms on each attribute.

use std::sync::Arc;
use std::time::Instant;

use rqo_bench::harness::{write_csv, RunConfig};
use rqo_bench::scenarios::{exp1_queries, exp2_queries, tpch_catalog};
use rqo_core::{
    CardinalityEstimator, ConfidenceThreshold, EstimatorConfig, HistogramEstimator, RobustEstimator,
};
use rqo_optimizer::{detect_sorted_columns, Optimizer};
use rqo_stats::SynopsisRepository;
use rqo_storage::CostParams;

fn main() {
    let cfg = RunConfig::from_args();
    let catalog = tpch_catalog(&cfg);
    let sorted = detect_sorted_columns(&catalog);

    let repo = Arc::new(SynopsisRepository::build_all(
        &catalog,
        cfg.sample_size,
        cfg.seed,
    ));
    let hist = HistogramEstimator::build_default(&catalog);
    println!(
        "# storage: synopses {} bytes vs histograms {} bytes (paper: rough parity per column)",
        repo.stored_bytes(),
        hist.stored_bytes()
    );

    let robust: Arc<dyn CardinalityEstimator> = Arc::new(RobustEstimator::new(
        Arc::clone(&repo),
        EstimatorConfig::with_threshold(ConfidenceThreshold::new(0.8)),
    ));
    let hist: Arc<dyn CardinalityEstimator> = Arc::new(hist);

    let mut queries = exp1_queries(&catalog);
    queries.extend(exp2_queries(&catalog));
    let reps = 20usize;

    let mut rows = Vec::new();
    let mut times = Vec::new();
    for (label, est) in [("robust-sampling", &robust), ("histogram-avi", &hist)] {
        let opt = Optimizer::with_metadata(
            Arc::clone(&catalog),
            CostParams::default(),
            Arc::clone(est),
            sorted.clone(),
        );
        // Warm up (first pass populates caches and page maps).
        for (_, q) in &queries {
            let _ = opt.optimize(q);
        }
        let start = Instant::now();
        let mut calls = 0usize;
        for _ in 0..reps {
            for (_, q) in &queries {
                calls += opt.optimize(q).estimator_calls;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let per_query_us = elapsed * 1e6 / (reps * queries.len()) as f64;
        times.push(per_query_us);
        rows.push(format!(
            "{label},{per_query_us:.1},{}",
            calls / (reps * queries.len())
        ));
    }
    write_csv(
        &cfg,
        "overhead_optimization",
        "estimator,optimize_time_us_per_query,estimator_calls_per_query",
        &rows,
    );
    println!(
        "# robust / histogram optimization-time ratio: {:.2}x (paper: 1.3-1.4x on an unoptimized prototype)",
        times[0] / times[1]
    );
}
