//! Figure 5: effect of the confidence threshold (analytical model, §5.2.1).
//!
//! Expected execution time vs. true selectivity (0–1% in 0.05% steps) for
//! confidence thresholds 5/20/50/80/95%, with a 1000-tuple sample.  Low
//! thresholds overshoot at high selectivities (they gamble on the index
//! plan); T=95% never gambles and pins to the sequential scan.

use rqo_bench::analytic::{paper_selectivity_grid, AnalyticModel};
use rqo_bench::harness::{write_csv, RunConfig};
use rqo_core::{ConfidenceThreshold, Prior};

fn main() {
    let cfg = RunConfig::from_args();
    let model = AnalyticModel::paper_default();
    let thresholds = [0.05, 0.20, 0.50, 0.80, 0.95];
    let grid = paper_selectivity_grid();

    let rows: Vec<String> = grid
        .iter()
        .map(|&p| {
            let means: Vec<String> = thresholds
                .iter()
                .map(|&t| {
                    let stats = model.execution_stats(
                        p,
                        1000,
                        ConfidenceThreshold::new(t),
                        Prior::Jeffreys,
                    );
                    format!("{:.3}", stats.mean())
                })
                .collect();
            format!("{:.4},{}", p, means.join(","))
        })
        .collect();
    let header = format!(
        "selectivity,{}",
        thresholds
            .iter()
            .map(|t| format!("T{}", t * 100.0))
            .collect::<Vec<_>>()
            .join(",")
    );
    write_csv(&cfg, "fig05_confidence_threshold", &header, &rows);

    // The T=95% property the paper calls out explicitly.
    let p95 = model.plan_probabilities(
        0.0005,
        1000,
        ConfidenceThreshold::new(0.95),
        Prior::Jeffreys,
    );
    println!(
        "# P(risky plan | T=95%, p=0.05%) = {:.2e} (paper: never selected)",
        p95[1]
    );
    println!(
        "# crossover p_c = {:.4}% (paper: ~0.14%)",
        model.crossover() * 100.0
    );
}
