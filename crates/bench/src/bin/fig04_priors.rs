//! Figure 4: "Sample Size Matters, Prior Doesn't."
//!
//! Posterior densities for a 10%-matching predicate observed through a
//! 100-tuple sample (k = 10) and a 500-tuple sample (k = 50), each under
//! the uniform and the Jeffreys prior.  The two priors must be nearly
//! indistinguishable while the two sample sizes differ sharply.

use rqo_bench::harness::{write_csv, RunConfig};
use rqo_core::{Prior, SelectivityPosterior};

fn main() {
    let cfg = RunConfig::from_args();
    let cases = [
        ("n100_uniform", 10usize, 100usize, Prior::Uniform),
        ("n100_jeffreys", 10, 100, Prior::Jeffreys),
        ("n500_uniform", 50, 500, Prior::Uniform),
        ("n500_jeffreys", 50, 500, Prior::Jeffreys),
    ];
    let posteriors: Vec<(&str, SelectivityPosterior)> = cases
        .iter()
        .map(|(name, k, n, prior)| {
            (
                *name,
                SelectivityPosterior::from_observation(*k, *n, *prior),
            )
        })
        .collect();

    // Density over selectivity 0–25% (the paper's x-axis).
    let rows: Vec<String> = (0..=250)
        .map(|i| {
            let s = i as f64 / 1000.0;
            let densities: Vec<String> = posteriors
                .iter()
                .map(|(_, p)| format!("{:.5}", p.pdf(s)))
                .collect();
            format!("{:.3},{}", s, densities.join(","))
        })
        .collect();
    let header = format!(
        "selectivity,{}",
        cases.iter().map(|c| c.0).collect::<Vec<_>>().join(",")
    );
    write_csv(&cfg, "fig04_priors", &header, &rows);

    // Quantified takeaways.
    let q =
        |p: &SelectivityPosterior, t: f64| p.at_threshold(rqo_core::ConfidenceThreshold::new(t));
    let max_prior_gap_100 = [0.05, 0.2, 0.5, 0.8, 0.95]
        .iter()
        .map(|&t| (q(&posteriors[0].1, t) - q(&posteriors[1].1, t)).abs())
        .fold(0.0f64, f64::max);
    let spread = |p: &SelectivityPosterior| q(p, 0.95) - q(p, 0.05);
    println!(
        "# max |uniform - jeffreys| quantile gap at n=100: {:.4} (prior doesn't matter)",
        max_prior_gap_100
    );
    println!(
        "# 90% credible width: n=100 -> {:.4}, n=500 -> {:.4} (sample size matters)",
        spread(&posteriors[1].1),
        spread(&posteriors[3].1)
    );
}
