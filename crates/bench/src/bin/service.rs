//! Concurrent query-service driver: throughput and tail latency at
//! 1/4/16 clients, with and without admission control, emitted as
//! `BENCH_service.json`.
//!
//! Every client replays the experiment workload through its own session
//! of one shared [`QueryService`] and checks each result against a
//! precomputed reference, so the bench self-asserts **zero lost or
//! corrupted rows** under concurrency.  Each configuration also runs a
//! cancelled and an expired-deadline query and asserts — via
//! [`ServiceStats`] — that both released their execution slots.
//!
//! ```sh
//! cargo run --release -p rqo-bench --bin service -- \
//!     [--scale F] [--rounds N] [--out PATH] [--tiny]
//! ```

use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use robust_qo::prelude::*;

const CLIENTS: [usize; 3] = [1, 4, 16];

struct Args {
    scale: f64,
    rounds: usize,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            scale: 0.01,
            rounds: 8,
            out: "BENCH_service.json".to_string(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                // CI smoke preset: small catalog, short run.
                "--tiny" => {
                    args.scale = 0.002;
                    args.rounds = 3;
                    i += 1;
                }
                flag => {
                    let value = argv
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("missing value after {flag}"));
                    match flag {
                        "--scale" => args.scale = value.parse().expect("--scale"),
                        "--rounds" => args.rounds = value.parse().expect("--rounds"),
                        "--out" => args.out = value.clone(),
                        other => panic!("unknown flag {other:?}"),
                    }
                    i += 2;
                }
            }
        }
        args
    }
}

fn workload() -> Vec<Query> {
    let mut queries = Vec::new();
    for offset in [30i64, 60, 110] {
        queries.push(
            Query::over(&["lineitem"])
                .filter("lineitem", exp1_lineitem_predicate(offset))
                .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
                .aggregate(AggExpr::count_star("n")),
        );
    }
    for window in [150i64, 212] {
        queries.push(
            Query::over(&["lineitem", "orders", "part"])
                .filter("part", exp2_part_predicate(window))
                .aggregate(AggExpr::count_star("n")),
        );
    }
    queries
}

struct ConfigResult {
    clients: usize,
    admission: bool,
    queries: usize,
    wall_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    mismatches: u64,
    stats: ServiceStats,
}

impl ConfigResult {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.wall_s
    }
}

fn percentile(sorted_ns: &[u128], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

fn run_config(
    catalog: &Catalog,
    queries: &[Query],
    clients: usize,
    admission: bool,
    rounds: usize,
) -> ConfigResult {
    let config = if admission {
        // Fewer slots than peak clients: the 16-client run exercises the
        // wait queue; the generous timeout keeps waits bounded but
        // admitted.
        ServiceConfig::default()
            .with_workers(2)
            .with_max_concurrent(4)
            .with_queue_capacity(64)
            .with_queue_timeout(Duration::from_secs(60))
    } else {
        ServiceConfig::unlimited().with_workers(2)
    };
    let service = RobustDb::new(catalog.clone()).into_service(config);

    let warm = service.session();
    let expected: Vec<Vec<Vec<Value>>> = queries
        .iter()
        .map(|q| warm.run(q).expect("reference run").rows)
        .collect();
    let warm_runs = queries.len() as u64;

    let latencies: Mutex<Vec<u128>> = Mutex::new(Vec::new());
    let mismatch_count: Mutex<u64> = Mutex::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let service = &service;
            let latencies = &latencies;
            let mismatch_count = &mismatch_count;
            let expected = &expected;
            scope.spawn(move || {
                let session = service.session();
                let mut local_lat = Vec::with_capacity(rounds * queries.len());
                let mut local_bad = 0u64;
                for round in 0..rounds {
                    for k in 0..queries.len() {
                        let qi = (client + round + k) % queries.len();
                        let t0 = Instant::now();
                        let outcome = session.run(&queries[qi]).expect("no cancellation source");
                        local_lat.push(t0.elapsed().as_nanos());
                        if outcome.rows != expected[qi] {
                            local_bad += 1;
                        }
                    }
                }
                latencies
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(local_lat);
                *mismatch_count
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) += local_bad;
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    // Slot-release check: a cancelled and an expired-deadline query per
    // configuration, both of which must be counted and release slots.
    let session = service.session();
    let cancelled = QueryHandle::new();
    cancelled.cancel();
    assert!(matches!(
        session.run_with(&queries[0], &cancelled),
        Err(ServiceError::Stopped(StopReason::Cancelled))
    ));
    let expired = QueryHandle::with_deadline(Duration::ZERO);
    assert!(matches!(
        session.run_with(&queries[0], &expired),
        Err(ServiceError::Stopped(StopReason::DeadlineExceeded))
    ));

    let mut sorted = latencies
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    sorted.sort_unstable();
    let stats = service.stats();
    let total = clients * rounds * queries.len();

    // Self-checks: nothing lost, nothing corrupted, every slot returned.
    let mismatches = *mismatch_count
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    assert_eq!(sorted.len(), total, "lost or duplicated query executions");
    assert_eq!(mismatches, 0, "corrupted rows under concurrency");
    assert!(stats.slots_balanced(), "execution slots leaked: {stats}");
    assert_eq!(stats.cancelled, 1, "cancelled query not counted");
    assert_eq!(stats.deadline_exceeded, 1, "deadline query not counted");
    assert_eq!(
        stats.completed,
        total as u64 + warm_runs,
        "completed-query count mismatch"
    );

    ConfigResult {
        clients,
        admission,
        queries: total,
        wall_s,
        p50_ms: percentile(&sorted, 0.50),
        p99_ms: percentile(&sorted, 0.99),
        mismatches,
        stats,
    }
}

fn main() {
    let args = Args::parse();
    let catalog = TpchData::generate(&TpchConfig {
        scale_factor: args.scale,
        seed: 42,
    })
    .into_catalog();
    let queries = workload();

    let mut results = Vec::new();
    for clients in CLIENTS {
        for admission in [true, false] {
            let r = run_config(&catalog, &queries, clients, admission, args.rounds);
            eprintln!(
                "clients={:2} admission={:5} {:6.0} q/s  p50 {:7.2}ms  p99 {:7.2}ms  queued={}",
                r.clients,
                r.admission,
                r.qps(),
                r.p50_ms,
                r.p99_ms,
                r.stats.queued
            );
            results.push(r);
        }
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"service\",").unwrap();
    writeln!(json, "  \"scale_factor\": {},", args.scale).unwrap();
    writeln!(json, "  \"rounds\": {},", args.rounds).unwrap();
    writeln!(json, "  \"workload_queries\": {},", queries.len()).unwrap();
    writeln!(json, "  \"configs\": [").unwrap();
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let s = &r.stats;
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"clients\": {},", r.clients).unwrap();
        writeln!(json, "      \"admission_control\": {},", r.admission).unwrap();
        writeln!(json, "      \"queries\": {},", r.queries).unwrap();
        writeln!(json, "      \"wall_s\": {:.4},", r.wall_s).unwrap();
        writeln!(json, "      \"queries_per_sec\": {:.1},", r.qps()).unwrap();
        writeln!(json, "      \"p50_ms\": {:.3},", r.p50_ms).unwrap();
        writeln!(json, "      \"p99_ms\": {:.3},", r.p99_ms).unwrap();
        writeln!(json, "      \"mismatches\": {},", r.mismatches).unwrap();
        writeln!(
            json,
            "      \"stats\": {{\"admitted\": {}, \"queued\": {}, \"rejected_queue_full\": {}, \
             \"rejected_queue_timeout\": {}, \"completed\": {}, \"cancelled\": {}, \
             \"deadline_exceeded\": {}, \"stopped_in_queue\": {}}}",
            s.admitted,
            s.queued,
            s.rejected_queue_full,
            s.rejected_queue_timeout,
            s.completed,
            s.cancelled,
            s.deadline_exceeded,
            s.stopped_in_queue
        )
        .unwrap();
        writeln!(json, "    }}{comma}").unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    print!("{json}");
    std::fs::write(&args.out, &json).expect("write BENCH json");
    eprintln!("wrote {}", args.out);
}
