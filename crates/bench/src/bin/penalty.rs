//! `penalty` — disaster-count comparison of expected-penalty selection
//! against every fixed quantile threshold on a skewed workload.
//!
//! Each scenario is a (data scale, synopsis seed, cost parameters,
//! query) tuple tuned so that *some* fixed threshold lands in a
//! disaster — a plan whose realized cost exceeds 2× the best realized
//! cost among all arms' choices (optimal-in-hindsight) — while the
//! posterior-integrating expected-penalty mode escapes it:
//!
//! - **dense tail**: the 5th-percentile collapse bets on an index
//!   intersection the true density punishes;
//! - **empty tail**: the 95th-percentile collapse pays a full scan
//!   where the window is all but empty;
//! - **straddled cap**: on a faster-seek device the index ramp crosses
//!   the scan line between the posterior mean and its 80th percentile,
//!   so T80/T95 scan while integration keeps the page-capped index
//!   plan whose downside is bounded;
//! - **hidden moderate window**: the synopsis misses all ~8 matching
//!   parts, so the *median* collapse picks indexed nested-loops whose
//!   realized fetch volume is 2.3× the scan join; the posterior's
//!   right tail prices that ramp and refuses it;
//! - **narrow window**: conservative collapses pay the flat hash join
//!   at 5× the indexed plan; integration rides the cost-capped
//!   semijoin.
//!
//! Every arm's chosen plan is executed in the deterministic cost
//! simulator; disasters are counted per arm.  The run self-asserts the
//! headline claim — penalty records strictly fewer disasters than
//! every fixed T in {5, 50, 80, 95} — and that the penalty arm's
//! simulated cost is bit-identical across 1/2/8 execution threads.
//!
//! ```sh
//! cargo run --release -p rqo-bench --bin penalty -- --out BENCH_penalty.json
//! ```

use std::fmt::Write as _;

use robust_qo::prelude::*;

const THRESHOLDS: [f64; 4] = [0.05, 0.5, 0.8, 0.95];
const ARM_NAMES: [&str; 5] = ["t5", "t50", "t80", "t95", "penalty"];
const DISASTER_FACTOR: f64 = 2.0;

struct Args {
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            out: "BENCH_penalty.json".to_string(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                // The scenario grid is already tiny (scales ≤ 0.01,
                // tuned per seed); accept the fleet-wide flag as a
                // no-op so CI can pass it uniformly.
                "--tiny" => i += 1,
                "--out" => {
                    args.out = argv
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("missing value after --out"))
                        .clone();
                    i += 2;
                }
                other => panic!("unknown flag {other:?}"),
            }
        }
        args
    }
}

struct Scenario {
    name: &'static str,
    scale: f64,
    sample_seed: u64,
    params: CostParams,
    query: Query,
}

fn lineitem_scan(offset: i64) -> Query {
    Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(offset))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
}

fn part_join(window: i64) -> Query {
    Query::over(&["lineitem", "orders", "part"])
        .filter("part", exp2_part_predicate(window))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
}

fn scenarios() -> Vec<Scenario> {
    let fast_seek = CostParams {
        random_io_ms: 2.0,
        ..CostParams::default()
    };
    vec![
        Scenario {
            name: "dense_tail",
            scale: 0.005,
            sample_seed: 42,
            params: CostParams::default(),
            query: lineitem_scan(70),
        },
        Scenario {
            name: "empty_tail",
            scale: 0.005,
            sample_seed: 42,
            params: CostParams::default(),
            query: lineitem_scan(115),
        },
        Scenario {
            name: "straddled_cap",
            scale: 0.005,
            sample_seed: 5,
            params: fast_seek,
            query: lineitem_scan(115),
        },
        Scenario {
            name: "hidden_moderate_window",
            scale: 0.01,
            sample_seed: 6,
            params: CostParams::default(),
            query: part_join(156),
        },
        Scenario {
            name: "narrow_window",
            scale: 0.005,
            sample_seed: 42,
            params: CostParams::default(),
            query: part_join(212),
        },
    ]
}

fn fresh_db(scenario: &Scenario) -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: scenario.scale,
        seed: 42,
    });
    RobustDb::with_options(
        data.into_catalog(),
        scenario.params,
        500,
        scenario.sample_seed,
    )
}

fn realized_ms(
    db: &RobustDb,
    plan: &robust_qo::exec::PhysicalPlan,
    params: &CostParams,
    threads: usize,
) -> f64 {
    let (_, cost) = robust_qo::exec::execute_with(
        plan,
        &db.catalog(),
        params,
        &ExecOptions::with_threads(threads),
    );
    cost.seconds(params) * 1e3
}

struct ArmResult {
    shape: String,
    realized_ms: f64,
    ratio: f64,
    disaster: bool,
}

fn main() {
    let args = Args::parse();
    let mut disasters = [0usize; 5];
    let mut rows: Vec<(String, Vec<ArmResult>)> = Vec::new();
    let mut penalty_thread_invariant = true;

    for scenario in scenarios() {
        let db = fresh_db(&scenario);
        let opt = db.optimizer();
        let mut plans = Vec::new();
        for &t in &THRESHOLDS {
            plans.push(
                opt.optimize(
                    &scenario
                        .query
                        .clone()
                        .with_hint(ConfidenceThreshold::new(t)),
                )
                .plan,
            );
        }
        plans.push(
            opt.optimize(
                &scenario
                    .query
                    .clone()
                    .with_selection(PlanSelection::ExpectedPenalty),
            )
            .plan,
        );

        let realized: Vec<f64> = plans
            .iter()
            .map(|p| realized_ms(&db, p, &scenario.params, 1))
            .collect();
        let best = realized.iter().cloned().fold(f64::INFINITY, f64::min);

        // The penalty arm's simulated cost must not depend on the
        // executor's thread count.
        for threads in [2usize, 8] {
            if realized_ms(&db, &plans[4], &scenario.params, threads) != realized[4] {
                penalty_thread_invariant = false;
            }
        }

        let arms: Vec<ArmResult> = plans
            .iter()
            .zip(&realized)
            .enumerate()
            .map(|(i, (plan, &ms))| {
                let ratio = ms / best;
                let disaster = ms > DISASTER_FACTOR * best;
                if disaster {
                    disasters[i] += 1;
                }
                ArmResult {
                    shape: plan.shape_label(),
                    realized_ms: ms,
                    ratio,
                    disaster,
                }
            })
            .collect();
        rows.push((scenario.name.to_string(), arms));
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"disaster_factor\": {DISASTER_FACTOR},").unwrap();
    writeln!(json, "  \"scenarios\": [").unwrap();
    for (si, (name, arms)) in rows.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{name}\",").unwrap();
        writeln!(json, "      \"arms\": [").unwrap();
        for (ai, arm) in arms.iter().enumerate() {
            writeln!(
                json,
                "        {{\"arm\": \"{}\", \"shape\": \"{}\", \"realized_ms\": {:.3}, \
                 \"ratio\": {:.3}, \"disaster\": {}}}{}",
                ARM_NAMES[ai],
                arm.shape,
                arm.realized_ms,
                arm.ratio,
                arm.disaster,
                if ai + 1 < arms.len() { "," } else { "" }
            )
            .unwrap();
        }
        writeln!(json, "      ]").unwrap();
        writeln!(json, "    }}{}", if si + 1 < rows.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"disasters\": {{").unwrap();
    for (i, name) in ARM_NAMES.iter().enumerate() {
        writeln!(
            json,
            "    \"{name}\": {}{}",
            disasters[i],
            if i + 1 < ARM_NAMES.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  }},").unwrap();
    writeln!(
        json,
        "  \"penalty_thread_invariant\": {penalty_thread_invariant}"
    )
    .unwrap();
    writeln!(json, "}}").unwrap();

    print!("{json}");
    std::fs::write(&args.out, &json).unwrap();
    eprintln!(
        "wrote {} — disasters per arm: t5={} t50={} t80={} t95={} penalty={}",
        args.out, disasters[0], disasters[1], disasters[2], disasters[3], disasters[4]
    );

    // Self-asserting: the headline robustness claim must hold in the
    // emitted artifact, so a regression fails the bench run itself.
    let penalty = disasters[4];
    for (i, name) in ARM_NAMES[..4].iter().enumerate() {
        assert!(
            disasters[i] >= 1,
            "workload is no longer adversarial for {name}: 0 disasters"
        );
        assert!(
            penalty < disasters[i],
            "penalty must record strictly fewer disasters than {name}: {penalty} vs {}",
            disasters[i]
        );
    }
    assert_eq!(penalty, 0, "penalty selection must escape every trap here");
    assert!(
        penalty_thread_invariant,
        "penalty-arm simulated cost must be identical across 1/2/8 threads"
    );
}
