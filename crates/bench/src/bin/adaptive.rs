//! Adaptive-vs-static cost driver on a skewed (misestimated) workload,
//! emitted as `BENCH_adaptive.json`.
//!
//! Each scenario plants a wildly wrong selectivity through the feedback
//! store — the situation the paper's runtime cardinality guards exist
//! for — then executes the query twice on identically-seeded fresh
//! databases:
//!
//! * **static** — [`RobustDb::run`], committed to the misestimate-driven
//!   plan for the whole query;
//! * **adaptive** — [`RobustDb::run_adaptive`], which may pause at a
//!   pipeline breaker, feed the observed truth back, and re-plan the
//!   remainder against the materialized intermediate.
//!
//! The driver self-asserts that the total adaptive simulated cost never
//! exceeds the static total: re-optimization is risk-bounded, so a cache
//! of guards can only help (or break even when a trip lands after the
//! expensive work is already paid).
//!
//! ```sh
//! cargo run --release -p rqo-bench --bin adaptive -- \
//!     [--scale F] [--out PATH] [--tiny]
//! ```

use std::fmt::Write as _;

use robust_qo::RobustDb;
use rqo_datagen::workload::{exp1_lineitem_predicate, exp2_part_predicate};
use rqo_datagen::{TpchConfig, TpchData};
use rqo_exec::AggExpr;
use rqo_expr::Expr;
use rqo_optimizer::Query;
use rqo_storage::CostParams;

struct Args {
    scale: f64,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            scale: 0.01,
            out: "BENCH_adaptive.json".to_string(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                // CI smoke preset: small catalog.
                "--tiny" => {
                    args.scale = 0.005;
                    i += 1;
                }
                flag => {
                    let value = argv
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("missing value after {flag}"));
                    match flag {
                        "--scale" => args.scale = value.parse().expect("--scale"),
                        "--out" => args.out = value.clone(),
                        other => panic!("unknown flag {other:?}"),
                    }
                    i += 2;
                }
            }
        }
        args
    }
}

/// One skewed scenario: a query plus the misestimate planted before
/// planning (table set, per-table predicate, wrong selectivity).
struct Scenario {
    name: &'static str,
    query: Query,
    planted: Vec<(&'static str, Expr, f64)>,
}

fn scenarios() -> Vec<Scenario> {
    let exp1_pred = exp1_lineitem_predicate(110);
    let narrow_part = exp2_part_predicate(250);
    let wide_part = exp2_part_predicate(212);
    vec![
        // Near-empty window estimated at 90% of lineitem: the guard fires
        // at the scan, and the resumed plan merely breaks even (the scan
        // was the expensive part).
        Scenario {
            name: "exp1_wrong_big",
            query: Query::over(&["lineitem"])
                .filter("lineitem", exp1_pred.clone())
                .aggregate(AggExpr::sum("l_extendedprice", "revenue")),
            planted: vec![("lineitem", exp1_pred, 0.9)],
        },
        // A handful of parts estimated at half the table: the build-side
        // guard fires before the lineitem scan, and the re-plan switches
        // to indexed nested loops — the paper's motivating win.
        Scenario {
            name: "join2_wrong_big",
            query: Query::over(&["lineitem", "part"])
                .filter("part", narrow_part.clone())
                .aggregate(AggExpr::count_star("n"))
                .aggregate(AggExpr::sum("l_extendedprice", "rev")),
            planted: vec![("part", narrow_part, 0.5)],
        },
        // The same misestimate under a three-way join with DP-enumerated
        // join order.
        Scenario {
            name: "join3_wrong_big",
            query: Query::over(&["lineitem", "orders", "part"])
                .filter("part", wide_part.clone())
                .aggregate(AggExpr::sum("l_extendedprice", "revenue")),
            planted: vec![("part", wide_part, 0.5)],
        },
    ]
}

fn fresh_db(scale: f64, planted: &[(&'static str, Expr, f64)]) -> RobustDb {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: scale,
        seed: 1234,
    });
    let db = RobustDb::with_options(data.into_catalog(), CostParams::default(), 500, 9);
    for (table, pred, sel) in planted {
        db.feedback()
            .inject_observation(&[table], &[(table, pred)], *sel);
    }
    db
}

struct Row {
    name: &'static str,
    static_seconds: f64,
    adaptive_seconds: f64,
    replans: usize,
}

fn main() {
    let args = Args::parse();
    let mut rows = Vec::new();
    for sc in scenarios() {
        let static_run = fresh_db(args.scale, &sc.planted).run(&sc.query);
        let adaptive = fresh_db(args.scale, &sc.planted).run_adaptive(&sc.query);
        assert_eq!(
            adaptive.outcome.rows, static_run.rows,
            "{}: adaptive answers must match static",
            sc.name
        );
        rows.push(Row {
            name: sc.name,
            static_seconds: static_run.simulated_seconds,
            adaptive_seconds: adaptive.outcome.simulated_seconds,
            replans: adaptive.replans(),
        });
    }

    let static_total: f64 = rows.iter().map(|r| r.static_seconds).sum();
    let adaptive_total: f64 = rows.iter().map(|r| r.adaptive_seconds).sum();
    let total_replans: usize = rows.iter().map(|r| r.replans).sum();

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"adaptive\",").unwrap();
    writeln!(json, "  \"scale_factor\": {},", args.scale).unwrap();
    writeln!(json, "  \"scenarios\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"static_seconds\": {:.6}, \"adaptive_seconds\": {:.6}, \
             \"replans\": {}, \"saving_pct\": {:.1}}}{comma}",
            r.name,
            r.static_seconds,
            r.adaptive_seconds,
            r.replans,
            100.0 * (1.0 - r.adaptive_seconds / r.static_seconds),
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"static_total_seconds\": {static_total:.6},").unwrap();
    writeln!(json, "  \"adaptive_total_seconds\": {adaptive_total:.6},").unwrap();
    writeln!(json, "  \"total_replans\": {total_replans},").unwrap();
    writeln!(
        json,
        "  \"total_saving_pct\": {:.1}",
        100.0 * (1.0 - adaptive_total / static_total)
    )
    .unwrap();
    writeln!(json, "}}").unwrap();

    print!("{json}");
    std::fs::write(&args.out, &json).expect("write BENCH json");
    eprintln!(
        "static {static_total:.4}s vs adaptive {adaptive_total:.4}s over {} scenarios \
         ({total_replans} re-plans), wrote {}",
        rows.len(),
        args.out
    );
    assert!(
        total_replans >= 1,
        "the skewed workload must provoke at least one re-plan"
    );
    assert!(
        adaptive_total <= static_total,
        "adaptive execution must never cost more than static \
         (adaptive {adaptive_total:.6}s vs static {static_total:.6}s)"
    );
}
