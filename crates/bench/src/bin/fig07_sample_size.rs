//! Figure 7: effect of sample size (analytical model, §5.2.2).
//!
//! Expected execution time vs. true selectivity at a fixed T = 50% for
//! sample sizes 100–6000.  Larger samples localize the plan switch at the
//! crossover; 500 tuples is the knee of diminishing returns the paper
//! uses to justify its default.

use rqo_bench::analytic::{paper_selectivity_grid, AnalyticModel};
use rqo_bench::harness::{write_csv, RunConfig};
use rqo_core::{ConfidenceThreshold, Prior};

fn main() {
    let cfg = RunConfig::from_args();
    let model = AnalyticModel::paper_default();
    let sizes = [100u64, 250, 500, 1000, 6000];
    let t = ConfidenceThreshold::new(0.5);
    let grid = paper_selectivity_grid();

    let rows: Vec<String> = grid
        .iter()
        .map(|&p| {
            let means: Vec<String> = sizes
                .iter()
                .map(|&n| {
                    format!(
                        "{:.3}",
                        model.execution_stats(p, n, t, Prior::Jeffreys).mean()
                    )
                })
                .collect();
            format!("{:.4},{}", p, means.join(","))
        })
        .collect();
    let header = format!(
        "selectivity,{}",
        sizes
            .iter()
            .map(|n| format!("n{n}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    write_csv(&cfg, "fig07_sample_size", &header, &rows);

    // Knee check at a below-crossover selectivity.
    let mean_at = |n: u64| model.execution_stats(0.0005, n, t, Prior::Jeffreys).mean();
    println!(
        "# E[time] at p=0.05%: n=100 -> {:.2}s, n=500 -> {:.2}s, n=6000 -> {:.2}s \
         (paper: little benefit beyond 500)",
        mean_at(100),
        mean_at(500),
        mean_at(6000)
    );
}
